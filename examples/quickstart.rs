//! Quickstart: generate a small SSB database, pre-join it, load it into
//! the simulated PIM module, and run one query end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small Star Schema Benchmark instance (SF 0.01 ≈ 60 K facts).
    let db = SsbDb::generate(&SsbParams::uniform(0.01));
    println!(
        "generated SSB SF=0.01: {} lineorders, {} customers, {} parts",
        db.lineorder.len(),
        db.customer.len(),
        db.part.len()
    );

    // 2. Pre-join fact and dimensions (Section III of the paper): same
    //    record count, wider records.
    let wide = db.prejoin();
    println!(
        "pre-joined relation: {} records x {} attributes ({} bits/record)",
        wide.len(),
        wide.schema().arity(),
        wide.schema().record_bits()
    );

    // 3. Load into the PIM module (Table I geometry) in one-crossbar
    //    layout: every record in a single 512-bit crossbar row.
    let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb)?;
    println!("loaded into {} huge pages (M)", engine.page_count());

    // 4. Run SSB Q1.1: a filter over three attributes plus an in-PIM
    //    product (extendedprice x discount) and one PIM aggregation.
    let q = queries::standard_query("Q1.1").expect("Q1.1 exists");
    let out = engine.run(&q)?;
    let revenue = out.groups.get(&Vec::new()).copied().unwrap_or(0);
    let r = &out.report;
    println!("\nQ1.1: SUM(lo_extendedprice * lo_discount) = {revenue}");
    println!(
        "  selected          : {} records ({:.3}% selectivity)",
        r.selected,
        r.selectivity * 100.0
    );
    println!("  simulated latency : {:.3} ms", r.time_ns / 1e6);
    println!("  PIM energy        : {:.3} mJ", r.energy_pj * 1e-9);
    println!("  peak chip power   : {:.3} W", r.peak_chip_power_w);
    println!("  10-year endurance : {:.2e} writes/cell", r.required_endurance(10.0));

    // 5. Every phase of the execution is recorded.
    println!("\nphase breakdown:");
    for phase in r.phases.phases() {
        println!(
            "  {:<16} {:>10.3} us  {:>10.3} uJ",
            phase.kind.label(),
            phase.time_ns / 1e3,
            phase.energy_pj * 1e-6
        );
    }
    Ok(())
}
