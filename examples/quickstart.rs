//! Quickstart: generate a small SSB database, pre-join it, load it into
//! the simulated PIM module, and run queries end to end with the fluent
//! v2 query builder — including a multi-aggregate SELECT list answered
//! off a single planned filter pass.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, Query, SelectItem};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small Star Schema Benchmark instance (SF 0.01 ≈ 60 K facts).
    let db = SsbDb::generate(&SsbParams::uniform(0.01));
    println!(
        "generated SSB SF=0.01: {} lineorders, {} customers, {} parts",
        db.lineorder.len(),
        db.customer.len(),
        db.part.len()
    );

    // 2. Pre-join fact and dimensions (Section III of the paper): same
    //    record count, wider records.
    let wide = db.prejoin();
    println!(
        "pre-joined relation: {} records x {} attributes ({} bits/record)",
        wide.len(),
        wide.schema().arity(),
        wide.schema().record_bits()
    );

    // 3. Load into the PIM module (Table I geometry) in one-crossbar
    //    layout: every record in a single 512-bit crossbar row.
    let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb)?;
    println!("loaded into {} huge pages (M)", engine.page_count());

    // 4. Build SSB Q1.1 with the fluent builder — validated against the
    //    schema at build() time — and run it: a filter over three
    //    attributes plus an in-PIM product (extendedprice x discount)
    //    and one PIM aggregation. (The 13 catalog queries in
    //    `queries::standard_queries()` are built exactly like this.)
    let q11 = Query::select([SelectItem::sum(
        "revenue",
        AggExpr::mul("lo_extendedprice", "lo_discount"),
    )])
    .id("Q1.1")
    .filter(
        col("d_year")
            .eq(1993u64)
            .and(col("lo_discount").between(1u64, 3u64))
            .and(col("lo_quantity").lt(25u64)),
    )
    .build(engine.relation().schema())?;
    let out = engine.run(&q11)?;
    let revenue = out.groups.get(&Vec::new()).map(|row| row[0]).unwrap_or(0);
    let r = &out.report;
    println!("\nQ1.1: SUM(lo_extendedprice * lo_discount) = {revenue}");
    println!(
        "  selected          : {} records ({:.3}% selectivity)",
        r.selected,
        r.selectivity * 100.0
    );
    println!("  simulated latency : {:.3} ms", r.time_ns / 1e6);
    println!("  PIM energy        : {:.3} mJ", r.energy_pj * 1e-9);
    println!("  peak chip power   : {:.3} W", r.peak_chip_power_w);
    println!("  10-year endurance : {:.2e} writes/cell", r.required_endurance(10.0));

    // 5. The v2 surface: several named aggregates share that one filter
    //    pass (the crossbar-dominant stage), instead of re-filtering per
    //    aggregate. AVG is derived from mergeable sum + count.
    let combined = queries::combined_query("Q1.1-combined").expect("catalog variant");
    let multi = engine.run(&combined)?;
    let row = multi.groups.get(&Vec::new()).cloned().unwrap_or_default();
    println!("\nQ1.1-combined (one filter pass, three aggregates):");
    for (item, value) in combined.select.iter().zip(&row) {
        println!("  {:<12} = {value}", item.name);
    }
    println!(
        "  energy: {:.3} mJ vs {:.3} mJ x 3 for three separate single-aggregate queries",
        multi.report.energy_pj * 1e-9,
        out.report.energy_pj * 1e-9,
    );

    // 6. Every phase of the execution is recorded.
    println!("\nphase breakdown (Q1.1):");
    for phase in r.phases.phases() {
        println!(
            "  {:<16} {:>10.3} us  {:>10.3} uJ",
            phase.kind.label(),
            phase.time_ns / 1e3,
            phase.energy_pj * 1e-6
        );
    }
    Ok(())
}
