//! Star join on normalized storage: `lineorder` plus the four SSB
//! dimension tables live on their own PIM modules (no pre-join), and a
//! builder-constructed query joins them through compressed semijoin
//! bitmaps — the dimension filter runs on the dimension's module, its
//! key bitmap crosses the host channel once, and the fact shards turn
//! it into foreign-key range programs.
//!
//! ```sh
//! cargo run --release --example star_join
//! ```

use bbpim::cluster::Partitioner;
use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, Query, SelectItem};
use bbpim::db::ssb::star::table_footprint;
use bbpim::db::ssb::{SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::modes::EngineMode;
use bbpim::join::StarCluster;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SsbDb::generate(&SsbParams::uniform(0.01));

    // Five separate PIM-resident tables: the fact table round-robin
    // over 4 shards, each dimension whole on one small module.
    let mut cluster =
        StarCluster::new(SimConfig::default(), &db, EngineMode::OneXb, 4, Partitioner::RoundRobin)?;

    // The storage win the pre-join gave up: no replicated dimension
    // columns on every fact row.
    let wide = db.prejoin();
    let normalized: u64 = cluster.footprints().iter().map(|f| f.data_bytes).sum();
    let prejoined = table_footprint(&wide, &[]).data_bytes;
    println!("PIM-resident data: {normalized} B normalized vs {prejoined} B pre-joined");
    for f in cluster.footprints() {
        println!("  {:<10} {:>8} records × {:>3} bits", f.table, f.records, f.resident_bits);
    }

    // A builder-constructed join query. Attribute names are globally
    // unique across the star schema, so the query never names a table:
    // `s_region` routes to the supplier dimension, `d_year` to date,
    // `lo_revenue` to the fact table.
    let q = Query::select([SelectItem::sum("revenue", AggExpr::attr("lo_revenue"))])
        .id("star-demo")
        .filter(col("s_region").eq("AMERICA").and(col("d_year").between(1993u64, 1994u64)))
        .group_by(["d_year"])
        .build_unchecked();

    // EXPLAIN before running: the plan ledger shows exactly which key
    // bitmaps would cross the host channel, raw vs compressed.
    let ex = cluster.explain(&q)?;
    println!("\n{}", ex.detail());

    // Run it, and check the answer against the row-at-a-time oracle on
    // the equivalent pre-joined relation: bit-identical.
    let out = cluster.run(&q)?;
    assert_eq!(out.groups, stats::run_oracle(&q, &wide)?, "join must not change the answer");
    println!("revenue by year (AMERICA suppliers, 1993-1994):");
    for (key, values) in &out.groups {
        println!("  year {}: revenue {}", key[0], values[0]);
    }
    println!(
        "\n{:.3} ms simulated wall clock, {} of {} shards dispatched, {} records selected",
        out.report.time_ns / 1e6,
        out.report.active_shards - out.report.shards_pruned,
        out.report.active_shards,
        out.report.selected,
    );
    Ok(())
}
