//! Maintaining a pre-joined relation with the PIM multiplexer
//! (Algorithm 1): a customer relocates, and every one of their
//! (denormalised) purchase records is rewritten in-memory — no reads,
//! no data movement.
//!
//! ```sh
//! cargo run --release --example update_maintenance
//! ```

use bbpim::db::builder::col;
use bbpim::db::ssb::{SsbDb, SsbParams};
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::sim::timeline::PhaseKind;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SsbDb::generate(&SsbParams::uniform(0.01));
    let wide = db.prejoin();
    let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb)?;

    // The denormalisation hazard: customer 42's city is duplicated into
    // every lineorder they ever placed.
    let custkey = 42u64;
    let duplicates = engine
        .relation()
        .column_by_name("lo_custkey")?
        .values()
        .iter()
        .filter(|v| **v == custkey)
        .count();
    println!("customer {custkey} appears in {duplicates} pre-joined records");

    // UPDATE wide SET c_city = 'UNITED KI1' WHERE lo_custkey = 42
    let m = Mutation::update()
        .filter(col("lo_custkey").eq(custkey))
        .set("c_city", "UNITED KI1")
        .build(engine.relation().schema())?;
    let report = engine.mutate(&m)?;
    println!("\nUPDATE via Algorithm 1 (filter + PIM MUX):");
    println!("  records rewritten : {}", report.records_updated);
    println!("  simulated latency : {:.3} us", report.time_ns / 1e3);
    println!("  PIM energy        : {:.3} uJ", report.energy_pj * 1e-6);
    println!(
        "  host reads        : {:.3} us  (the paper's point: none are needed)",
        report.phases.time_in(PhaseKind::HostRead).abs() / 1e3
    );

    // Verify through the engine's own storage.
    let city_dict = engine
        .relation()
        .schema()
        .attr("c_city")?
        .dictionary()
        .expect("city is dictionary-encoded")
        .clone();
    let mut checked = 0;
    for row in 0..engine.relation().len() {
        if engine.relation().value_by_name(row, "lo_custkey")? == custkey {
            let city = engine.relation().value_by_name(row, "c_city")?;
            assert_eq!(city_dict.decode(city), Some("UNITED KI1"));
            checked += 1;
        }
    }
    println!("\nverified {checked} records now read c_city = UNITED KI1");
    assert_eq!(checked as u64, report.records_updated);
    Ok(())
}
