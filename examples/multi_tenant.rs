//! Multi-tenant serving: two tenants share one PIM cluster — an
//! interactive tenant with a tight p95 promise, and a bulk tenant
//! offered at several times the cluster's capacity behind a token
//! bucket, with a per-request deadline. The closed-loop AIMD
//! controller adapts the global in-flight window to keep the promise
//! while admission shedding keeps the bulk queue from poisoning
//! everyone's latency.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::serve::{
    run_serve, tenant_reports, AimdConfig, ArrivalProcess, RateLimit, ServeConfig, SloSpec,
    TenantSpec, WindowPolicy,
};
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wide = SsbDb::generate(&SsbParams::uniform(0.01)).prejoin();
    let mut cluster = ClusterEngine::new(
        SimConfig::default(),
        wide,
        EngineMode::OneXb,
        8,
        Partitioner::range_by_attr("d_year"),
    )?;
    cluster.calibrate(&CalibrationConfig::default())?;
    let q = queries::standard_queries();

    // `interactive` sends selective probes at a modest rate and was
    // promised a 2 ms p95. `bulk` dumps broad scans at far more than
    // the cluster can absorb: a token bucket paces its admission
    // eligibility and each request carries a 6 ms deadline — requests
    // whose predicted completion blows it are shed at admission.
    let tenants = vec![
        TenantSpec {
            name: "interactive".into(),
            queries: vec![q[2].clone(), q[9].clone(), q[11].clone()],
            process: ArrivalProcess::OpenPoisson { arrivals: 60, mean_interarrival_ns: 250_000.0 },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 2.0e6, deadline_ns: None },
            weight: 2.0,
        },
        TenantSpec {
            name: "bulk".into(),
            queries: vec![q[0].clone(), q[1].clone(), q[6].clone()],
            process: ArrivalProcess::OpenPoisson { arrivals: 60, mean_interarrival_ns: 30_000.0 },
            writes: None,
            rate_limit: Some(RateLimit { rate_per_s: 12_000.0, burst: 6.0 }),
            slo: SloSpec { p95_target_ns: 20.0e6, deadline_ns: Some(6.0e6) },
            weight: 1.0,
        },
    ];

    let cfg = ServeConfig { seed: 7, window: WindowPolicy::Aimd(AimdConfig::default()) };
    let outcome = run_serve(&mut cluster, &tenants, &cfg)?;

    println!(
        "{} submitted, {} served, {} shed, {} throttled; window {} -> {} over {} decisions\n",
        outcome.submitted.iter().sum::<usize>(),
        outcome.completions.len(),
        outcome.drops.len(),
        outcome.throttled.iter().sum::<usize>(),
        outcome.window_trajectory.first().map(|&(_, w)| w).unwrap_or(0),
        outcome.final_window(),
        outcome.decisions.len(),
    );
    for r in tenant_reports(&tenants, &outcome) {
        println!(
            "{:>11}: {:>2}/{:<2} served  p50 {:>7.3} ms  p95 {:>7.3} ms (promise {:>6.1} ms, {})  \
             goodput {:>7.0}/s  shed {:>2.0}%",
            r.name,
            r.completed,
            r.submitted,
            r.latency.p50_ns / 1e6,
            r.latency.p95_ns / 1e6,
            r.p95_target_ns / 1e6,
            if r.slo_met { "met" } else { "MISSED" },
            r.goodput_qps,
            100.0 * r.drop_rate,
        );
    }
    println!("\nEvery served answer is bit-identical to the batch oracle — tenancy,");
    println!("rate limits and the window decide when and whether, never what.");
    Ok(())
}
