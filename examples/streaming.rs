//! Streaming service: queries arriving over time against a sharded PIM
//! cluster, with admission control and out-of-order completion.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::sched::{run_stream, AdmissionPolicy, SchedConfig, Workload};
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wide = SsbDb::generate(&SsbParams::uniform(0.01)).prejoin();
    let mut cluster = ClusterEngine::new(
        SimConfig::default(),
        wide,
        EngineMode::OneXb,
        8,
        Partitioner::range_by_attr("d_year"),
    )?;
    cluster.calibrate(&CalibrationConfig::default())?;

    // 40 arrivals over the 13 SSB queries; the mean interarrival is
    // set well below the mean service time, so queues form and the
    // admission bound pushes back.
    let workload = Workload::poisson(queries::standard_queries(), 40, 25_000.0, 7);
    println!("{} arrivals over {:.3} ms\n", workload.len(), {
        workload.arrivals().last().map(|a| a.at_ns / 1e6).unwrap_or(0.0)
    });

    for policy in AdmissionPolicy::all() {
        let out = run_stream(
            &mut cluster,
            &workload,
            &SchedConfig { max_in_flight: 4, policy, ..SchedConfig::default() },
        )?;
        let s = out.latency_summary();
        println!(
            "{:>4}: p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms  |  {:>7.0} q/s  \
             {:>2} finished out of order",
            policy.label(),
            s.p50_ns / 1e6,
            s.p95_ns / 1e6,
            s.p99_ns / 1e6,
            out.throughput_qps(),
            out.overtaken(),
        );
        // The first overtaker is typically a zone-map-pruned query
        // that jumped past broader ones already occupying the cluster.
        if let Some(c) = out.first_overtaker() {
            println!(
                "      first overtaker: arrival #{} ({}, {} of {} shards pruned, latency {:.3} ms)",
                c.arrival,
                c.query_id,
                c.shards_pruned,
                c.shards_pruned + c.shards_dispatched,
                c.latency_ns() / 1e6,
            );
        }
    }
    println!("\nAnswers are bit-identical to run_batch over the same queries — the");
    println!("scheduler changes when work runs, never what it computes.");
    Ok(())
}
