//! Cluster scaling: run one SSB GROUP BY query on 1, 2 and 4 PIM
//! modules and watch the simulated wall clock shrink while the merged
//! answer stays bit-identical.
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SSB instance; Q4.1 (two GROUP BY keys, wide filter) is a
    // query whose host-side aggregation tail benefits from sharding.
    let wide = SsbDb::generate(&SsbParams::uniform(0.01)).prejoin();
    let q = queries::standard_query("Q4.1").expect("Q4.1 exists");
    let oracle = stats::run_oracle(&q, &wide)?;
    println!("{} over {} records, {} groups in the answer\n", q.id, wide.len(), oracle.len());

    let mut single_ns = 0.0;
    for shards in [1usize, 2, 4] {
        // Each shard is a full-size module holding 1/n of the records.
        let mut cluster = ClusterEngine::new(
            SimConfig::default(),
            wide.clone(),
            EngineMode::OneXb,
            shards,
            Partitioner::RoundRobin,
        )?;
        // One calibration sweep, shared across all shards.
        cluster.calibrate(&CalibrationConfig::default())?;
        let out = cluster.run(&q)?;
        assert_eq!(out.groups, oracle, "sharding must not change the answer");
        let r = &out.report;
        if shards == 1 {
            single_ns = r.time_ns;
        }
        println!(
            "{} shard(s): {:>8.3} ms wall clock ({:.2}x), {:>8.3} ms total work, {:.3} mJ, merge {:.1} us",
            shards,
            r.time_ns / 1e6,
            r.speedup_over(single_ns),
            r.total_shard_time_ns / 1e6,
            r.energy_pj * 1e-9,
            r.merge_time_ns / 1e3,
        );
    }

    // The batch scheduler: shards drain a queue without cluster-wide
    // barriers, so a mixed batch finishes earlier than one-at-a-time.
    let batch_queries: Vec<_> = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"]
        .iter()
        .map(|id| queries::standard_query(id).expect("standard query"))
        .collect();
    let mut cluster = ClusterEngine::new(
        SimConfig::default(),
        wide,
        EngineMode::OneXb,
        4,
        Partitioner::RoundRobin,
    )?;
    cluster.calibrate(&CalibrationConfig::default())?;
    let batch = cluster.run_batch(&batch_queries)?;
    println!(
        "\nbatch of {}: pipelined {:.3} ms vs barriered {:.3} ms ({:.2}x from pipelining)",
        batch.executions.len(),
        batch.wall_time_ns / 1e6,
        batch.serial_time_ns / 1e6,
        batch.pipelining_speedup(),
    );
    Ok(())
}
