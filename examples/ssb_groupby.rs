//! The hybrid GROUP-BY in action: calibrate the Eq. (1)–(3) cost model,
//! run a GROUP BY query on skewed data, and show how the engine splits
//! subgroups between pim-gb and host-gb.
//!
//! ```sh
//! cargo run --release --example ssb_groupby
//! ```

use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Skewed SSB (Rabl et al.), as in the paper's evaluation: subgroup
    // sizes are non-uniform, which is exactly what the hybrid exploits.
    let db = SsbDb::generate(&SsbParams::skewed(0.02));
    let wide = db.prejoin();
    let query_set = queries::adjusted_queries(&wide)?;

    let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb)?;

    // Calibration: synthetic host-gb / pim-gb measurements fitted to
    // T_host-gb = M(a(s)√r + b(s)) and T_pim-gb = M·slope(n) + T0(n).
    println!("calibrating the GROUP-BY latency model (Fig. 4 procedure)…");
    engine.calibrate(&CalibrationConfig::default())?;
    let model = engine.model().expect("calibrated");
    for s in model.host.s_values().collect::<Vec<_>>() {
        let fit = model.host.fit_for(s).unwrap();
        println!(
            "  host-gb s={s}: dT/dM = {:.4}·sqrt(r) + {:.4} ms/page  (R² = {:.3})",
            fit.a / 1e6,
            fit.b / 1e6,
            fit.r2
        );
    }
    for n in model.pim.n_values().collect::<Vec<_>>() {
        let fit = model.pim.fit_for(n).unwrap();
        println!(
            "  pim-gb  n={n}: T = {:.5}·M + {:.4} ms  (R² = {:.3})",
            fit.slope / 1e6,
            fit.intercept / 1e6,
            fit.r2
        );
    }

    // Run the GROUP BY queries and show the split decision.
    println!("\nquery        k_MAX  sampled  k->PIM   groups   latency");
    for id in ["Q2.1", "Q2.3", "Q3.1", "Q3.4", "Q4.1"] {
        let q = query_set.iter().find(|q| q.id == id).expect("known query");
        let out = engine.run(q)?;
        // cross-check against the row-at-a-time oracle
        let oracle = stats::run_oracle(q, engine.relation())?;
        assert_eq!(out.groups, oracle, "{id} must match the oracle");
        let r = &out.report;
        println!(
            "{:<12} {:>5} {:>8} {:>7} {:>8} {:>8.3} ms",
            id,
            r.total_subgroups,
            r.subgroups_in_sample,
            r.pim_agg_subgroups,
            out.groups.len(),
            r.time_ns / 1e6
        );
    }
    println!("\n(k->PIM = subgroups aggregated in-memory; the rest are hash-aggregated");
    println!(" at the host from the filter bit-vector — the paper's Section IV hybrid.)");
    Ok(())
}
