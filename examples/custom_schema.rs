//! Using the PIM engine on a custom (non-SSB) schema: a tiny IoT
//! telemetry warehouse, pre-joined sensor metadata, filters, GROUP BY
//! and MIN/MAX aggregation — showing the public API is not SSB-specific.
//!
//! ```sh
//! cargo run --release --example custom_schema
//! ```

use std::sync::Arc;

use bbpim::db::dict::Dictionary;
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::schema::{Attribute, Schema};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_telemetry(rows: usize) -> Result<Relation, Box<dyn std::error::Error>> {
    // Attribute-name convention: `lo_` marks the "fact" side (readings),
    // other prefixes are treated as pre-joined dimension attributes —
    // that is all the two-crossbar partitioning needs.
    let site_dict: Arc<Dictionary> = Dictionary::from_sorted(
        ["berlin", "haifa", "lisbon", "osaka", "quito"].iter().map(|s| s.to_string()).collect(),
    )?;
    let kind_dict: Arc<Dictionary> = Dictionary::from_sorted(
        ["humidity", "pressure", "temperature"].iter().map(|s| s.to_string()).collect(),
    )?;
    let schema = Schema::new(
        "telemetry",
        vec![
            Attribute::numeric("lo_sensor", 12),
            Attribute::numeric("lo_hour", 5),
            Attribute::numeric("lo_value", 14),
            Attribute::numeric("lo_baseline", 14),
            Attribute::dict("s_site", site_dict),
            Attribute::dict("s_kind", kind_dict),
        ],
    );
    let mut rel = Relation::with_capacity(schema, rows);
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..rows {
        let sensor = rng.gen_range(0..4096u64);
        let hour = rng.gen_range(0..24u64);
        let baseline = rng.gen_range(2000..6000u64);
        let value = baseline + rng.gen_range(0..4000u64);
        let site = sensor % 5;
        let kind = sensor % 3;
        rel.push_row(&[sensor, hour, value, baseline, site, kind])?;
    }
    Ok(rel)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rel = build_telemetry(100_000)?;
    let mut engine = PimQueryEngine::new(SimConfig::default(), rel, EngineMode::TwoXb)?;
    engine.calibrate(&CalibrationConfig::default())?;
    println!("telemetry warehouse loaded: {} readings, two-crossbar layout", 100_000);

    // Peak overnight drift per site: MAX(value - baseline) for night
    // hours at temperature sensors.
    let q = Query {
        id: "night_drift".into(),
        filter: vec![
            Atom::Lt { attr: "lo_hour".into(), value: 6u64.into() },
            Atom::Eq { attr: "s_kind".into(), value: "temperature".into() },
        ],
        group_by: vec!["s_site".into()],
        agg_func: AggFunc::Max,
        agg_expr: AggExpr::Sub("lo_value".into(), "lo_baseline".into()),
    };
    let out = engine.run(&q)?;
    assert_eq!(out.groups, stats::run_oracle(&q, engine.relation())?);

    let site_dict = engine.relation().schema().attr("s_site")?.dictionary().expect("dict").clone();
    println!("\nMAX(value - baseline), hours 0-5, temperature sensors:");
    for (key, drift) in &out.groups {
        println!("  {:<8} {drift}", site_dict.decode(key[0]).unwrap_or("?"));
    }
    println!(
        "\nsimulated: {:.3} ms, {} of {} subgroups aggregated in PIM",
        out.report.time_ns / 1e6,
        out.report.pim_agg_subgroups,
        out.report.total_subgroups
    );
    Ok(())
}
