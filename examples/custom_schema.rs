//! Using the PIM engine on a custom (non-SSB) schema: a tiny IoT
//! telemetry warehouse, pre-joined sensor metadata, a disjunctive
//! filter, GROUP BY and a multi-aggregate SELECT list — showing the
//! public v2 query API is not SSB-specific.
//!
//! ```sh
//! cargo run --release --example custom_schema
//! ```

use std::sync::Arc;

use bbpim::db::builder::col;
use bbpim::db::dict::Dictionary;
use bbpim::db::plan::{AggExpr, Query, SelectItem};
use bbpim::db::schema::{Attribute, Schema};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_telemetry(rows: usize) -> Result<Relation, Box<dyn std::error::Error>> {
    // Attribute-name convention: `lo_` marks the "fact" side (readings),
    // other prefixes are treated as pre-joined dimension attributes —
    // that is all the two-crossbar partitioning needs.
    let site_dict: Arc<Dictionary> = Dictionary::from_sorted(
        ["berlin", "haifa", "lisbon", "osaka", "quito"].iter().map(|s| s.to_string()).collect(),
    )?;
    let kind_dict: Arc<Dictionary> = Dictionary::from_sorted(
        ["humidity", "pressure", "temperature"].iter().map(|s| s.to_string()).collect(),
    )?;
    let schema = Schema::new(
        "telemetry",
        vec![
            Attribute::numeric("lo_sensor", 12),
            Attribute::numeric("lo_hour", 5),
            Attribute::numeric("lo_value", 14),
            Attribute::numeric("lo_baseline", 14),
            Attribute::dict("s_site", site_dict),
            Attribute::dict("s_kind", kind_dict),
        ],
    );
    let mut rel = Relation::with_capacity(schema, rows);
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..rows {
        let sensor = rng.gen_range(0..4096u64);
        let hour = rng.gen_range(0..24u64);
        let baseline = rng.gen_range(2000..6000u64);
        let value = baseline + rng.gen_range(0..4000u64);
        let site = sensor % 5;
        let kind = sensor % 3;
        rel.push_row(&[sensor, hour, value, baseline, site, kind])?;
    }
    Ok(rel)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rel = build_telemetry(100_000)?;
    let mut engine = PimQueryEngine::new(SimConfig::default(), rel, EngineMode::TwoXb)?;
    engine.calibrate(&CalibrationConfig::default())?;
    println!("telemetry warehouse loaded: {} readings, two-crossbar layout", 100_000);

    // Off-hours drift report per site: temperature sensors, during the
    // night OR the late evening (a disjunctive filter), with peak and
    // average drift plus the sample count — three named aggregates off
    // one planned filter mask.
    let q = Query::select([
        SelectItem::max("peak_drift", AggExpr::sub("lo_value", "lo_baseline")),
        SelectItem::avg("avg_drift", AggExpr::sub("lo_value", "lo_baseline")),
        SelectItem::count("readings"),
    ])
    .id("night_drift")
    .filter(
        col("s_kind").eq("temperature").and(col("lo_hour").lt(6u64).or(col("lo_hour").gt(21u64))),
    )
    .group_by(["s_site"])
    .build(engine.relation().schema())?;
    println!("filter: {}", q.filter);

    let out = engine.run(&q)?;
    assert_eq!(out.groups, stats::run_oracle(&q, engine.relation())?);

    let site_dict = engine.relation().schema().attr("s_site")?.dictionary().expect("dict").clone();
    println!("\noff-hours drift, temperature sensors (value - baseline):");
    println!("  {:<8} {:>10} {:>10} {:>9}", "site", "peak", "avg", "readings");
    for (key, row) in &out.groups {
        println!(
            "  {:<8} {:>10} {:>10} {:>9}",
            site_dict.decode(key[0]).unwrap_or("?"),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\nsimulated: {:.3} ms, {} of {} subgroups aggregated in PIM",
        out.report.time_ns / 1e6,
        out.report.pim_agg_subgroups,
        out.report.total_subgroups
    );
    Ok(())
}
