//! # bbpim — bulk-bitwise processing-in-memory for relational OLAP
//!
//! Facade crate for the `bbpim` workspace, a clean-room Rust
//! reproduction of *"Enabling Relational Database Analytical Processing
//! in Bulk-Bitwise Processing-In-Memory"* (Perach, Ronen, Kvatinsky —
//! SOCC 2023).
//!
//! The workspace members are re-exported under short names:
//!
//! * [`sim`] — the bit-accurate PIM hardware simulator (crossbars,
//!   MAGIC-NOR microprograms, aggregation circuit, timing / energy /
//!   endurance / area models).
//! * [`db`] — the relational substrate: columnar relations, the Star
//!   Schema Benchmark generator (uniform and skewed), pre-joining, and
//!   the 13 SSB queries as logical plans.
//! * [`engine`] — the paper's contribution: the PIM OLAP engine with
//!   one-crossbar / two-crossbar layouts, the hybrid GROUP-BY with its
//!   empirical cost model, and UPDATE via the PIM multiplexer.
//! * [`monet`] — the in-memory column-store baseline (`mnt-reg` /
//!   `mnt-join`).
//!
//! See `README.md` for a walkthrough and `examples/quickstart.rs` for a
//! complete end-to-end query.

pub use bbpim_core as engine;
pub use bbpim_db as db;
pub use bbpim_monet as monet;
pub use bbpim_sim as sim;
