//! # bbpim — bulk-bitwise processing-in-memory for relational OLAP
//!
//! Facade crate for the `bbpim` workspace, a clean-room Rust
//! reproduction of *"Enabling Relational Database Analytical Processing
//! in Bulk-Bitwise Processing-In-Memory"* (Perach, Ronen, Kvatinsky —
//! SOCC 2023).
//!
//! The workspace members are re-exported under short names:
//!
//! * [`sim`] — the bit-accurate PIM hardware simulator (crossbars,
//!   MAGIC-NOR microprograms, aggregation circuit, timing / energy /
//!   endurance / area models).
//! * [`db`] — the relational substrate: columnar relations, the Star
//!   Schema Benchmark generator (uniform and skewed), pre-joining, and
//!   the 13 SSB queries as logical plans.
//! * [`engine`] — the paper's contribution: the PIM OLAP engine with
//!   one-crossbar / two-crossbar layouts, the hybrid GROUP-BY with its
//!   empirical cost model, and UPDATE via the PIM multiplexer.
//! * [`cluster`] — sharded multi-module execution on top of [`engine`]:
//!   a `ClusterEngine` partitions the wide relation over `n` PIM
//!   modules (round-robin, hash-by-group-key, or range-by-attr),
//!   consults per-shard zone maps to skip shards a filter provably
//!   cannot match, scatters each query to the survivors on scoped
//!   threads, and merges the per-shard partial aggregates — same
//!   `run(&Query)` surface, bit-identical answers, host-serial
//!   dispatch + max-of-shards simulated wall clock. Includes a batch
//!   scheduler and cluster-wide UPDATE fan-out with zone widening.
//! * [`sched`] — streaming service on top of [`cluster`]: timestamped
//!   query arrivals (seeded Poisson traces), admission control with
//!   backpressure (FIFO or shortest-candidate-set-first), per-shard
//!   queues, a shared host dispatch bus, out-of-order completion, and
//!   p50/p95/p99 latency + throughput + utilisation accounting —
//!   deterministic per seed, answers bit-identical to `run_batch`.
//!
//! The query path is physically planned end to end: `db`'s
//! `FilterBounds` + `ZoneMap` feed `engine`'s per-page `PageSet`
//! planner and `cluster`'s pre-scatter shard pruning, so selective
//! queries only activate the pages that can matter.
//! * [`join`] — normalized star-schema storage with PIM-side semijoin
//!   bitmaps: `lineorder` plus the four dimensions stay separate PIM
//!   tables (a fraction of the pre-join's capacity), dimension filters
//!   run on their own modules, and the resulting key bitmaps cross the
//!   host channel compressed — once — before compiling into fact-side
//!   range programs through the FK columns. Same query surface, answers
//!   bit-identical to the pre-joined path.
//! * [`serve`] — SLO-aware multi-tenant serving on top of [`sched`]'s
//!   engine surface: named tenants (seeded open Poisson / burst
//!   arrivals and closed-loop think-time clients) multiplexed into one
//!   deterministic event stream, per-tenant token-bucket rate limits
//!   and SLO specs, weighted fair sharing across tenant admission
//!   queues, deadline-aware shedding at admission, and a closed-loop
//!   AIMD controller that adapts the global in-flight window from the
//!   windowed SLO-normalised p95 — per-tenant latency/goodput/drop
//!   reports, every admitted answer bit-identical to the batch oracle.
//! * [`monet`] — the in-memory column-store baseline (`mnt-reg` /
//!   `mnt-join`).
//! * [`trace`] — the observability substrate: a structured span/event
//!   recorder on the simulated clock (Chrome/Perfetto + JSONL
//!   exporters) and a metrics registry (Prometheus text + flat JSON
//!   snapshots) that every layer reports into.
//!
//! See `README.md` for a walkthrough, `examples/quickstart.rs` for a
//! complete end-to-end query, `examples/cluster_scaling.rs` for
//! shard-count scaling, `examples/star_join.rs` for the normalized
//! star-join path, and `examples/multi_tenant.rs` for the serving
//! layer's per-tenant SLO report.

pub use bbpim_cluster as cluster;
pub use bbpim_core as engine;
pub use bbpim_db as db;
pub use bbpim_join as join;
pub use bbpim_monet as monet;
pub use bbpim_sched as sched;
pub use bbpim_serve as serve;
pub use bbpim_sim as sim;
pub use bbpim_trace as trace;
