//! Workspace-local stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io,
//! and nothing in the workspace actually serializes anything yet — the
//! `#[derive(Serialize, Deserialize)]` attributes only mark types as
//! serialization-ready for future wire formats. These derives therefore
//! expand to nothing; swap in the real `serde`/`serde_derive` when a
//! registry is available.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts `#[serde(...)]` field attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts `#[serde(...)]` field attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
