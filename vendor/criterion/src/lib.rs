//! Workspace-local stand-in for the slice of `criterion` this
//! workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It is a plain wall-clock harness (median of N samples, printed to
//! stdout) rather than a statistics engine — enough for `cargo bench`
//! to build and produce comparable numbers offline. Swap in the real
//! `criterion` when a registry is available.

use std::time::{Duration, Instant};

/// Measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f` over the configured number of samples; the harness
    /// prints the median afterwards.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.times.clear();
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.times.push(start.elapsed());
            std::hint::black_box(&out);
        }
    }
}

fn run_one<R>(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher) -> R) {
    let mut b = Bencher { samples, times: Vec::new() };
    let _ = f(&mut b);
    if b.times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    b.times.sort_unstable();
    let median = b.times[b.times.len() / 2];
    let min = b.times[0];
    println!(
        "{name:<50} median {:>12.3?}  min {:>12.3?}  ({} samples)",
        median,
        min,
        b.times.len()
    );
}

/// Top-level benchmark registry (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark with the default sample count.
    pub fn bench_function<R, F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> R,
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { prefix: name.to_owned(), samples: 10 }
    }
}

/// A group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<R, F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> R,
    {
        run_one(&format!("{}/{}", self.prefix, name), self.samples, &mut f);
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Re-export for parity with `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into one runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
