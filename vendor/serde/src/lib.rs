//! Workspace-local stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the matching
//! derive macros so source files can keep their `use serde::{...}` and
//! `#[derive(Serialize, Deserialize)]` lines unchanged. The derives are
//! no-ops (nothing in this workspace serializes to a wire format yet);
//! replace this vendored crate with the real `serde` once a registry is
//! reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
