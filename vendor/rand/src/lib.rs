//! Workspace-local stand-in for the slice of `rand` 0.8 this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen` for `u64`/`f64`/`bool`,
//! and `Rng::gen_range` over half-open and inclusive `u64`/`usize`
//! ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and good
//! enough for synthetic benchmark data and randomized tests. It is NOT
//! the real `rand::rngs::StdRng` (ChaCha12), so absolute generated
//! values differ from upstream; everything in this workspace only
//! relies on determinism per seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed (the only constructor used here).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    };
}

impl_sample_range!(u64);
impl_sample_range!(usize);
impl_sample_range!(u32);

/// The user-facing sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
