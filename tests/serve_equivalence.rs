//! Serving-layer equivalence, determinism and the closed-loop
//! acceptance bar: every answer a multi-tenant serve session admits
//! must be bit-identical to the storage model's own batch path — for
//! both models (pre-joined `ClusterEngine` and normalized
//! `StarCluster`) and for 1 and 4 shards — the full outcome must be a
//! pure function of the seed, and at the bench gate's 4× overload the
//! AIMD window must keep the light tenant's p95 promise while
//! harvesting at least as much heavy-tenant goodput as the best
//! SLO-respecting static `--inflight` knob.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::join::StarCluster;
use bbpim::serve::{
    run_serve, AimdConfig, ArrivalProcess, RateLimit, ServeConfig, ServeOutcome, SloSpec,
    TenantSpec, WindowPolicy,
};
use bbpim::sim::SimConfig;

const SHARD_COUNTS: [usize; 2] = [1, 4];

fn db() -> SsbDb {
    SsbDb::generate(&SsbParams::tiny_for_tests())
}

fn shared_model() -> bbpim::engine::groupby::cost_model::GroupByModel {
    let (_, model) = run_calibration(
        &SimConfig::default(),
        EngineMode::OneXb,
        &CalibrationConfig::tiny_for_tests(),
    )
    .expect("calibration");
    model
}

fn flat_cluster(db: &SsbDb, shards: usize) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        db.prejoin(),
        EngineMode::OneXb,
        shards,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(shared_model());
    c
}

fn star_cluster(db: &SsbDb, shards: usize) -> StarCluster {
    StarCluster::new(
        SimConfig::small_for_tests(),
        db,
        EngineMode::OneXb,
        shards,
        Partitioner::RoundRobin,
    )
    .expect("star cluster construction")
}

/// A mix exercising every arrival process, a rate limit and a deadline:
/// open Poisson probes, a mid-session burst behind a token bucket with
/// a deadline (so some requests shed), and closed-loop clients.
fn tenants() -> Vec<TenantSpec> {
    let q = queries::standard_queries();
    vec![
        TenantSpec {
            name: "probes".into(),
            queries: vec![q[2].clone(), q[9].clone()],
            process: ArrivalProcess::OpenPoisson { arrivals: 10, mean_interarrival_ns: 150_000.0 },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 50.0e6, deadline_ns: None },
            weight: 2.0,
        },
        TenantSpec {
            name: "burst".into(),
            queries: vec![q[0].clone(), q[6].clone()],
            process: ArrivalProcess::Burst { arrivals: 8, at_ns: 400_000.0 },
            writes: None,
            rate_limit: Some(RateLimit { rate_per_s: 5_000.0, burst: 2.0 }),
            slo: SloSpec { p95_target_ns: 80.0e6, deadline_ns: Some(2.0e6) },
            weight: 1.0,
        },
        TenantSpec {
            name: "clients".into(),
            queries: vec![q[4].clone()],
            process: ArrivalProcess::Closed {
                clients: 2,
                queries_per_client: 2,
                mean_think_ns: 100_000.0,
            },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 50.0e6, deadline_ns: None },
            weight: 1.0,
        },
    ]
}

fn serve_cfg(seed: u64) -> ServeConfig {
    ServeConfig { seed, window: WindowPolicy::Aimd(AimdConfig::default()) }
}

/// Every admitted answer equals the query's batch-path answer, and the
/// session conserves requests (served + shed = submitted).
fn check_conservation(outcome: &ServeOutcome) {
    let submitted: usize = outcome.submitted.iter().sum();
    assert_eq!(
        outcome.completions.len() + outcome.drops.len(),
        submitted,
        "every request completes or sheds"
    );
    assert_eq!(outcome.completions.len(), outcome.executions.len());
}

#[test]
fn served_answers_match_the_prejoined_batch_path_across_shards() {
    let db = db();
    let specs = tenants();
    for shards in SHARD_COUNTS {
        let mut cluster = flat_cluster(&db, shards);
        let distinct: Vec<_> = specs.iter().flat_map(|t| t.queries.clone()).collect();
        let batch = cluster.run_batch(&distinct).expect("batch oracle");
        let outcome = run_serve(&mut cluster, &specs, &serve_cfg(11)).expect("serve");
        check_conservation(&outcome);
        assert!(!outcome.completions.is_empty(), "the session served something");
        for (c, e) in outcome.completions.iter().zip(&outcome.executions) {
            let i = distinct.iter().position(|q| q.id == c.query_id).expect("known query");
            assert_eq!(
                e.groups, batch.executions[i].groups,
                "served answer for {} at {shards} shards",
                c.query_id
            );
        }
    }
}

#[test]
fn served_answers_match_the_normalized_star_path_across_shards() {
    let db = db();
    let specs = tenants();
    for shards in SHARD_COUNTS {
        let mut star = star_cluster(&db, shards);
        let distinct: Vec<_> = specs.iter().flat_map(|t| t.queries.clone()).collect();
        let oracle: Vec<_> =
            distinct.iter().map(|q| star.run(q).expect("star oracle").groups).collect();
        let outcome = run_serve(&mut star, &specs, &serve_cfg(11)).expect("serve");
        check_conservation(&outcome);
        assert!(!outcome.completions.is_empty(), "the session served something");
        for (c, e) in outcome.completions.iter().zip(&outcome.executions) {
            let i = distinct.iter().position(|q| q.id == c.query_id).expect("known query");
            assert_eq!(
                e.groups, oracle[i],
                "served answer for {} at {shards} shards (normalized)",
                c.query_id
            );
        }
    }
}

#[test]
fn serve_outcome_is_a_pure_function_of_the_seed() {
    let db = db();
    let specs = tenants();
    let mut a = flat_cluster(&db, 4);
    let mut b = flat_cluster(&db, 4);
    let oa = run_serve(&mut a, &specs, &serve_cfg(23)).expect("serve a");
    let ob = run_serve(&mut b, &specs, &serve_cfg(23)).expect("serve b");
    assert_eq!(oa.timeline, ob.timeline, "same seed, same event timeline");
    assert_eq!(oa.completions, ob.completions);
    assert_eq!(oa.drops, ob.drops);
    assert_eq!(oa.window_trajectory, ob.window_trajectory);

    let mut c = flat_cluster(&db, 4);
    let oc = run_serve(&mut c, &specs, &serve_cfg(24)).expect("serve c");
    assert_ne!(oa.timeline, oc.timeline, "a different seed reshuffles the session");
}

/// The bench gate's acceptance bar, pinned at the CI snapshot
/// configuration (SF 0.002, skewed, 4 shards, 120 arrivals, 4×
/// overload): the AIMD window keeps the light tenant's p95 inside its
/// promise, and no static `--inflight` knob that also keeps the
/// promise harvests more heavy-tenant goodput. (The study itself
/// asserts every served answer against the batch oracle.)
#[test]
fn aimd_keeps_the_light_slo_and_beats_every_slo_respecting_static() {
    let cfg = bbpim_bench::BenchConfig {
        sf: 0.002,
        arrivals: 120,
        shards: vec![4],
        ..bbpim_bench::BenchConfig::default()
    };
    let s = bbpim_bench::setup(cfg);
    let mut trace = bbpim::trace::TraceRecorder::disabled();
    let mut reg = bbpim::trace::MetricsRegistry::new();
    let study = bbpim_bench::run_serve_study_observed(
        &s,
        EngineMode::OneXb,
        4,
        &[4.0],
        4.0,
        &[1, 2, 4, 8, 16],
        &mut trace,
        &mut reg,
    );
    let gate = study.gate_row();
    let light = gate.report("light");
    let heavy = gate.report("heavy");
    assert!(
        light.slo_met,
        "AIMD keeps the light tenant's p95 promise: p95 {:.3} ms vs target {:.3} ms",
        light.latency.p95_ns / 1e6,
        light.p95_target_ns / 1e6
    );
    if let Some((policy, goodput)) = study.best_static_heavy_goodput() {
        assert!(
            heavy.goodput_qps >= goodput,
            "AIMD heavy goodput {:.1}/s must not trail the best SLO-respecting \
             static ({policy} at {goodput:.1}/s)",
            heavy.goodput_qps
        );
    }
    assert!(heavy.goodput_qps > 0.0, "the heavy tenant made progress");
    assert!(
        !gate.outcome.decisions.is_empty(),
        "the controller actually adapted during the gate session"
    );
}
