//! Trace and metrics determinism, plus the no-observer guarantee: with
//! a fixed seed and config the Perfetto, JSONL, Prometheus-text and
//! JSON-snapshot exports are byte-identical across two runs — for both
//! storage models (pre-joined `ClusterEngine` and normalized
//! `StarCluster`) and with the host-channel contention model on and
//! off — and enabling tracing changes no answer, no timeline and no
//! simulated total. The recorded shape is also checked structurally:
//! host-bus spans are serialised (single shared channel) while module
//! spans overlap (independent modules).

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::join::StarCluster;
use bbpim::sched::{
    record_stream_metrics, run_stream_traced, SchedConfig, StreamEngine, StreamOutcome, Workload,
};
use bbpim::sim::SimConfig;
use bbpim::trace::export::{jsonl, perfetto_json};
use bbpim::trace::{EventShape, MetricsRegistry, TraceRecorder};

const SHARDS: usize = 4;

fn shared_model() -> bbpim::engine::groupby::cost_model::GroupByModel {
    let (_, model) = run_calibration(
        &SimConfig::default(),
        EngineMode::OneXb,
        &CalibrationConfig::tiny_for_tests(),
    )
    .expect("calibration");
    model
}

fn flat_cluster(wide: &Relation, contention: bool) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        SHARDS,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(shared_model());
    c.set_contention(contention);
    c
}

fn star_cluster(db: &SsbDb, contention: bool) -> StarCluster {
    let mut c = StarCluster::new(
        SimConfig::small_for_tests(),
        db,
        EngineMode::OneXb,
        SHARDS,
        Partitioner::RoundRobin,
    )
    .expect("star cluster construction");
    c.set_contention(contention);
    c
}

fn workload() -> Workload {
    Workload::poisson(queries::standard_queries(), 20, 120_000.0, 0xB1_7B17)
}

fn traced<E: StreamEngine>(cluster: &mut E, enabled: bool) -> (StreamOutcome, TraceRecorder) {
    let mut trace = if enabled { TraceRecorder::enabled() } else { TraceRecorder::disabled() };
    let out = run_stream_traced(cluster, &workload(), &SchedConfig::default(), &mut trace)
        .expect("stream");
    (out, trace)
}

/// Two identical runs export identical bytes; a third untraced run
/// proves the recorder never perturbs the simulation.
fn assert_deterministic<E: StreamEngine, F: FnMut() -> E>(mut mk: F, tag: &str) {
    let (out_a, tr_a) = traced(&mut mk(), true);
    let (out_b, tr_b) = traced(&mut mk(), true);
    assert!(!tr_a.is_empty(), "{tag}: the trace captured events");
    assert_eq!(perfetto_json(&tr_a), perfetto_json(&tr_b), "{tag}: Perfetto bytes");
    assert_eq!(jsonl(&tr_a), jsonl(&tr_b), "{tag}: JSONL bytes");

    let registry = |o: &StreamOutcome| {
        let mut r = MetricsRegistry::new();
        record_stream_metrics(&mut r, o, &[("run", "det")]);
        r
    };
    let (ra, rb) = (registry(&out_a), registry(&out_b));
    assert_eq!(ra.prometheus_text(), rb.prometheus_text(), "{tag}: Prometheus bytes");
    assert_eq!(ra.snapshot_json(), rb.snapshot_json(), "{tag}: snapshot bytes");

    let (untraced, empty) = traced(&mut mk(), false);
    assert!(empty.is_empty(), "{tag}: a disabled recorder stays empty");
    assert_eq!(untraced.timeline, out_a.timeline, "{tag}: tracing must not move the timeline");
    assert_eq!(untraced.completions, out_a.completions, "{tag}: completions unchanged");
    assert_eq!(untraced.makespan_ns, out_a.makespan_ns, "{tag}: makespan unchanged");
    assert_eq!(untraced.host_busy_ns, out_a.host_busy_ns, "{tag}: host accounting unchanged");
    for (u, t) in untraced.executions.iter().zip(&out_a.executions) {
        assert_eq!(u.groups, t.groups, "{tag}: answers unchanged under tracing");
        assert_eq!(u.report, t.report, "{tag}: reports unchanged under tracing");
    }
}

#[test]
fn exports_are_bit_identical_on_the_prejoined_cluster() {
    let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
    for contention in [true, false] {
        assert_deterministic(
            || flat_cluster(&wide, contention),
            &format!("prejoined, contention={contention}"),
        );
    }
}

#[test]
fn exports_are_bit_identical_on_the_star_cluster() {
    let db = SsbDb::generate(&SsbParams::tiny_for_tests());
    for contention in [true, false] {
        assert_deterministic(
            || star_cluster(&db, contention),
            &format!("star, contention={contention}"),
        );
    }
}

#[test]
fn host_bus_spans_serialise_while_module_spans_overlap() {
    let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
    let (_, trace) = traced(&mut flat_cluster(&wide, true), true);

    let track_id = |name: &str| {
        trace.tracks().iter().position(|t| t == name).unwrap_or_else(|| panic!("track {name}"))
    };
    let spans_on = |track: usize| -> Vec<(f64, f64)> {
        trace
            .events()
            .iter()
            .filter(|e| e.track == track)
            .filter_map(|e| match e.shape {
                EventShape::Span { dur_ns } if dur_ns > 0.0 => Some((e.ts_ns, e.ts_ns + dur_ns)),
                _ => None,
            })
            .collect()
    };

    // The shared channel serves one grant at a time: consecutive spans
    // on the host-bus track never overlap.
    let bus = spans_on(track_id("host-bus"));
    assert!(bus.len() > 1, "the run exercised the host bus");
    for w in bus.windows(2) {
        assert!(
            w[1].0 >= w[0].1 - 1e-6,
            "host-bus spans must serialise: [{}, {}] then [{}, {}]",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }

    // Modules are independent: some pair of spans on *different*
    // module tracks runs concurrently.
    let modules: Vec<Vec<(f64, f64)>> =
        (0..SHARDS).map(|m| spans_on(track_id(&format!("module-{m}")))).collect();
    let overlapping = modules.iter().enumerate().any(|(i, a)| {
        modules
            .iter()
            .skip(i + 1)
            .any(|b| a.iter().any(|&(s0, e0)| b.iter().any(|&(s1, e1)| s0 < e1 && s1 < e0)))
    });
    assert!(overlapping, "module tracks must overlap somewhere in a 4-shard streamed run");
}
