//! Streaming scheduler equivalence and determinism: streamed answers
//! must be bit-identical to `run_batch` (and the row-at-a-time oracle)
//! for every shard count and admission policy; the event timeline must
//! be a pure function of the seed; and zone-map pruning must let short
//! queries overtake long ones under load.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::sched::{run_stream, AdmissionPolicy, SchedConfig, Workload};
use bbpim::sim::SimConfig;

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn ssb_wide() -> Relation {
    SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin()
}

/// One calibration sweep shared by every cluster in this file (the
/// model depends on config + mode only, not on data or shard count).
fn shared_model() -> bbpim::engine::groupby::cost_model::GroupByModel {
    let (_, model) = run_calibration(
        &SimConfig::default(),
        EngineMode::OneXb,
        &CalibrationConfig::tiny_for_tests(),
    )
    .expect("calibration");
    model
}

fn cluster(wide: &Relation, shards: usize) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        shards,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(shared_model());
    c
}

#[test]
fn streamed_equals_batch_equals_oracle_all_shard_counts_and_policies() {
    let wide = ssb_wide();
    let workload = Workload::poisson(queries::standard_queries(), 20, 200_000.0, 0xB1_7B17);
    let oracles: Vec<_> = workload
        .arrived_queries()
        .iter()
        .map(|q| stats::run_oracle(q, &wide).expect("oracle"))
        .collect();
    for shards in SHARD_COUNTS {
        let mut c = cluster(&wide, shards);
        let batch = c.run_batch(&workload.arrived_queries()).expect("batch");
        for policy in AdmissionPolicy::all() {
            let out = run_stream(
                &mut c,
                &workload,
                &SchedConfig { max_in_flight: 3, policy, ..SchedConfig::default() },
            )
            .unwrap_or_else(|e| panic!("{shards} shards {}: {e}", policy.label()));
            assert_eq!(out.completions.len(), workload.len());
            assert_eq!(out.executions.len(), workload.len());
            for ((streamed, batched), oracle) in
                out.executions.iter().zip(&batch.executions).zip(&oracles)
            {
                let id = &streamed.report.query_id;
                assert_eq!(
                    streamed.groups,
                    batched.groups,
                    "streamed/batch mismatch on {id} at {shards} shards, {}",
                    policy.label()
                );
                assert_eq!(&streamed.groups, oracle, "streamed/oracle mismatch on {id}");
                assert_eq!(streamed.report, batched.report, "report mismatch on {id}");
            }
        }
    }
}

#[test]
fn same_seed_reproduces_timeline_and_latencies_exactly() {
    let wide = ssb_wide();
    let workload = Workload::poisson(queries::standard_queries(), 26, 100_000.0, 42);
    for policy in AdmissionPolicy::all() {
        let run = || {
            let mut c = cluster(&wide, 4);
            run_stream(
                &mut c,
                &workload,
                &SchedConfig { max_in_flight: 2, policy, ..SchedConfig::default() },
            )
            .expect("stream")
        };
        let a = run();
        let b = run();
        assert_eq!(a.timeline, b.timeline, "{} timeline must replay exactly", policy.label());
        assert_eq!(a.completions, b.completions, "{}", policy.label());
        assert_eq!(a.makespan_ns, b.makespan_ns, "{}", policy.label());
        assert_eq!(a.host_busy_ns, b.host_busy_ns, "{}", policy.label());
        assert_eq!(a.shard_busy_ns, b.shard_busy_ns, "{}", policy.label());
    }
    // A different seed must produce a different trace (and timeline).
    let other = Workload::poisson(queries::standard_queries(), 26, 100_000.0, 43);
    assert_ne!(workload, other);
}

#[test]
fn pruned_short_query_overtakes_long_one_under_load() {
    let wide = ssb_wide();
    let mut c = cluster(&wide, 8);
    // The long query materialises a product expression over years
    // 1992–1997 — every shard except the 1998 one, with several times
    // the probe's per-shard PIM work. The 1998 probe's candidate set is
    // disjoint, so after its turn on the shared dispatch bus it runs on
    // an idle module and finishes first even though it arrived later.
    let q_long = Query::single(
        "long",
        vec![Atom::Between { attr: "d_year".into(), lo: 1992u64.into(), hi: 1997u64.into() }],
        vec![],
        AggFunc::Sum,
        AggExpr::Mul("lo_extendedprice".into(), "lo_discount".into()),
    );
    let q_short = Query::single(
        "y1998",
        vec![Atom::Eq { attr: "d_year".into(), value: 1998u64.into() }],
        vec![],
        AggFunc::Sum,
        AggExpr::Attr("lo_quantity".into()),
    );
    let workload = Workload::new(
        vec![q_long, q_short],
        vec![
            bbpim::sched::Arrival { at_ns: 0.0, query: 0 },
            bbpim::sched::Arrival { at_ns: 1.0, query: 1 },
        ],
    )
    .expect("workload");
    let out = run_stream(&mut c, &workload, &SchedConfig::default()).expect("stream");
    assert_eq!(out.completions[0].arrival, 1, "the 1998 probe must complete before Q3.1");
    assert_eq!(out.overtaken(), 1);
    assert!(out.completions[0].shards_pruned > 0, "the overtake comes from pruning");
    // answers unchanged
    for (exec, q) in out.executions.iter().zip(&workload.arrived_queries()) {
        assert_eq!(exec.report.query_id, q.id);
        assert_eq!(exec.groups, stats::run_oracle(q, &wide).expect("oracle"), "{}", q.id);
    }
}

#[test]
fn admission_policies_change_order_not_answers() {
    let wide = ssb_wide();
    let workload = Workload::poisson(queries::standard_queries(), 16, 50_000.0, 7);
    let run = |policy| {
        let mut c = cluster(&wide, 4);
        run_stream(
            &mut c,
            &workload,
            &SchedConfig { max_in_flight: 1, policy, ..SchedConfig::default() },
        )
        .expect("stream")
    };
    let fifo = run(AdmissionPolicy::Fifo);
    let scsf = run(AdmissionPolicy::ShortestCandidateFirst);
    for (a, b) in fifo.executions.iter().zip(&scsf.executions) {
        assert_eq!(a.groups, b.groups, "{}", a.report.query_id);
    }
    // both drain the same total work through the host bus
    assert!((fifo.host_busy_ns - scsf.host_busy_ns).abs() < 1e-6);
    let completed = |o: &bbpim::sched::StreamOutcome| o.completions.len();
    assert_eq!(completed(&fifo), completed(&scsf));
}
