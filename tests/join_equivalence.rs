//! Star-join equivalence: the normalized star cluster must return
//! bit-identical answers to the pre-joined cluster, the pre-joined
//! oracle and both MonetDB stand-ins for every SSB query, across shard
//! counts, engine modes and contention settings — including
//! UPDATE-then-query on a dimension table. On top of equivalence, the
//! normalized path must put *fewer* bytes on the host channel than the
//! pre-joined two-crossbar path for the selective Q1.x class: a
//! compressed dimension bitmap replaces per-disjunct wide-mask traffic.

use bbpim::cluster::{ClusterEngine, ClusterReport, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::Query;
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::join::StarCluster;
use bbpim::monet::MonetEngine;
use bbpim::sim::SimConfig;

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn db() -> SsbDb {
    SsbDb::generate(&SsbParams::tiny_for_tests())
}

/// Normalized records are narrow enough for the small test config —
/// answers are config-independent, so the big matrix runs on it. Tests
/// comparing host-channel bytes against the pre-joined cluster use
/// [`SimConfig::default`] for both sides instead (the wide pre-joined
/// record does not fit a small crossbar).
fn star_with(cfg: SimConfig, db: &SsbDb, mode: EngineMode, shards: usize) -> StarCluster {
    StarCluster::new(cfg, db, mode, shards, Partitioner::RoundRobin)
        .expect("star cluster construction")
}

fn star(db: &SsbDb, mode: EngineMode, shards: usize) -> StarCluster {
    star_with(SimConfig::small_for_tests(), db, mode, shards)
}

fn prejoin_cluster(db: &SsbDb, mode: EngineMode, shards: usize) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        db.prejoin(),
        mode,
        shards,
        Partitioner::RoundRobin,
    )
    .expect("pre-joined cluster construction");
    c.calibrate(&CalibrationConfig::tiny_for_tests()).expect("calibration");
    c
}

/// Host-channel bytes a cluster execution put on the shared bus, from
/// the per-shard phase logs (join preludes ride the first shard's log).
fn host_bytes(report: &ClusterReport) -> u64 {
    report.per_shard.iter().map(|r| r.phases.host_bytes()).sum()
}

#[test]
fn all_13_queries_match_prejoin_and_monet_across_the_matrix() {
    let db = db();
    let wide = db.prejoin();
    let query_set = queries::standard_queries();

    // references: row-at-a-time oracle, both MonetDB stand-ins, and the
    // pre-joined PIM cluster (one configuration suffices — its own
    // matrix equivalence is covered by `cluster_equivalence.rs`)
    let mnt_reg = MonetEngine::star(&db, 2);
    let mnt_join = MonetEngine::prejoined(&wide, 2);
    let mut prejoined = prejoin_cluster(&db, EngineMode::OneXb, 4);
    let references: Vec<_> = query_set
        .iter()
        .map(|q| {
            let oracle = stats::run_oracle(q, &wide).expect("oracle");
            assert_eq!(mnt_reg.run(q).unwrap().groups, oracle, "mnt_reg {}", q.id);
            assert_eq!(mnt_join.run(q).unwrap().groups, oracle, "mnt_join {}", q.id);
            assert_eq!(prejoined.run(q).unwrap().groups, oracle, "pre-joined PIM {}", q.id);
            oracle
        })
        .collect();

    for shards in SHARD_COUNTS {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let mut c = star(&db, mode, shards);
            for contention in [true, false] {
                c.set_contention(contention);
                for (q, reference) in query_set.iter().zip(&references) {
                    let out = c.run(q).unwrap_or_else(|e| {
                        panic!(
                            "{} on {shards} shards, {mode:?}, contention {contention}: {e}",
                            q.id
                        )
                    });
                    assert_eq!(
                        &out.groups, reference,
                        "{} on {shards} shards, {mode:?}, contention {contention}",
                        q.id
                    );
                    // planner-only answers (empty dimension selection)
                    // legitimately cost nothing
                    if out.report.selected > 0 {
                        assert!(out.report.time_ns > 0.0, "{}", q.id);
                    }
                }
            }
        }
    }
}

#[test]
fn dimension_update_then_query_agrees_with_patched_oracle() {
    let db = db();
    // move 1994 into 1993 on the *date dimension*: one small module
    // rewrite instead of a replicated-column rewrite on every shard
    let m = Mutation::update()
        .filter(col("d_year").eq(1994u64))
        .set("d_year", 1993u64)
        .build_unchecked();
    let probe = queries::standard_query("Q1.1").unwrap(); // d_year = 1993
    let grouped = queries::standard_query("Q2.1").unwrap(); // groups by d_year

    // the oracle runs on the pre-joined relation with the same patch
    let mut wide = db.prejoin();
    let year = wide.schema().index_of("d_year").unwrap();
    for row in 0..wide.len() {
        if wide.value(row, year) == 1994 {
            wide.set_value(row, year, 1993).unwrap();
        }
    }

    for shards in SHARD_COUNTS {
        let mut c = star(&db, EngineMode::OneXb, shards);
        let rep = c.mutate(&m).unwrap();
        assert_eq!(rep.records_updated, 365, "{shards} shards");
        assert_eq!(rep.per_shard.len(), 1, "a dimension UPDATE touches one module");
        assert_eq!(rep.shards_pruned, 0);
        for q in [&probe, &grouped] {
            let out = c.run(q).unwrap();
            let oracle = stats::run_oracle(q, &wide).unwrap();
            assert_eq!(out.groups, oracle, "{} after UPDATE, {shards} shards", q.id);
        }
    }
}

#[test]
fn selective_queries_put_fewer_bytes_on_the_bus_than_prejoin() {
    let db = db();
    let shards = 4;
    let mut star_cluster = star_with(SimConfig::default(), &db, EngineMode::TwoXb, shards);
    let mut prejoined = prejoin_cluster(&db, EngineMode::TwoXb, shards);
    for id in ["Q1.1", "Q1.2", "Q1.3"] {
        let q = queries::standard_query(id).unwrap();
        let star_bytes = host_bytes(&star_cluster.run(&q).unwrap().report);
        let prejoin_bytes = host_bytes(&prejoined.run(&q).unwrap().report);
        assert!(
            star_bytes < prejoin_bytes,
            "{id}: normalized {star_bytes} B vs pre-joined {prejoin_bytes} B on the host channel"
        );
    }
}

#[test]
fn explain_ledger_matches_the_executed_win() {
    let db = db();
    let c = star(&db, EngineMode::TwoXb, 4);
    let q = queries::standard_query("Q1.1").unwrap();
    let ex = c.explain(&q).unwrap();
    assert!(!ex.join_transfers.is_empty(), "Q1.1 filters the date dimension");
    assert!(ex.join_wire_bytes() <= ex.join_raw_bytes());
    for t in &ex.join_transfers {
        assert!(t.keys_selected <= t.key_space);
        assert_eq!(t.broadcast_shards, 4);
    }
    let rendered = ex.detail();
    assert!(rendered.contains("semijoin: date"), "detail must render the transfer:\n{rendered}");
}

#[test]
fn streamed_star_workload_is_bit_identical_to_batch_runs() {
    use bbpim::sched::{run_stream, SchedConfig, Workload};
    let db = db();
    let query_set: Vec<Query> =
        ["Q1.1", "Q2.1", "Q3.1"].iter().map(|id| queries::standard_query(id).unwrap()).collect();
    let workload = Workload::poisson(query_set.clone(), 6, 40_000.0, 13);
    let mut c = star(&db, EngineMode::OneXb, 4);
    let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
    assert_eq!(out.completions.len(), 6);
    let wide = db.prejoin();
    for (arrival, exec) in workload.arrivals().iter().zip(&out.executions) {
        let oracle = stats::run_oracle(&query_set[arrival.query], &wide).unwrap();
        assert_eq!(exec.groups, oracle);
    }
}
