//! Randomized cross-crate tests: random mini-warehouses and random
//! queries must agree between the PIM engine, the column-store baseline
//! and the oracle; UPDATE through the PIM MUX must equal a host-side
//! rewrite.
//!
//! Formerly written with `proptest`; rewritten as deterministic
//! seed-driven loops because the build environment vendors only a
//! minimal `rand` stand-in. Each case is a pure function of the loop
//! index, so failures reproduce exactly.

use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::schema::{Attribute, Schema};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::monet::MonetEngine;
use bbpim::sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A random mini-warehouse: two fact attributes, two dimension
/// attributes, and 64..=600 rows.
fn random_relation(rng: &mut StdRng) -> Relation {
    let rows = rng.gen_range(64usize..=600);
    let schema = Schema::new(
        "w",
        vec![
            Attribute::numeric("lo_a", 8),
            Attribute::numeric("lo_b", 6),
            Attribute::numeric("d_g", 4),
            Attribute::numeric("d_h", 3),
        ],
    );
    let mut rel = Relation::with_capacity(schema, rows);
    for _ in 0..rows {
        let row = [
            rng.gen_range(0u64..256),
            rng.gen_range(0u64..64),
            rng.gen_range(0u64..16),
            rng.gen_range(0u64..8),
        ];
        rel.push_row(&row).expect("row within widths");
    }
    rel
}

fn random_atom(rng: &mut StdRng) -> Atom {
    match rng.gen_range(0u64..5) {
        0 => Atom::Lt { attr: "lo_a".into(), value: rng.gen_range(0u64..256).into() },
        1 => Atom::Gt { attr: "lo_b".into(), value: rng.gen_range(0u64..64).into() },
        2 => Atom::Eq { attr: "d_g".into(), value: rng.gen_range(0u64..16).into() },
        3 => {
            let a = rng.gen_range(0u64..8);
            let b = rng.gen_range(0u64..8);
            Atom::Between { attr: "d_h".into(), lo: a.min(b).into(), hi: a.max(b).into() }
        }
        _ => {
            let n = rng.gen_range(1usize..4);
            Atom::In {
                attr: "d_g".into(),
                values: (0..n).map(|_| rng.gen_range(0u64..16).into()).collect(),
            }
        }
    }
}

fn random_query(rng: &mut StdRng, allow_sub: bool) -> Query {
    let agg_expr = loop {
        let e = match rng.gen_range(0u64..3) {
            0 => AggExpr::Attr("lo_a".into()),
            1 => AggExpr::Mul("lo_a".into(), "lo_b".into()),
            _ => AggExpr::Sub("lo_a".into(), "lo_b".into()),
        };
        // Sub can wrap (lo_a < lo_b); both oracle and engine use the
        // same wrapping semantics at the attribute widths, except the
        // in-crossbar subtraction wraps at max(width) while the oracle
        // wraps at u64 — keep inputs non-negative instead.
        if allow_sub || !matches!(e, AggExpr::Sub(..)) {
            break e;
        }
    };
    let agg_func = match rng.gen_range(0u64..5) {
        0 => AggFunc::Sum,
        1 => AggFunc::Min,
        2 => AggFunc::Max,
        3 => AggFunc::Count,
        _ => AggFunc::Avg,
    };
    let group_by = match rng.gen_range(0u64..3) {
        0 => Vec::new(),
        1 => vec!["d_g".to_string()],
        _ => vec!["d_g".to_string(), "d_h".to_string()],
    };
    let filter = (0..rng.gen_range(0usize..3)).map(|_| random_atom(rng)).collect();
    Query::single("prop", filter, group_by, agg_func, agg_expr)
}

#[test]
fn pim_engine_matches_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA110 + case);
        let rel = random_relation(&mut rng);
        let q = random_query(&mut rng, false);
        let mut engine =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb)
                .unwrap();
        engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = engine.run(&q).unwrap();
        let oracle = stats::run_oracle(&q, &rel).unwrap();
        assert_eq!(out.groups, oracle, "case {case}: {q:?}");
    }
}

#[test]
fn monet_matches_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB220 + case);
        let rel = random_relation(&mut rng);
        let q = random_query(&mut rng, true);
        let engine = MonetEngine::prejoined(&rel, 3);
        let got = engine.run(&q).unwrap();
        let oracle = stats::run_oracle(&q, &rel).unwrap();
        assert_eq!(got.groups, oracle, "case {case}: {q:?}");
    }
}

#[test]
fn update_via_mux_equals_host_rewrite() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC330 + case);
        let rel = random_relation(&mut rng);
        let threshold = rng.gen_range(0u64..256);
        let new_value = rng.gen_range(0u64..16);
        let mut engine =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb)
                .unwrap();
        let m = Mutation::update()
            .filter(col("lo_a").lt(threshold))
            .set("d_g", new_value)
            .build(rel.schema())
            .expect("update");
        let report = engine.mutate(&m).unwrap();

        // host-side reference rewrite
        let mut reference = rel.clone();
        let g = reference.schema().index_of("d_g").unwrap();
        let a = reference.schema().index_of("lo_a").unwrap();
        let mut updated = 0u64;
        for row in 0..reference.len() {
            if reference.value(row, a) < threshold {
                reference.set_value(row, g, new_value).unwrap();
                updated += 1;
            }
        }
        assert_eq!(report.records_updated, updated, "case {case}");
        // engine catalog and reference agree
        for row in 0..reference.len() {
            assert_eq!(engine.relation().value(row, g), reference.value(row, g), "case {case}");
        }
    }
}

#[test]
fn selectivity_is_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD440 + case);
        let rel = random_relation(&mut rng);
        let q = random_query(&mut rng, true);
        let mut engine =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb)
                .unwrap();
        engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = engine.run(&q).unwrap();
        let expected = stats::selectivity(&q, &rel).unwrap();
        assert!(
            (out.report.selectivity - expected).abs() < 1e-12,
            "case {case}: {} vs {expected}",
            out.report.selectivity
        );
    }
}
