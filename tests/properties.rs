//! Property-based cross-crate tests: random mini-warehouses and random
//! queries must agree between the PIM engine, the column-store baseline
//! and the oracle; UPDATE through the PIM MUX must equal a host-side
//! rewrite.

use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::schema::{Attribute, Schema};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::update::UpdateOp;
use bbpim::monet::MonetEngine;
use bbpim::sim::SimConfig;
use proptest::prelude::*;

/// A random mini-warehouse: two fact attributes, two dimension
/// attributes, and 64..=600 rows.
fn arb_relation() -> impl Strategy<Value = Relation> {
    (64usize..=600, any::<u64>()).prop_map(|(rows, seed)| {
        let schema = Schema::new(
            "w",
            vec![
                Attribute::numeric("lo_a", 8),
                Attribute::numeric("lo_b", 6),
                Attribute::numeric("d_g", 4),
                Attribute::numeric("d_h", 3),
            ],
        );
        let mut rel = Relation::with_capacity(schema, rows);
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..rows {
            let row = [next() % 256, next() % 64, next() % 16, next() % 8];
            rel.push_row(&row).expect("row within widths");
        }
        rel
    })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0u64..256).prop_map(|v| Atom::Lt { attr: "lo_a".into(), value: v.into() }),
        (0u64..64).prop_map(|v| Atom::Gt { attr: "lo_b".into(), value: v.into() }),
        (0u64..16).prop_map(|v| Atom::Eq { attr: "d_g".into(), value: v.into() }),
        (0u64..8, 0u64..8).prop_map(|(a, b)| Atom::Between {
            attr: "d_h".into(),
            lo: a.min(b).into(),
            hi: a.max(b).into(),
        }),
        proptest::collection::vec(0u64..16, 1..4).prop_map(|vs| Atom::In {
            attr: "d_g".into(),
            values: vs.into_iter().map(Into::into).collect(),
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    let expr = prop_oneof![
        Just(AggExpr::Attr("lo_a".into())),
        Just(AggExpr::Mul("lo_a".into(), "lo_b".into())),
        Just(AggExpr::Sub("lo_a".into(), "lo_b".into())),
    ];
    let func = prop_oneof![Just(AggFunc::Sum), Just(AggFunc::Min), Just(AggFunc::Max)];
    let group = prop_oneof![
        Just(Vec::<String>::new()),
        Just(vec!["d_g".to_string()]),
        Just(vec!["d_g".to_string(), "d_h".to_string()]),
    ];
    (proptest::collection::vec(arb_atom(), 0..3), group, func, expr).prop_map(
        |(filter, group_by, agg_func, agg_expr)| Query {
            id: "prop".into(),
            filter,
            group_by,
            agg_func,
            agg_expr,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pim_engine_matches_oracle(rel in arb_relation(), q in arb_query()) {
        // Sub can wrap (lo_a < lo_b); both oracle and engine use the
        // same wrapping semantics at the attribute widths, except the
        // in-crossbar subtraction wraps at max(width) while the oracle
        // wraps at u64 — keep inputs non-negative instead.
        prop_assume!(!matches!(q.agg_expr, AggExpr::Sub(..)));
        let mut engine = PimQueryEngine::new(
            SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb).unwrap();
        engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = engine.run(&q).unwrap();
        let oracle = stats::run_oracle(&q, &rel).unwrap();
        prop_assert_eq!(out.groups, oracle);
    }

    #[test]
    fn monet_matches_oracle(rel in arb_relation(), q in arb_query()) {
        let engine = MonetEngine::prejoined(&rel, 3);
        let got = engine.run(&q).unwrap();
        let oracle = stats::run_oracle(&q, &rel).unwrap();
        prop_assert_eq!(got.groups, oracle);
    }

    #[test]
    fn update_via_mux_equals_host_rewrite(
        rel in arb_relation(),
        threshold in 0u64..256,
        new_value in 0u64..16,
    ) {
        let mut engine = PimQueryEngine::new(
            SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb).unwrap();
        let op = UpdateOp {
            filter: vec![Atom::Lt { attr: "lo_a".into(), value: threshold.into() }],
            set_attr: "d_g".into(),
            set_value: new_value.into(),
        };
        let report = engine.update(&op).unwrap();

        // host-side reference rewrite
        let mut reference = rel.clone();
        let g = reference.schema().index_of("d_g").unwrap();
        let a = reference.schema().index_of("lo_a").unwrap();
        let mut updated = 0u64;
        for row in 0..reference.len() {
            if reference.value(row, a) < threshold {
                reference.set_value(row, g, new_value).unwrap();
                updated += 1;
            }
        }
        prop_assert_eq!(report.records_updated, updated);
        // engine catalog and reference agree
        for row in 0..reference.len() {
            prop_assert_eq!(engine.relation().value(row, g), reference.value(row, g));
        }
    }

    #[test]
    fn selectivity_is_exact(rel in arb_relation(), q in arb_query()) {
        let mut engine = PimQueryEngine::new(
            SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb).unwrap();
        engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let out = engine.run(&q).unwrap();
        let expected = stats::selectivity(&q, &rel).unwrap();
        prop_assert!((out.report.selectivity - expected).abs() < 1e-12);
    }
}
