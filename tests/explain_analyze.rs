//! `EXPLAIN ANALYZE` consistency: recorded actuals never exceed the
//! plan on pruned paths — shards executed ≤ shards dispatched, pages
//! scanned ≤ candidate pages, dispatch bytes ≤ the planner's dispatch
//! ledger — for all 13 SSB queries, on both storage models, and the
//! analyzed answer stays oracle-identical (analysis is a recorded run,
//! not a different one).

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::join::StarCluster;
use bbpim::sim::SimConfig;
use bbpim::trace::MetricsRegistry;

const SHARDS: usize = 4;

fn shared_model() -> bbpim::engine::groupby::cost_model::GroupByModel {
    let (_, model) = run_calibration(
        &SimConfig::default(),
        EngineMode::OneXb,
        &CalibrationConfig::tiny_for_tests(),
    )
    .expect("calibration");
    model
}

#[test]
fn actuals_stay_within_the_plan_on_the_prejoined_cluster() {
    let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        SHARDS,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(shared_model());

    let mut reg = MetricsRegistry::new();
    for q in queries::standard_queries() {
        let (plan, exec) = c.explain_analyze(&q).expect("explain analyze");
        let a = plan.actuals.expect("analyze attaches actuals");
        let errors = plan.consistency_errors();
        assert!(errors.is_empty(), "{}: plan/actual inconsistencies: {errors:?}", q.id);
        assert_eq!(
            a.pages_scanned, exec.report.pages_scanned,
            "{}: actuals mirror the execution report",
            q.id
        );
        assert!(plan.detail().contains("actual:"), "{}: detail renders the actuals row", q.id);
        assert_eq!(
            exec.groups,
            stats::run_oracle(&q, &wide).expect("oracle"),
            "{}: analyzed answer stays oracle-identical",
            q.id
        );
        bbpim::cluster::obs::record_explain_analyze(&mut reg, &plan, &[]);
    }
    // The recorded byte counters obey the same inequality the per-plan
    // checks prove piecewise: the dispatch ledger is exact, and the
    // planner's total omits host-gb record fetches, so only the query
    // count is asserted on top of per-plan consistency.
    assert_eq!(
        reg.counter(bbpim::cluster::obs::ACTUAL_BYTES, &[]).is_some(),
        reg.counter(bbpim::cluster::obs::PLANNED_BYTES, &[]).is_some(),
        "analyze records planned and actual byte series together"
    );
}

#[test]
fn actuals_stay_within_the_plan_on_the_star_cluster() {
    let db = SsbDb::generate(&SsbParams::tiny_for_tests());
    let wide = db.prejoin();
    let mut c = StarCluster::new(
        SimConfig::small_for_tests(),
        &db,
        EngineMode::OneXb,
        SHARDS,
        Partitioner::RoundRobin,
    )
    .expect("star cluster construction");

    for q in queries::standard_queries() {
        let (plan, exec) = c.explain_analyze(&q).expect("explain analyze");
        assert!(plan.actuals.is_some(), "{}: analyze attaches actuals", q.id);
        let errors = plan.consistency_errors();
        assert!(errors.is_empty(), "{}: plan/actual inconsistencies: {errors:?}", q.id);
        assert_eq!(
            exec.groups,
            stats::run_oracle(&q, &wide).expect("oracle"),
            "{}: analyzed answer stays oracle-identical",
            q.id
        );
    }
}

#[test]
fn plain_explain_carries_no_actuals_and_flags_fabricated_excess() {
    let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide,
        EngineMode::OneXb,
        SHARDS,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(shared_model());

    let q = queries::standard_query("Q1.1").expect("Q1.1");
    let plan = c.explain(&q).expect("explain");
    assert!(plan.actuals.is_none(), "plain EXPLAIN must not execute");
    assert!(plan.consistency_errors().is_empty(), "no actuals, nothing to contradict");

    // A fabricated over-plan actual must be flagged.
    let (mut analyzed, _) = c.explain_analyze(&q).expect("explain analyze");
    let over = analyzed.pages_candidate() + 1;
    analyzed.actuals.as_mut().expect("actuals").pages_scanned = over;
    assert!(
        !analyzed.consistency_errors().is_empty(),
        "scanning more pages than the plan admits must be reported"
    );
}
