//! Transfer-policy equivalence: the host-channel byte diet (compressed
//! mask transfers, batched dispatch descriptors, module-side result
//! reduction) moves accounting, never answers.
//!
//! Every one of the 2³ lever combinations, over shards {1, 4} and both
//! physical layouts (one-xb / two-xb), must return answers bit-identical
//! to the MonetDB stand-in oracle — and to every other combination. On
//! top of equivalence, the default (all-on) policy must put strictly
//! fewer bytes on the shared channel than the legacy (all-off) policy
//! for the transfer-heavy two-crossbar layout.

use bbpim::cluster::{ClusterEngine, ClusterReport, Partitioner};
use bbpim::db::plan::Query;
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::join::StarCluster;
use bbpim::monet::MonetEngine;
use bbpim::sim::{SimConfig, XferPolicy};

const SHARD_COUNTS: [usize; 2] = [1, 4];

/// The 2³ lever combinations, legacy-first.
fn all_policies() -> Vec<XferPolicy> {
    let mut out = Vec::new();
    for compress_masks in [false, true] {
        for batch_dispatch in [false, true] {
            for module_reduce in [false, true] {
                out.push(XferPolicy { compress_masks, batch_dispatch, module_reduce });
            }
        }
    }
    out
}

fn policy_label(p: XferPolicy) -> String {
    format!(
        "compress={} batch={} reduce={}",
        p.compress_masks as u8, p.batch_dispatch as u8, p.module_reduce as u8
    )
}

fn ssb() -> SsbDb {
    SsbDb::generate(&SsbParams::tiny_for_tests())
}

/// A query subset exercising every lever: Q1.1 (selective, expression
/// aggregate — result reads), Q3.1 (GROUP BY — pim-gb subgroup
/// transfers), and the disjunctive holiday query (multiple dimension
/// disjuncts — one mask transfer each under two-xb).
fn query_set() -> Vec<Query> {
    let keep = ["Q1.1", "Q3.1"];
    let mut qs: Vec<Query> =
        queries::standard_queries().into_iter().filter(|q| keep.contains(&q.id.as_str())).collect();
    qs.push(queries::combined_query("Q1.hol").expect("combined query set has Q1.hol"));
    assert_eq!(qs.len(), 3);
    qs
}

fn host_bytes(report: &ClusterReport) -> u64 {
    report.per_shard.iter().map(|r| r.phases.host_bytes()).sum()
}

#[test]
fn all_lever_combinations_match_monet_oracle_prejoined() {
    let wide: Relation = ssb().prejoin();
    let qs = query_set();
    let monet = MonetEngine::prejoined(&wide, 4);
    let oracles: Vec<_> = qs.iter().map(|q| monet.run(q).expect("monet oracle").groups).collect();
    let cfg = SimConfig::default();

    for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
        let (_, model) =
            run_calibration(&cfg, mode, &CalibrationConfig::tiny_for_tests()).expect("calibration");
        for shards in SHARD_COUNTS {
            // per-query host bytes under the legacy (all-off) policy,
            // for the byte-diet comparison below
            let mut legacy_bytes: Vec<u64> = Vec::new();
            for policy in all_policies() {
                let mut c = ClusterEngine::new(
                    cfg.clone(),
                    wide.clone(),
                    mode,
                    shards,
                    Partitioner::range_by_attr("d_year"),
                )
                .expect("cluster construction");
                c.set_model(model.clone());
                c.set_xfer_policy(policy);
                assert_eq!(c.xfer_policy(), policy);
                for (qi, (q, oracle)) in qs.iter().zip(&oracles).enumerate() {
                    let tag =
                        format!("{} at {shards} shards, {mode:?}, {}", q.id, policy_label(policy));
                    let out = c.run(q).unwrap_or_else(|e| panic!("{tag}: {e}"));
                    assert_eq!(&out.groups, oracle, "answer drift on {tag}");
                    let bytes = host_bytes(&out.report);
                    if policy == XferPolicy::legacy() {
                        legacy_bytes.push(bytes);
                    } else if policy == XferPolicy::default() && mode == EngineMode::TwoXb {
                        // the diet must bite where the transfers are:
                        // two-xb queries ship per-disjunct masks
                        assert!(
                            bytes < legacy_bytes[qi],
                            "byte diet did not bite on {tag}: {bytes} >= {}",
                            legacy_bytes[qi]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn all_lever_combinations_match_monet_oracle_star() {
    let db = ssb();
    let qs = query_set();
    let monet = MonetEngine::star(&db, 2);
    let oracles: Vec<_> = qs.iter().map(|q| monet.run(q).expect("monet oracle").groups).collect();

    for policy in all_policies() {
        let mut c = StarCluster::new(
            SimConfig::small_for_tests(),
            &db,
            EngineMode::TwoXb,
            4,
            Partitioner::RoundRobin,
        )
        .expect("star cluster construction");
        c.set_xfer_policy(policy);
        assert_eq!(c.xfer_policy(), policy);
        for (q, oracle) in qs.iter().zip(&oracles) {
            let out =
                c.run(q).unwrap_or_else(|e| panic!("{} under {}: {e}", q.id, policy_label(policy)));
            assert_eq!(&out.groups, oracle, "{} under {}", q.id, policy_label(policy));
        }
    }
}
