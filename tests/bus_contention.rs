//! Host-channel contention model: every host↔module transfer rides the
//! shared bus, and only *time* changes — never answers.
//!
//! Two halves:
//!
//! 1. **Accounting independence** — streamed and batch answers are
//!    bit-identical to the monet oracle over shards {1, 4, 8} × both
//!    physical layouts (one-xb / two-xb) with the contention model on
//!    and off. The contended wall clock is never shorter than the
//!    optimistic one, and energy is identical (contention moves time,
//!    not joules).
//! 2. **The contention actually bites** — on a bandwidth-starved host
//!    channel at 2× overload, the two-crossbar layout (one dimension
//!    mask transfer per disjunct, the bandwidth-heavy case) shows a
//!    contended p95 latency ≥ 1.2× the optimistic model's, with the
//!    host bus ≥ 90 % utilised — the journal extension's point that the
//!    off-chip interface, not the crossbars, bounds throughput.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, Query, SelectItem};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::modes::EngineMode;
use bbpim::monet::MonetEngine;
use bbpim::sched::{run_stream, SchedConfig, Workload};
use bbpim::sim::SimConfig;

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn ssb_wide() -> Relation {
    SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin()
}

/// A representative query subset: Q1.x (no GROUP BY, expression
/// aggregates), a GROUP BY from each flight, and a disjunctive
/// 3-aggregate reporting query — enough to exercise mask transfers,
/// result reads, host-gb fetches and pim-gb subgroup transfers in both
/// layouts without running all 13 queries per configuration.
fn query_set() -> Vec<Query> {
    let keep = ["Q1.1", "Q1.2", "Q2.1", "Q3.1", "Q4.1"];
    let mut qs: Vec<Query> =
        queries::standard_queries().into_iter().filter(|q| keep.contains(&q.id.as_str())).collect();
    qs.push(queries::combined_query("Q1.hol").expect("combined query set has Q1.hol"));
    assert_eq!(qs.len(), 6);
    qs
}

fn cluster(cfg: &SimConfig, wide: &Relation, mode: EngineMode, shards: usize) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        cfg.clone(),
        wide.clone(),
        mode,
        shards,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    let (_, model) =
        run_calibration(cfg, mode, &CalibrationConfig::tiny_for_tests()).expect("calibration");
    c.set_model(model);
    c
}

#[test]
fn streamed_and_batch_match_monet_oracle_under_both_contention_models() {
    let wide = ssb_wide();
    let qs = query_set();
    let monet = MonetEngine::prejoined(&wide, 4);
    let oracles: Vec<_> = qs.iter().map(|q| monet.run(q).expect("monet oracle").groups).collect();
    let workload = Workload::burst(qs.clone());
    let sim_cfg = SimConfig::default();

    for shards in SHARD_COUNTS {
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            // (contention, total wall clock, total energy)
            let mut per_model: Vec<(bool, f64, f64)> = Vec::new();
            for contention in [true, false] {
                let mut c = cluster(&sim_cfg, &wide, mode, shards);
                c.set_contention(contention);
                let batch = c.run_batch(&qs).expect("batch");
                let streamed = run_stream(&mut c, &workload, &SchedConfig::default())
                    .unwrap_or_else(|e| panic!("{shards} shards {mode:?}: {e}"));
                assert_eq!(streamed.executions.len(), qs.len());
                for ((exec, batched), oracle) in
                    streamed.executions.iter().zip(&batch.executions).zip(&oracles)
                {
                    let id = &exec.report.query_id;
                    let tag = format!("{id} at {shards} shards, {mode:?}, contention={contention}");
                    assert_eq!(&exec.groups, oracle, "streamed/monet mismatch on {tag}");
                    assert_eq!(exec.groups, batched.groups, "streamed/batch mismatch on {tag}");
                    assert_eq!(exec.report, batched.report, "report mismatch on {tag}");
                }
                per_model.push((
                    contention,
                    batch.executions.iter().map(|e| e.report.time_ns).sum(),
                    batch.executions.iter().map(|e| e.report.energy_pj).sum(),
                ));
            }
            let (_, contended, e_on) =
                *per_model.iter().find(|(on, _, _)| *on).expect("ran contended");
            let (_, optimistic, e_off) =
                *per_model.iter().find(|(on, _, _)| !*on).expect("ran optimistic");
            assert!(
                contended >= optimistic - 1e-6,
                "serialising transfers cannot shorten the wall clock \
                 ({shards} shards, {mode:?}: {contended} < {optimistic})"
            );
            // contention never changes energy, only time
            assert!((e_on - e_off).abs() < 1e-6, "{shards} shards, {mode:?}");
        }
    }
}

/// Disjunctive Q1-style queries on the range-split attribute: in the
/// two-crossbar layout every disjunct's `d_year` atom is
/// dimension-side, so each pays a mask read + write through the host —
/// the bandwidth-heavy shape the contention model exists for.
fn disjunctive_queries(schema: &bbpim::db::schema::Schema) -> Vec<Query> {
    let probe = |id: &str, y1: u64, y2: u64| {
        Query::select([SelectItem::sum("revenue", AggExpr::mul("lo_extendedprice", "lo_discount"))])
            .id(id)
            .filter(
                col("d_year")
                    .eq(y1)
                    .and(col("lo_discount").between(1u64, 5u64))
                    .or(col("d_year").eq(y2).and(col("lo_quantity").lt(30u64))),
            )
            .build(schema)
            .expect("valid query")
    };
    vec![
        probe("or-a", 1992, 1995),
        probe("or-b", 1993, 1996),
        probe("or-c", 1994, 1997),
        probe("or-d", 1995, 1998),
    ]
}

#[test]
fn two_xb_overload_contended_p95_exceeds_optimistic_with_saturated_bus() {
    let wide = ssb_wide();
    // Bandwidth-starved host channel: the same DDR interface shared by
    // every module, throttled so transfers — not crossbar ops —
    // dominate, which is where the paper's journal extension says the
    // bottleneck lives at scale.
    let mut sim_cfg = SimConfig::default();
    sim_cfg.host.dram_bandwidth_gib_s = 0.05;
    let qs = disjunctive_queries(wide.schema());

    let mut c = ClusterEngine::new(
        sim_cfg.clone(),
        wide.clone(),
        EngineMode::TwoXb,
        4,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    // Legacy transfer policy: this test saturates the bus to verify the
    // contention *model*; the byte-diet levers (compressed masks,
    // batched dispatch, module reduction) exist precisely to relieve
    // this pressure and are exercised by xfer_policy_equivalence.rs.
    c.set_xfer_policy(bbpim::sim::XferPolicy::legacy());

    // 2× overload relative to the contended batch capacity estimate.
    let probe = c.run_batch(&qs).expect("capacity probe");
    let mean_service_ns = probe.serial_time_ns / qs.len() as f64;
    let workload = Workload::poisson(qs.clone(), 26, mean_service_ns / 2.0, 0xB1_7B17);
    let sched = SchedConfig { max_in_flight: 8, ..SchedConfig::default() };

    c.set_contention(true);
    let contended = run_stream(&mut c, &workload, &sched).expect("contended stream");
    c.set_contention(false);
    let optimistic = run_stream(&mut c, &workload, &sched).expect("optimistic stream");

    // identical answers: the model moves time, never bits
    for (a, b) in contended.executions.iter().zip(&optimistic.executions) {
        assert_eq!(a.groups, b.groups, "{}", a.report.query_id);
    }

    let p95_contended = contended.latency_summary().p95_ns;
    let p95_optimistic = optimistic.latency_summary().p95_ns;
    assert!(
        p95_contended >= 1.2 * p95_optimistic,
        "contended p95 ({:.3} ms) must exceed the optimistic model's ({:.3} ms) by ≥1.2×",
        p95_contended / 1e6,
        p95_optimistic / 1e6,
    );
    assert!(
        contended.host_utilisation() >= 0.9,
        "the starved host channel must be the bottleneck (utilisation {:.2})",
        contended.host_utilisation(),
    );
    assert!(contended.host_utilisation() <= 1.0, "utilisation saturates at 1");
    // the contended run pushes far more work through the bus than
    // dispatch + merge alone
    assert!(contended.host_busy_ns > 2.0 * optimistic.host_busy_ns);
}
