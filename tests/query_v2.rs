//! The v2 query surface, end to end:
//!
//! * builder-built queries are bit-identical to legacy-struct queries
//!   (through the deprecated [`LegacyQuery`] shim);
//! * a k-aggregate query equals k single-aggregate runs result-wise
//!   while charging at most one filter pass;
//! * DNF zone-map bounds never prune a page holding a matching record
//!   (soundness under `OR`);
//! * the headline win: a 3-aggregate SSB query over one filter
//!   simulates ≥ 1.8× lower energy than running the three aggregates as
//!   separate legacy queries — bit-identical to the separate runs and
//!   to the monet oracle, across shards {1, 4, 8} and both one-/two-
//!   crossbar layouts, at SSB SF 0.005.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Pred, Query, SelectItem};
use bbpim::db::schema::{Attribute, Schema};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::modes::EngineMode;
use bbpim::monet::MonetEngine;
use bbpim::sim::timeline::PhaseKind;
use bbpim::sim::SimConfig;

fn synthetic_relation(rows: u64) -> Relation {
    let schema = Schema::new(
        "t",
        vec![
            Attribute::numeric("lo_price", 8),
            Attribute::numeric("lo_disc", 4),
            Attribute::numeric("d_year", 3),
            Attribute::numeric("d_brand", 5),
        ],
    );
    let mut rel = Relation::new(schema);
    for i in 0..rows {
        rel.push_row(&[(3 * i + 1) % 251, i % 11, i % 7, (i * i) % 30]).unwrap();
    }
    rel
}

// ---------------------------------------------------------------------
// (a) builder == legacy shim, bit-identically
// ---------------------------------------------------------------------

#[test]
#[allow(deprecated)]
fn builder_queries_equal_legacy_struct_queries() {
    use bbpim::db::plan::LegacyQuery;
    let rel = synthetic_relation(1200);
    let cases: Vec<(LegacyQuery, Query)> = vec![
        (
            LegacyQuery {
                id: "q1".into(),
                filter: vec![
                    Atom::Eq { attr: "d_year".into(), value: 3u64.into() },
                    Atom::Between { attr: "lo_disc".into(), lo: 1u64.into(), hi: 3u64.into() },
                ],
                group_by: vec![],
                agg_func: AggFunc::Sum,
                agg_expr: AggExpr::mul("lo_price", "lo_disc"),
            },
            Query::select([SelectItem::sum("value", AggExpr::mul("lo_price", "lo_disc"))])
                .id("q1")
                .filter(col("d_year").eq(3u64).and(col("lo_disc").between(1u64, 3u64)))
                .build(rel.schema())
                .unwrap(),
        ),
        (
            LegacyQuery {
                id: "q2".into(),
                filter: vec![Atom::Gt { attr: "lo_price".into(), value: 60u64.into() }],
                group_by: vec!["d_year".into()],
                agg_func: AggFunc::Max,
                agg_expr: AggExpr::attr("lo_price"),
            },
            Query::select([SelectItem::max("value", AggExpr::attr("lo_price"))])
                .id("q2")
                .filter(col("lo_price").gt(60u64))
                .group_by(["d_year"])
                .build(rel.schema())
                .unwrap(),
        ),
    ];
    let mut engine =
        PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb).unwrap();
    engine
        .calibrate(&bbpim::engine::groupby::calibration::CalibrationConfig::tiny_for_tests())
        .unwrap();
    for (legacy, built) in cases {
        let converted: Query = legacy.into();
        // the logical plans are identical (modulo And-wrapping of a
        // single-atom filter, which normalisation removes)…
        assert_eq!(converted.id, built.id);
        assert_eq!(converted.filter.dnf(), built.filter.dnf(), "{}", built.id);
        assert_eq!(converted.group_by, built.group_by, "{}", built.id);
        assert_eq!(converted.select, built.select, "{}", built.id);
        // …and so are executions and phase logs (same program sequence).
        let a = engine.run(&converted).unwrap();
        let b = engine.run(&built).unwrap();
        assert_eq!(a.groups, b.groups, "{}", built.id);
        assert_eq!(a.groups, stats::run_oracle(&built, &rel).unwrap(), "{}", built.id);
        assert_eq!(a.report.phases, b.report.phases, "{}", built.id);
    }
}

// ---------------------------------------------------------------------
// (b) DNF zone-map soundness: never prune a page the oracle matches
// ---------------------------------------------------------------------

#[test]
fn dnf_bounds_never_prune_a_matching_page() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    // Sorted-by-value relation so page zones are tight and pruning is
    // aggressive; random OR-of-windows filters try to catch an unsound
    // prune.
    let schema =
        Schema::new("t", vec![Attribute::numeric("lo_v", 11), Attribute::numeric("d_g", 4)]);
    let mut rel = Relation::new(schema);
    let rows = 1500u64;
    for i in 0..rows {
        rel.push_row(&[i, i % 13]).unwrap();
    }
    let cfg = SimConfig::small_for_tests();
    let records_per_page = cfg.records_per_page();
    let engine = PimQueryEngine::new(cfg, rel.clone(), EngineMode::OneXb).unwrap();

    let mut rng = StdRng::seed_from_u64(0xD9F);
    for case in 0..40 {
        let window = |rng: &mut StdRng| {
            let lo = rng.gen_range(0u64..rows);
            let hi = (lo + rng.gen_range(0u64..200)).min(rows + 100);
            col("lo_v").between(lo, hi)
        };
        let mut pred = window(&mut rng);
        for _ in 0..rng.gen_range(1usize..4) {
            pred = pred.or(window(&mut rng));
        }
        if rng.gen::<bool>() {
            pred = pred.and(col("d_g").lt(rng.gen_range(1u64..14)));
        }
        let q = Query::select([SelectItem::count("n")])
            .id(format!("sound{case}"))
            .filter(pred)
            .build(rel.schema())
            .unwrap();
        let plan = engine.plan(&q).unwrap();
        let matching = stats::filter_bitvec(&q, &rel).unwrap();
        for (record, hit) in matching.iter().enumerate() {
            if *hit {
                let page = record / records_per_page;
                assert!(
                    plan.indices().contains(&page),
                    "case {case}: page {page} holds matching record {record} but was pruned \
                     (filter {})",
                    q.filter,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// (c) the acceptance bar: 3 aggregates, one filter pass, ≥ 1.8× energy
// ---------------------------------------------------------------------

/// The revenue reporting triple over the Q1.1 filter: total, order
/// count, and average revenue — three named aggregates whose physical
/// plan deduplicates to one sum + one count, all fed by a single
/// planned filter mask.
fn revenue_stats_query(filter: &Pred) -> Query {
    Query {
        id: "Q1.1-revenue-stats".into(),
        filter: filter.clone(),
        group_by: vec![],
        select: vec![
            SelectItem::sum("revenue", AggExpr::attr("lo_revenue")),
            SelectItem::count("orders"),
            SelectItem::avg("avg_revenue", AggExpr::attr("lo_revenue")),
        ],
    }
}

/// The three legacy single-aggregate queries equivalent to
/// [`revenue_stats_query`]'s SELECT list, sharing its filter.
fn separate_legacy_queries(filter: &Pred) -> Vec<Query> {
    let mk = |id: &str, func: AggFunc, expr: Option<AggExpr>| Query {
        id: id.into(),
        filter: filter.clone(),
        group_by: vec![],
        select: vec![SelectItem { name: "value".into(), func, expr }],
    };
    vec![
        mk("sep-revenue", AggFunc::Sum, Some(AggExpr::attr("lo_revenue"))),
        mk("sep-orders", AggFunc::Count, None),
        mk("sep-avg-revenue", AggFunc::Avg, Some(AggExpr::attr("lo_revenue"))),
    ]
}

#[test]
fn three_aggregates_one_filter_beats_three_legacy_queries() {
    // SSB at SF 0.005 (the acceptance floor), shards {1, 4, 8}, both
    // crossbar layouts.
    let wide = SsbDb::generate(&SsbParams::uniform(0.005)).prejoin();
    let combined = revenue_stats_query(&queries::standard_query("Q1.1").expect("catalog").filter);
    let singles = separate_legacy_queries(&combined.filter);

    // Ground truth: the row-at-a-time oracle and the monet baseline.
    let oracle = stats::run_oracle(&combined, &wide).unwrap();
    let monet = MonetEngine::prejoined(&wide, 4).run(&combined).unwrap();
    assert_eq!(monet.groups, oracle, "monet oracle must support the combined surface");
    let key: Vec<u64> = Vec::new();
    let oracle_row = oracle.get(&key).expect("Q1.1 selects records at SF 0.005").clone();

    for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
        for shards in [1usize, 4, 8] {
            let mut cluster = ClusterEngine::new(
                SimConfig::default(),
                wide.clone(),
                mode,
                shards,
                Partitioner::RoundRobin,
            )
            .unwrap();

            let combined_out = cluster.run(&combined).unwrap();
            assert_eq!(combined_out.groups, oracle, "{mode:?}/{shards} shards: combined vs oracle");

            let mut separate_energy = 0.0;
            let mut separate_filter_phases = 0usize;
            for (i, q) in singles.iter().enumerate() {
                let single = cluster.run(q).unwrap();
                assert_eq!(
                    single.groups[&key][0], oracle_row[i],
                    "{mode:?}/{shards} shards: column {i} of the combined run must equal \
                     the separate legacy run ({})",
                    q.id
                );
                separate_energy += single.report.energy_pj;
                separate_filter_phases += pim_logic_phases(&single);
            }

            // ≥ 1.8× lower energy for the shared-filter run.
            let ratio = separate_energy / combined_out.report.energy_pj;
            assert!(
                ratio >= 1.8,
                "{mode:?}/{shards} shards: separate/combined energy ratio {ratio:.2} < 1.8"
            );

            // ≤ one filter pass: the combined run's bulk-bitwise program
            // count stays strictly below the three runs' total (each of
            // which pays its own filter programs).
            let combined_phases = pim_logic_phases(&combined_out);
            assert!(
                combined_phases < separate_filter_phases,
                "{mode:?}/{shards} shards: {combined_phases} PimLogic phases vs \
                 {separate_filter_phases} across the separate runs"
            );
        }
    }
}

/// Total bulk-bitwise (filter + expression) program phases across a
/// cluster execution's shard reports.
fn pim_logic_phases(exec: &bbpim::cluster::ClusterExecution) -> usize {
    exec.report
        .per_shard
        .iter()
        .map(|r| r.phases.phases().iter().filter(|p| p.kind == PhaseKind::PimLogic).count())
        .sum()
}

// ---------------------------------------------------------------------
// supporting equivalences: multi-aggregate GROUP BY across shards
// ---------------------------------------------------------------------

#[test]
fn multi_aggregate_group_by_is_shard_invariant() {
    // sum + count + avg per group must merge per named column and stay
    // bit-identical across shard counts (AVG derives only after the
    // merge — the test would catch per-shard division).
    let rel = synthetic_relation(1400);
    let q = Query::select([
        SelectItem::sum("total", AggExpr::attr("lo_price")),
        SelectItem::count("n"),
        SelectItem::avg("mean", AggExpr::attr("lo_price")),
    ])
    .id("gb-stats")
    .filter(col("lo_price").gt(40u64))
    .group_by(["d_year"])
    .build(rel.schema())
    .unwrap();
    let oracle = stats::run_oracle(&q, &rel).unwrap();
    // AVG over shards differs from per-shard AVGs: prove the merge is
    // doing the right thing by checking shard counts that split groups
    // across shards.
    for shards in [1usize, 3, 5] {
        let mut cluster = ClusterEngine::new(
            SimConfig::small_for_tests(),
            rel.clone(),
            EngineMode::OneXb,
            shards,
            Partitioner::RoundRobin,
        )
        .unwrap();
        cluster
            .calibrate(&bbpim::engine::groupby::calibration::CalibrationConfig::tiny_for_tests())
            .unwrap();
        let out = cluster.run(&q).unwrap();
        assert_eq!(out.groups, oracle, "{shards} shards");
    }
}

#[test]
fn disjunctive_filter_is_shard_invariant_and_prunes() {
    // OR of two year windows on a range-partitioned cluster: the middle
    // shards must be pruned, the answer bit-identical to the oracle.
    let rel = synthetic_relation(1400); // d_year uniform over 0..7
    let q = Query::select([
        SelectItem::sum("total", AggExpr::attr("lo_price")),
        SelectItem::count("n"),
    ])
    .id("or-years")
    .filter(col("d_year").eq(0u64).or(col("d_year").eq(6u64)))
    .build(rel.schema())
    .unwrap();
    let oracle = stats::run_oracle(&q, &rel).unwrap();
    let mut cluster = ClusterEngine::new(
        SimConfig::small_for_tests(),
        rel,
        EngineMode::OneXb,
        7,
        Partitioner::range_by_attr("d_year"),
    )
    .unwrap();
    let out = cluster.run(&q).unwrap();
    assert_eq!(out.groups, oracle);
    assert_eq!(
        out.report.shards_pruned, 5,
        "the five shards between the OR branches must be pruned pre-scatter"
    );
    // the explain dump carries the pretty filter and the interval union
    let explain = cluster.explain(&q).unwrap();
    assert_eq!(explain.filter, "(d_year = 0 OR d_year = 6)");
    let (attr, intervals) = explain.filter_bounds.first().expect("d_year bounds present");
    assert_eq!(attr, "d_year");
    assert_eq!(intervals, &vec![(0, 0), (6, 6)]);
    assert!(explain.detail().contains("bounds: d_year ∈ {0} ∪ {6}"));
}
