//! HTAP ingest equivalence: an interleaved query/mutation stream must
//! answer every query bit-identically to a prefix-replay oracle — a
//! fresh engine that applies exactly the first
//! [`QueryCompletion::epoch`] arrived mutations and then runs the
//! query — on both storage models (pre-joined wide cluster and
//! normalized star cluster), across shard counts and contention
//! settings. On top of snapshot equivalence: the interleaving must be
//! a pure function of the seed, and a full ingest buffer must stall
//! arrivals (backpressure) without deadlocking the stream.

use bbpim::cluster::{ClusterEngine, ClusterExecution, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::Query;
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::{run_calibration, CalibrationConfig};
use bbpim::engine::groupby::cost_model::GroupByModel;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::join::StarCluster;
use bbpim::sched::{
    run_stream, MutationArrival, QueryCompletion, SchedConfig, StreamOutcome, Workload,
};
use bbpim::sim::SimConfig;

/// The ingest matrix runs the interesting ends of the shard range; the
/// pure-query matrix in `streaming_equivalence.rs` covers 8.
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Mean interarrival for the mixed stream: half the pure-query suite's
/// 200µs — twice the load, as the acceptance bar demands — so queries
/// genuinely queue behind mutation write phases.
const MEAN_INTERARRIVAL_NS: f64 = 100_000.0;

fn ssb() -> SsbDb {
    SsbDb::generate(&SsbParams::tiny_for_tests())
}

/// One calibration sweep shared by every wide cluster in this file.
fn shared_model() -> GroupByModel {
    let (_, model) = run_calibration(
        &SimConfig::default(),
        EngineMode::OneXb,
        &CalibrationConfig::tiny_for_tests(),
    )
    .expect("calibration");
    model
}

fn wide_cluster(wide: &Relation, shards: usize, model: &GroupByModel) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        shards,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    c.set_model(model.clone());
    c
}

fn star_cluster(db: &SsbDb, shards: usize) -> StarCluster {
    StarCluster::new(
        SimConfig::small_for_tests(),
        db,
        EngineMode::OneXb,
        shards,
        Partitioner::RoundRobin,
    )
    .expect("star cluster construction")
}

/// Probes that the mutation sets below visibly perturb: Q1.1 filters
/// on `d_year`/`lo_discount`/`lo_quantity`, Q2.1 groups by `d_year`,
/// Q3.1 aggregates `lo_revenue` by year.
fn probe_queries() -> Vec<Query> {
    ["Q1.1", "Q2.1", "Q3.1"]
        .iter()
        .map(|id| queries::standard_query(id).expect("standard query"))
        .collect()
}

/// The wide model's mutation set: a point UPDATE, a DNF (OR-filtered)
/// UPDATE, and an INSERT replaying an existing row (already encoded,
/// so it validates against the wide schema).
fn wide_mutations(wide: &Relation) -> Vec<Mutation> {
    vec![
        Mutation::update()
            .filter(col("d_year").eq(1993u64))
            .set("lo_discount", 2u64)
            .build(wide.schema())
            .expect("point update"),
        Mutation::update()
            .filter(col("d_year").eq(1994u64).or(col("d_year").eq(1995u64)))
            .set("lo_quantity", 10u64)
            .build(wide.schema())
            .expect("DNF update"),
        Mutation::insert().row(wide.row(0)).build(wide.schema()).expect("insert"),
    ]
}

/// The star model's mutation set: a fact UPDATE, a dimension UPDATE
/// (one small module rewrite that invalidates cached semijoin plans),
/// and a two-row fact INSERT.
fn star_mutations(db: &SsbDb) -> Vec<Mutation> {
    let lo = &db.lineorder;
    vec![
        Mutation::update()
            .filter(col("lo_discount").eq(3u64))
            .set("lo_discount", 4u64)
            .build(lo.schema())
            .expect("fact update"),
        Mutation::update()
            .filter(col("d_year").eq(1994u64))
            .set("d_year", 1993u64)
            .build_unchecked(),
        Mutation::insert().row(lo.row(0)).row(lo.row(1)).build(lo.schema()).expect("fact insert"),
    ]
}

/// A storage model the prefix-replay oracle can drive: apply one
/// mutation, answer one query. Implemented by both engines under test.
trait Replay {
    fn apply(&mut self, m: &Mutation);
    fn answer(&mut self, q: &Query) -> ClusterExecution;
}

impl Replay for ClusterEngine {
    fn apply(&mut self, m: &Mutation) {
        self.mutate(m).expect("replay mutate");
    }
    fn answer(&mut self, q: &Query) -> ClusterExecution {
        self.run(q).expect("replay query")
    }
}

impl Replay for StarCluster {
    fn apply(&mut self, m: &Mutation) {
        self.mutate(m).expect("replay mutate");
    }
    fn answer(&mut self, q: &Query) -> ClusterExecution {
        self.run(q).expect("replay query")
    }
}

/// Every streamed answer must equal a fresh engine that replayed
/// exactly the first `epoch` arrived mutations. Completions are walked
/// in epoch order so one replay engine serves the whole stream.
fn assert_prefix_replay(
    label: &str,
    out: &StreamOutcome,
    workload: &Workload,
    fresh: &mut dyn Replay,
) {
    let muts = workload.arrived_mutations();
    let mut by_epoch: Vec<&QueryCompletion> = out.completions.iter().collect();
    by_epoch.sort_by_key(|c| c.epoch);
    let mut applied = 0usize;
    for c in by_epoch {
        assert!(c.epoch <= muts.len(), "{label}: epoch beyond the arrived-mutation count");
        while applied < c.epoch {
            fresh.apply(&muts[applied]);
            applied += 1;
        }
        let q = &workload.queries()[workload.arrivals()[c.arrival].query];
        let oracle = fresh.answer(q);
        assert_eq!(
            out.executions[c.arrival].groups, oracle.groups,
            "{label}: {} (arrival {}, epoch {}) diverged from its prefix-replay oracle",
            c.query_id, c.arrival, c.epoch
        );
    }
}

/// The mixed stream both models run: one seeded interleaving with at
/// least 20% mutation arrivals.
fn mixed_workload(qs: Vec<Query>, muts: Vec<Mutation>) -> Workload {
    let w = Workload::poisson_htap(qs, muts, 40, 0.25, MEAN_INTERARRIVAL_NS, 0xA11_CE0);
    let total = w.arrivals().len() + w.mutation_arrivals().len();
    assert!(
        w.mutation_arrivals().len() * 5 >= total,
        "seed must draw >= 20% mutations ({} of {total})",
        w.mutation_arrivals().len()
    );
    w
}

#[test]
fn mixed_stream_matches_prefix_replay_on_the_wide_model() {
    let db = ssb();
    let wide = db.prejoin();
    let model = shared_model();
    let workload = mixed_workload(probe_queries(), wide_mutations(&wide));
    for shards in SHARD_COUNTS {
        for contention in [false, true] {
            let mut c = wide_cluster(&wide, shards, &model);
            c.set_contention(contention);
            let out = run_stream(&mut c, &workload, &SchedConfig::default())
                .unwrap_or_else(|e| panic!("{shards} shards, contention {contention}: {e}"));
            assert_eq!(out.completions.len(), workload.arrivals().len());
            assert_eq!(out.mutation_completions.len(), workload.mutation_arrivals().len());
            // the stream must have genuinely written, not no-opped
            let written: u64 = out
                .mutation_completions
                .iter()
                .map(|m| m.records_updated + m.records_inserted)
                .sum();
            assert!(written > 0, "mutations must land records");
            assert!(out.shard_cell_writes.iter().sum::<u64>() > 0, "ingest must wear cells");
            let mut fresh = wide_cluster(&wide, shards, &model);
            assert_prefix_replay(
                &format!("wide, {shards} shards, contention {contention}"),
                &out,
                &workload,
                &mut fresh,
            );
        }
    }
}

#[test]
fn mixed_stream_matches_prefix_replay_on_the_star_model() {
    let db = ssb();
    let workload = mixed_workload(probe_queries(), star_mutations(&db));
    for shards in SHARD_COUNTS {
        for contention in [false, true] {
            let mut c = star_cluster(&db, shards);
            c.set_contention(contention);
            let out = run_stream(&mut c, &workload, &SchedConfig::default())
                .unwrap_or_else(|e| panic!("{shards} shards, contention {contention}: {e}"));
            assert_eq!(out.completions.len(), workload.arrivals().len());
            assert_eq!(out.mutation_completions.len(), workload.mutation_arrivals().len());
            // lanes extend past the fact shards: dimension modules get
            // their own ingest lanes, and the dimension UPDATE must
            // wear one of them
            assert_eq!(out.shard_cell_writes.len(), c.ingest_lanes());
            assert!(
                out.shard_cell_writes[shards..].iter().sum::<u64>() > 0,
                "the dimension UPDATE must wear a dimension-module lane"
            );
            let mut fresh = star_cluster(&db, shards);
            assert_prefix_replay(
                &format!("star, {shards} shards, contention {contention}"),
                &out,
                &workload,
                &mut fresh,
            );
        }
    }
}

#[test]
fn the_interleaving_is_a_pure_function_of_the_seed() {
    let db = ssb();
    let wide = db.prejoin();
    let model = shared_model();
    let workload = mixed_workload(probe_queries(), wide_mutations(&wide));
    let run = |w: &Workload| {
        let mut c = wide_cluster(&wide, 4, &model);
        run_stream(&mut c, w, &SchedConfig::default()).expect("stream")
    };
    let a = run(&workload);
    let b = run(&workload);
    assert_eq!(a.timeline, b.timeline, "the event timeline must be deterministic");
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.mutation_completions, b.mutation_completions);
    assert_eq!(a.shard_cell_writes, b.shard_cell_writes);
    assert_eq!(a.ingest_stalls, b.ingest_stalls);
    // and a different seed draws a different interleaving
    let other = Workload::poisson_htap(
        probe_queries(),
        wide_mutations(&wide),
        40,
        0.25,
        MEAN_INTERARRIVAL_NS,
        0xB0_771E,
    );
    assert_ne!(
        workload.mutation_arrivals(),
        other.mutation_arrivals(),
        "two seeds, one trace: the interleaving would not be seeded at all"
    );
}

#[test]
fn a_full_ingest_buffer_stalls_without_deadlock() {
    let db = ssb();
    let wide = db.prejoin();
    let model = shared_model();
    // every mutation routes to the same range-partitioned lane
    // (d_year = 1993), and they arrive nose-to-tail: with a one-deep
    // buffer the later arrivals must stall at the door
    let m = Mutation::update()
        .filter(col("d_year").eq(1993u64))
        .set("lo_discount", 5u64)
        .build(wide.schema())
        .expect("update");
    let q = queries::standard_query("Q1.1").expect("probe");
    let workload = Workload::with_mutations(
        vec![q.clone()],
        vec![bbpim::sched::Arrival { at_ns: 0.0, query: 0 }],
        vec![m.clone()],
        (0..4).map(|k| MutationArrival { at_ns: k as f64, mutation: 0 }).collect(),
    )
    .expect("workload");
    let cfg = SchedConfig { ingest_buffer: 1, ..SchedConfig::default() };
    let mut c = wide_cluster(&wide, 4, &model);
    let out = run_stream(&mut c, &workload, &cfg).expect("backpressure must not deadlock");
    assert!(out.ingest_stalls > 0, "a one-deep buffer under a burst must stall");
    assert!(out.ingest_stall_ns > 0.0);
    assert_eq!(out.mutation_completions.len(), 4, "every stalled mutation still completes");
    assert_eq!(out.completions.len(), 1, "the query still completes");
    // admissions serialised: epochs are a permutation-free 1..=4
    let mut epochs: Vec<usize> = out.mutation_completions.iter().map(|m| m.epoch).collect();
    epochs.sort_unstable();
    assert_eq!(epochs, vec![1, 2, 3, 4]);
    // and the stalled stream still answers from a well-defined prefix
    let mut fresh = wide_cluster(&wide, 4, &model);
    assert_prefix_replay("backpressure", &out, &workload, &mut fresh);
}
