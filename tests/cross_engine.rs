//! Cross-engine equivalence: every SSB query must produce identical
//! results through the PIM engine (all three modes), the column-store
//! baseline (both plans), and the row-at-a-time oracle.

use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::monet::MonetEngine;
use bbpim::sim::SimConfig;

fn tiny_db() -> SsbDb {
    SsbDb::generate(&SsbParams::tiny_for_tests())
}

#[test]
fn all_13_queries_agree_across_all_engines_uniform() {
    let db = tiny_db();
    let wide = db.prejoin();
    let query_set = queries::standard_queries();

    // Baselines.
    let mnt_join = MonetEngine::prejoined(&wide, 2);
    let mnt_reg = MonetEngine::star(&db, 2);

    for mode in EngineMode::all() {
        let mut engine =
            PimQueryEngine::new(SimConfig::default(), wide.clone(), mode).expect("engine");
        engine.calibrate(&CalibrationConfig::tiny_for_tests()).expect("calibration");
        for q in &query_set {
            let oracle = stats::run_oracle(q, &wide).expect("oracle");
            let pim = engine.run(q).unwrap_or_else(|e| panic!("{} {}: {e}", mode.label(), q.id));
            assert_eq!(pim.groups, oracle, "{} vs oracle on {}", mode.label(), q.id);
            let a = mnt_join.run(q).expect("mnt_join");
            let b = mnt_reg.run(q).expect("mnt_reg");
            assert_eq!(a.groups, oracle, "mnt_join vs oracle on {}", q.id);
            assert_eq!(b.groups, oracle, "mnt_reg vs oracle on {}", q.id);
        }
    }
}

#[test]
fn skewed_data_with_adjusted_queries_agrees() {
    let mut params = SsbParams::skewed(0.002);
    params.seed = 99;
    let db = SsbDb::generate(&params);
    let wide = db.prejoin();
    let query_set = queries::adjusted_queries(&wide).expect("adjustment");

    let mut engine =
        PimQueryEngine::new(SimConfig::default(), wide.clone(), EngineMode::OneXb).expect("engine");
    engine.calibrate(&CalibrationConfig::tiny_for_tests()).expect("calibration");
    let mnt_reg = MonetEngine::star(&db, 2);

    for q in &query_set {
        let oracle = stats::run_oracle(q, &wide).expect("oracle");
        assert_eq!(engine.run(q).expect("pim").groups, oracle, "one_xb on {}", q.id);
        assert_eq!(mnt_reg.run(q).expect("mnt").groups, oracle, "mnt_reg on {}", q.id);
    }
}

#[test]
fn two_xb_transfers_are_invisible_in_results() {
    let db = tiny_db();
    let wide = db.prejoin();
    let mut one =
        PimQueryEngine::new(SimConfig::default(), wide.clone(), EngineMode::OneXb).unwrap();
    let mut two =
        PimQueryEngine::new(SimConfig::default(), wide.clone(), EngineMode::TwoXb).unwrap();
    one.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    two.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    for q in queries::standard_queries() {
        let a = one.run(&q).expect("one_xb");
        let b = two.run(&q).expect("two_xb");
        assert_eq!(a.groups, b.groups, "{}", q.id);
    }
}

#[test]
fn reports_carry_consistent_metadata() {
    let db = tiny_db();
    let wide = db.prejoin();
    let records = wide.len();
    let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb).unwrap();
    engine.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    for q in queries::standard_queries() {
        let out = engine.run(&q).unwrap();
        let r = &out.report;
        assert_eq!(r.query_id, q.id);
        assert_eq!(r.records, records);
        assert!(r.time_ns > 0.0, "{}", q.id);
        assert!(r.energy_pj > 0.0, "{}", q.id);
        assert!(r.selectivity >= 0.0 && r.selectivity <= 1.0);
        assert!((r.selectivity - r.selected as f64 / records as f64).abs() < 1e-12);
        if q.group_by.is_empty() {
            assert!(r.pim_agg_subgroups <= 1);
        } else {
            assert!(r.pim_agg_subgroups <= r.total_subgroups);
            assert!(out.groups.len() as u64 <= r.total_subgroups.max(1));
        }
    }
}
