//! Shard-equivalence: the cluster engine must return bit-identical
//! multi-column answers to the single-module engine and the row-at-a-time
//! oracle for every shard count and partitioner, on generated SSB data,
//! including UPDATE-then-query sequences.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::engine::PimQueryEngine;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn partitioners(group_by: &[String]) -> Vec<Partitioner> {
    let mut ps = vec![Partitioner::RoundRobin];
    if group_by.is_empty() {
        // hash needs keys: hash on a dimension attribute instead
        ps.push(Partitioner::HashByKey(vec!["d_year".into()]));
    } else {
        ps.push(Partitioner::hash_by_group_keys(group_by));
    }
    ps
}

fn ssb_wide() -> Relation {
    SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin()
}

fn cluster(wide: &Relation, shards: usize, p: &Partitioner) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        shards,
        p.clone(),
    )
    .expect("cluster construction");
    c.calibrate(&CalibrationConfig::tiny_for_tests()).expect("calibration");
    c
}

#[test]
fn all_13_ssb_queries_agree_with_single_engine_and_oracle() {
    let wide = ssb_wide();
    let mut single =
        PimQueryEngine::new(SimConfig::default(), wide.clone(), EngineMode::OneXb).unwrap();
    single.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    let query_set = queries::standard_queries();
    let singles: Vec<_> =
        query_set.iter().map(|q| single.run(q).expect("single engine").groups).collect();

    for shards in SHARD_COUNTS {
        for (qi, q) in query_set.iter().enumerate() {
            for p in partitioners(&q.group_by) {
                let mut c = cluster(&wide, shards, &p);
                let out = c.run(q).unwrap_or_else(|e| {
                    panic!("{} shards, {} on {}: {e}", shards, p.label(), q.id)
                });
                let oracle = stats::run_oracle(q, &wide).expect("oracle");
                assert_eq!(
                    out.groups,
                    oracle,
                    "{} vs oracle, {} shards {}",
                    q.id,
                    shards,
                    p.label()
                );
                assert_eq!(
                    out.groups,
                    singles[qi],
                    "{} vs single, {} shards {}",
                    q.id,
                    shards,
                    p.label()
                );
            }
        }
    }
}

#[test]
fn randomized_warehouses_agree_across_shard_counts() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC1_0571 + case);
        let rel = random_relation(&mut rng);
        let q = Query::single(
            "prop",
            vec![Atom::Gt { attr: "lo_a".into(), value: rng.gen_range(0u64..200).into() }],
            vec!["d_g".into()],
            [AggFunc::Sum, AggFunc::Min, AggFunc::Max][rng.gen_range(0usize..3)],
            AggExpr::Attr("lo_a".into()),
        );
        let oracle = stats::run_oracle(&q, &rel).unwrap();
        for shards in SHARD_COUNTS {
            for p in partitioners(&q.group_by) {
                let mut c = ClusterEngine::new(
                    SimConfig::small_for_tests(),
                    rel.clone(),
                    EngineMode::OneXb,
                    shards,
                    p.clone(),
                )
                .unwrap();
                c.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
                let out = c.run(&q).unwrap();
                assert_eq!(out.groups, oracle, "case {case}, {shards} shards, {}", p.label());
            }
        }
    }
}

fn random_relation(rng: &mut StdRng) -> Relation {
    use bbpim::db::schema::{Attribute, Schema};
    let rows = rng.gen_range(80usize..=400);
    let schema = Schema::new(
        "w",
        vec![
            Attribute::numeric("lo_a", 8),
            Attribute::numeric("d_g", 4),
            Attribute::numeric("d_year", 3),
        ],
    );
    let mut rel = Relation::with_capacity(schema, rows);
    for _ in 0..rows {
        rel.push_row(&[rng.gen_range(0u64..256), rng.gen_range(0u64..16), rng.gen_range(0u64..8)])
            .unwrap();
    }
    rel
}

#[test]
fn update_then_query_agrees_with_single_engine() {
    let wide = ssb_wide();
    let probe = Query::single(
        "post-update",
        vec![Atom::Gt { attr: "lo_quantity".into(), value: 10u64.into() }],
        vec!["d_year".into()],
        AggFunc::Sum,
        AggExpr::Attr("lo_extendedprice".into()),
    );
    let m = Mutation::update()
        .filter(col("lo_quantity").lt(25u64))
        .set("d_year", 1998u64)
        .build(wide.schema())
        .expect("update");

    // single-module reference
    let mut single =
        PimQueryEngine::new(SimConfig::default(), wide.clone(), EngineMode::OneXb).unwrap();
    single.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
    let single_updated = single.mutate(&m).unwrap().records_updated;
    let reference = single.run(&probe).unwrap().groups;

    for shards in SHARD_COUNTS {
        for p in partitioners(&probe.group_by) {
            let mut c = cluster(&wide, shards, &p);
            let rep = c.mutate(&m).unwrap();
            assert_eq!(rep.records_updated, single_updated, "{shards} shards {}", p.label());
            let out = c.run(&probe).unwrap();
            assert_eq!(out.groups, reference, "{shards} shards {}", p.label());
        }
    }
}

#[test]
fn batch_results_match_individual_runs() {
    let wide = ssb_wide();
    let query_set: Vec<Query> = queries::standard_queries().into_iter().take(5).collect();
    let mut c = cluster(&wide, 4, &Partitioner::RoundRobin);
    let batch = c.run_batch(&query_set).unwrap();
    assert!(batch.wall_time_ns <= batch.serial_time_ns + 1e-9);
    for (q, e) in query_set.iter().zip(&batch.executions) {
        let oracle = stats::run_oracle(q, &wide).unwrap();
        assert_eq!(e.groups, oracle, "{}", q.id);
    }
}
