//! Pruning equivalence: zone-map-driven execution (shard- and
//! page-level pruning) must be bit-identical to the row-at-a-time
//! oracle for every SSB query, partitioner and shard count — including
//! after UPDATEs, which exercise zone-map widening — and must actually
//! prune (and win wall clock) on the range-partitioned placements the
//! planner was built for.

use bbpim::cluster::{ClusterEngine, Partitioner};
use bbpim::db::builder::col;
use bbpim::db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim::db::ssb::{queries, SsbDb, SsbParams};
use bbpim::db::stats;
use bbpim::db::Relation;
use bbpim::engine::groupby::calibration::CalibrationConfig;
use bbpim::engine::modes::EngineMode;
use bbpim::engine::mutation::Mutation;
use bbpim::sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn partitioners(group_by: &[String]) -> Vec<Partitioner> {
    let mut ps = vec![Partitioner::RoundRobin, Partitioner::range_by_attr("d_year")];
    if group_by.is_empty() {
        // hash needs keys: hash on a dimension attribute instead
        ps.push(Partitioner::HashByKey(vec!["d_year".into()]));
    } else {
        ps.push(Partitioner::hash_by_group_keys(group_by));
    }
    ps
}

fn ssb_wide() -> Relation {
    SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin()
}

fn cluster(wide: &Relation, shards: usize, p: &Partitioner) -> ClusterEngine {
    let mut c = ClusterEngine::new(
        SimConfig::default(),
        wide.clone(),
        EngineMode::OneXb,
        shards,
        p.clone(),
    )
    .expect("cluster construction");
    c.calibrate(&CalibrationConfig::tiny_for_tests()).expect("calibration");
    c
}

/// Run `q` pruned and exhaustive on `c`, checking both against `oracle`.
fn check_pruned_vs_exhaustive(
    c: &mut ClusterEngine,
    q: &Query,
    oracle: &stats::MultiGrouped,
    label: &str,
) {
    c.set_pruning(true);
    let pruned = c.run(q).unwrap_or_else(|e| panic!("{label} on {}: {e}", q.id));
    assert_eq!(&pruned.groups, oracle, "pruned vs oracle, {} {label}", q.id);
    // exhaustive dispatch agrees bit-exactly and never scans fewer
    // pages than the pruned plan
    c.set_pruning(false);
    let exhaustive = c.run(q).unwrap();
    assert_eq!(exhaustive.groups, pruned.groups, "{} {label}", q.id);
    assert_eq!(exhaustive.report.shards_pruned, 0);
    assert!(pruned.report.pages_scanned <= exhaustive.report.pages_scanned, "{} {label}", q.id);
    c.set_pruning(true);
}

#[test]
fn all_13_queries_pruned_equals_oracle_all_partitioners() {
    let wide = ssb_wide();
    let query_set = queries::standard_queries();
    let oracles: Vec<_> =
        query_set.iter().map(|q| stats::run_oracle(q, &wide).expect("oracle")).collect();

    for shards in SHARD_COUNTS {
        // query-independent partitioners: one calibrated cluster each
        for p in [Partitioner::RoundRobin, Partitioner::range_by_attr("d_year")] {
            let mut c = cluster(&wide, shards, &p);
            assert!(c.pruning(), "pruning must be the default");
            for (q, oracle) in query_set.iter().zip(&oracles) {
                check_pruned_vs_exhaustive(
                    &mut c,
                    q,
                    oracle,
                    &format!("{} shards {}", shards, p.label()),
                );
            }
        }
        // hash partitioning keys depend on the query's GROUP BY
        for (q, oracle) in query_set.iter().zip(&oracles) {
            let p = if q.group_by.is_empty() {
                Partitioner::HashByKey(vec!["d_year".into()])
            } else {
                Partitioner::hash_by_group_keys(&q.group_by)
            };
            let mut c = cluster(&wide, shards, &p);
            check_pruned_vs_exhaustive(
                &mut c,
                q,
                oracle,
                &format!("{} shards {}", shards, p.label()),
            );
        }
    }
}

#[test]
fn update_then_query_keeps_pruning_sound() {
    let wide = ssb_wide();
    let probe = Query::single(
        "post-update",
        vec![
            Atom::Eq { attr: "d_year".into(), value: 1998u64.into() },
            Atom::Gt { attr: "lo_quantity".into(), value: 10u64.into() },
        ],
        vec!["d_year".into()],
        AggFunc::Sum,
        AggExpr::Attr("lo_extendedprice".into()),
    );
    // Moves records *into* d_year = 1998: range shards that never held
    // 1998 must widen their zones or the probe would miss the records.
    let m = Mutation::update()
        .filter(col("lo_quantity").lt(25u64))
        .set("d_year", 1998u64)
        .build(wide.schema())
        .expect("update");

    // host-side reference: apply the update to a relation copy
    let mut reference = wide.clone();
    let (y, qty) = (
        reference.schema().index_of("d_year").unwrap(),
        reference.schema().index_of("lo_quantity").unwrap(),
    );
    let mut expected_updates = 0u64;
    for row in 0..reference.len() {
        if reference.value(row, qty) < 25 {
            reference.set_value(row, y, 1998).unwrap();
            expected_updates += 1;
        }
    }
    let oracle = stats::run_oracle(&probe, &reference).expect("oracle");

    for shards in SHARD_COUNTS {
        for p in partitioners(&probe.group_by) {
            let mut c = cluster(&wide, shards, &p);
            let rep = c.mutate(&m).unwrap();
            assert_eq!(rep.records_updated, expected_updates, "{shards} shards {}", p.label());
            let out = c.run(&probe).unwrap();
            assert_eq!(out.groups, oracle, "{shards} shards {}", p.label());
        }
    }
}

/// Property test for OR-filtered (DNF) UPDATE widening: random
/// disjunctive filters and SET targets, applied to a range-partitioned
/// cluster, must leave every zone map wide enough that a pruned probe
/// over the SET attribute still matches a host-side rewrite. A widening
/// bug that unions only one disjunct's interval (or widens the wrong
/// attribute) makes the pruned probe silently drop the moved records.
#[test]
fn dnf_update_then_query_keeps_pruning_sound() {
    let wide = ssb_wide();
    let years: Vec<u64> = {
        let y = wide.schema().index_of("d_year").unwrap();
        let mut seen: Vec<u64> = (0..wide.len()).map(|r| wide.value(r, y)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xD9F_000 + case);
        // two-to-three-branch DNF over distinct years, moved to a
        // random (possibly brand-new) target year
        let mut pick = years.clone();
        let branches = rng.gen_range(2usize..=3);
        let mut chosen = Vec::with_capacity(branches);
        for _ in 0..branches {
            chosen.push(pick.remove(rng.gen_range(0..pick.len())));
        }
        let target = years[0] + rng.gen_range(0u64..=7);
        let qty_cap = rng.gen_range(5u64..=40);
        let mut filter = col("d_year").eq(chosen[0]).and(col("lo_quantity").lt(qty_cap));
        for &y in &chosen[1..] {
            filter = filter.or(col("d_year").eq(y).and(col("lo_quantity").lt(qty_cap)));
        }
        let m = Mutation::update()
            .filter(filter)
            .set("d_year", target)
            .build(wide.schema())
            .expect("DNF update");

        // host-side reference rewrite
        let mut reference = wide.clone();
        let (y, qty) = (
            reference.schema().index_of("d_year").unwrap(),
            reference.schema().index_of("lo_quantity").unwrap(),
        );
        let mut expected = 0u64;
        for row in 0..reference.len() {
            let hit =
                chosen.contains(&reference.value(row, y)) && reference.value(row, qty) < qty_cap;
            if hit {
                reference.set_value(row, y, target).unwrap();
                expected += 1;
            }
        }
        let probe = Query::single(
            format!("dnf-probe-{case}"),
            vec![Atom::Eq { attr: "d_year".into(), value: target.into() }],
            vec!["d_year".into()],
            AggFunc::Sum,
            AggExpr::Attr("lo_extendedprice".into()),
        );
        let oracle = stats::run_oracle(&probe, &reference).expect("oracle");

        for shards in [4usize, 8] {
            let mut c = cluster(&wide, shards, &Partitioner::range_by_attr("d_year"));
            let rep = c.mutate(&m).unwrap();
            assert_eq!(
                rep.records_updated,
                expected,
                "case {case}, {shards} shards: {} -> {target} under qty < {qty_cap}",
                chosen.iter().map(ToString::to_string).collect::<Vec<_>>().join("|"),
            );
            let out = c.run(&probe).unwrap();
            assert_eq!(
                out.groups, oracle,
                "case {case}, {shards} shards: pruned post-DNF-update answer diverged",
            );
        }
    }
}

/// The acceptance experiment: SSB Q1.1 (`d_year = 1993`) on an 8-shard
/// `RangeByAttr(d_year)` cluster. The seven SSB years map to distinct
/// buckets, so the zone maps prove at least 6 shards irrelevant before
/// the scatter, and skipping their host-side per-page dispatch must buy
/// at least 2× simulated wall clock over exhaustive dispatch — with the
/// answer bit-identical to the single-relation oracle.
#[test]
fn q11_range_by_year_prunes_6_of_8_shards_and_wins_2x() {
    let params = SsbParams { sf: 0.02, seed: 7, skew_theta: None };
    let wide = SsbDb::generate(&params).prejoin();
    let q = queries::standard_query("Q1.1").unwrap();
    let oracle = stats::run_oracle(&q, &wide).expect("oracle");
    assert!(!oracle.is_empty(), "Q1.1 must select something at this scale");

    // Full-width crossbars (the wide record needs 512 columns) but a
    // small page geometry, so the instance spans realistically many
    // pages without a production-scale record count.
    let mut cfg = SimConfig::small_for_tests();
    cfg.crossbar_cols = 512;
    cfg.page_bytes = cfg.crossbar_bytes() * 4;
    cfg.host.line_bytes = 4 * cfg.read_width_bits / 8;
    cfg.module_capacity_bytes = (cfg.page_bytes as u64) * 4096;
    cfg.validate().expect("consistent test geometry");

    let mut c = ClusterEngine::new(
        cfg,
        wide.clone(),
        EngineMode::OneXb,
        8,
        Partitioner::range_by_attr("d_year"),
    )
    .expect("cluster construction");
    // Batched dispatch descriptors (the byte-diet default) amortise the
    // very per-page dispatch cost this experiment measures pruning
    // against — pin the legacy per-page charge so the 2x bound keeps
    // measuring the pruning economics, not the batching ones.
    c.set_xfer_policy(bbpim::sim::XferPolicy {
        batch_dispatch: false,
        ..bbpim::sim::XferPolicy::default()
    });

    c.set_pruning(false);
    let exhaustive = c.run(&q).unwrap();
    c.set_pruning(true);
    let pruned = c.run(&q).unwrap();

    assert_eq!(pruned.groups, oracle, "pruned answer must equal the oracle");
    assert_eq!(exhaustive.groups, oracle, "exhaustive answer must equal the oracle");

    assert!(
        pruned.report.shards_pruned >= 6,
        "expected >= 6 of 8 shards pruned pre-scatter, got {} (active {})",
        pruned.report.shards_pruned,
        pruned.report.active_shards
    );
    let speedup = exhaustive.report.time_ns / pruned.report.time_ns;
    assert!(
        speedup >= 2.0,
        "zone-map pruning must improve simulated wall clock >= 2x over exhaustive \
         dispatch, got {speedup:.2}x ({:.3} ms vs {:.3} ms)",
        exhaustive.report.time_ns / 1e6,
        pruned.report.time_ns / 1e6
    );
    // pruned pages are unactivated: energy drops too
    assert!(pruned.report.energy_pj < exhaustive.report.energy_pj);
}
