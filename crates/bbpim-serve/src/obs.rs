//! Fold a [`ServeOutcome`] into the metrics registry.
//!
//! One call turns a serve session into named series: per-tenant
//! latency percentiles, goodput, drop/throttle counts and the SLO
//! verdict (all labelled `tenant=<name>`), plus the controller's
//! window trajectory bounds. Bench bins and the CI gate read this
//! surface instead of scraping printed tables.

use bbpim_trace::MetricsRegistry;

use crate::report::tenant_reports;
use crate::serve::ServeOutcome;
use crate::tenant::TenantSpec;

pub use bbpim_trace::phases::{CELL_WRITES, REQUIRED_ENDURANCE};

/// Per-tenant end-to-end latency histogram (ns) plus
/// `_p50/_p95/_p99/_p999/_mean/_max` gauges, labelled `tenant=<name>`.
pub const TENANT_LATENCY_NS: &str = "bbpim_tenant_latency_ns";
/// Per-tenant deadline-met completions per simulated second, gauge.
pub const TENANT_GOODPUT_QPS: &str = "bbpim_tenant_goodput_qps";
/// Per-tenant completed requests, counter.
pub const TENANT_COMPLETIONS: &str = "bbpim_tenant_completions_total";
/// Per-tenant write requests durably applied, counter.
pub const TENANT_WRITES: &str = "bbpim_tenant_writes_total";
/// Per-tenant requests shed at admission, counter.
pub const TENANT_DROPS: &str = "bbpim_tenant_drops_total";
/// Per-tenant requests delayed by the token bucket, counter.
pub const TENANT_THROTTLED: &str = "bbpim_tenant_throttled_total";
/// Per-tenant drop rate (sheds over submissions), gauge.
pub const TENANT_DROP_RATE: &str = "bbpim_tenant_drop_rate";
/// 1.0 when the tenant's observed p95 stayed within its promise, gauge.
pub const TENANT_SLO_MET: &str = "bbpim_tenant_slo_p95_met";
/// The in-flight window after the last controller decision, gauge.
pub const WINDOW_FINAL: &str = "bbpim_serve_window_final";
/// The smallest window the session ran under, gauge.
pub const WINDOW_MIN: &str = "bbpim_serve_window_min";
/// The largest window the session ran under, gauge.
pub const WINDOW_MAX: &str = "bbpim_serve_window_max";
/// Controller decisions taken, counter.
pub const WINDOW_DECISIONS: &str = "bbpim_serve_window_decisions_total";

/// Record everything one serve session measured into `reg`. Per-tenant
/// series carry `tenant=<name>` on top of `labels` (typically
/// `run=<study row>`); window series carry `labels` alone.
pub fn record_serve_metrics(
    reg: &mut MetricsRegistry,
    tenants: &[TenantSpec],
    outcome: &ServeOutcome,
    labels: &[(&str, &str)],
) {
    for report in tenant_reports(tenants, outcome) {
        let mut with_tenant = labels.to_vec();
        with_tenant.push(("tenant", report.name.as_str()));
        let s = &report.latency;
        for (suffix, v) in [
            ("_p50", s.p50_ns),
            ("_p95", s.p95_ns),
            ("_p99", s.p99_ns),
            ("_p999", s.p999_ns),
            ("_mean", s.mean_ns),
            ("_max", s.max_ns),
        ] {
            reg.gauge_set(&format!("{TENANT_LATENCY_NS}{suffix}"), &with_tenant, v);
        }
        reg.gauge_set(TENANT_GOODPUT_QPS, &with_tenant, report.goodput_qps);
        reg.counter_add(TENANT_COMPLETIONS, &with_tenant, report.completed as f64);
        if report.writes_completed > 0 {
            reg.counter_add(TENANT_WRITES, &with_tenant, report.writes_completed as f64);
        }
        reg.counter_add(TENANT_DROPS, &with_tenant, report.dropped as f64);
        reg.counter_add(TENANT_THROTTLED, &with_tenant, report.throttled as f64);
        reg.gauge_set(TENANT_DROP_RATE, &with_tenant, report.drop_rate);
        reg.gauge_set(TENANT_SLO_MET, &with_tenant, if report.slo_met { 1.0 } else { 0.0 });
    }
    for c in &outcome.completions {
        let mut with_tenant = labels.to_vec();
        with_tenant.push(("tenant", tenants[c.tenant].name.as_str()));
        reg.observe(TENANT_LATENCY_NS, &with_tenant, c.latency_ns());
    }
    for c in &outcome.write_completions {
        let mut with_tenant = labels.to_vec();
        with_tenant.push(("tenant", tenants[c.tenant].name.as_str()));
        reg.observe(TENANT_LATENCY_NS, &with_tenant, c.latency_ns());
    }
    // Per-lane cell wear, mirroring the streaming scheduler's series:
    // the serving layer wears the same modules.
    for (m, writes) in outcome.lane_cell_writes.iter().enumerate() {
        if *writes == 0 {
            continue;
        }
        let module = m.to_string();
        let mut with_module = labels.to_vec();
        with_module.push(("module", module.as_str()));
        reg.counter_add(CELL_WRITES, &with_module, *writes as f64);
    }
    for (m, req) in outcome.lane_required_endurance.iter().enumerate() {
        if *req <= 0.0 {
            continue;
        }
        let module = m.to_string();
        let mut with_module = labels.to_vec();
        with_module.push(("module", module.as_str()));
        reg.gauge_max(REQUIRED_ENDURANCE, &with_module, *req);
    }
    let (lo, hi) = outcome.window_bounds();
    reg.gauge_set(WINDOW_FINAL, labels, outcome.final_window() as f64);
    reg.gauge_set(WINDOW_MIN, labels, lo as f64);
    reg.gauge_set(WINDOW_MAX, labels, hi as f64);
    reg.counter_add(WINDOW_DECISIONS, labels, outcome.decisions.len() as f64);
}
