//! Serving-layer errors.

use std::error::Error;
use std::fmt;

use bbpim_cluster::ClusterError;
use bbpim_sched::SchedError;

/// Everything that can go wrong setting up or running a serve session.
#[derive(Debug)]
pub enum ServeError {
    /// A scheduler-layer failure (demand resolution, planner, shards).
    Sched(SchedError),
    /// A malformed tenant specification.
    InvalidTenant(String),
    /// A malformed serve or controller configuration.
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sched(e) => write!(f, "scheduler error: {e}"),
            ServeError::InvalidTenant(m) => write!(f, "invalid tenant: {m}"),
            ServeError::InvalidConfig(m) => write!(f, "invalid serve config: {m}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

impl From<ClusterError> for ServeError {
    fn from(e: ClusterError) -> Self {
        ServeError::Sched(SchedError::from(e))
    }
}
