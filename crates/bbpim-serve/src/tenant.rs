//! Tenant specifications: who sends traffic, how it arrives, how much
//! is allowed in, and what latency it was promised.

use bbpim_core::mutation::Mutation;
use bbpim_db::plan::Query;
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::ServeError;

/// How a tenant's requests are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: `arrivals` requests with seeded exponential
    /// interarrival gaps (Poisson process) starting at t = 0; each
    /// request picks a uniform random query from the tenant's set.
    /// Arrivals keep coming whether or not earlier ones finished —
    /// the overload generator.
    OpenPoisson {
        /// Requests to generate.
        arrivals: usize,
        /// Mean interarrival gap, nanoseconds.
        mean_interarrival_ns: f64,
    },
    /// Open loop: all `arrivals` requests land at once at `at_ns`
    /// (queue-depth and shedding stress).
    Burst {
        /// Requests to generate.
        arrivals: usize,
        /// The instant they all arrive.
        at_ns: f64,
    },
    /// Closed loop: `clients` concurrent clients, each issuing a
    /// request, waiting for its completion (or drop), thinking for a
    /// seeded exponential gap, then issuing the next — so offered load
    /// *reacts* to latency, the classic interactive-client model.
    Closed {
        /// Concurrent think-time clients.
        clients: usize,
        /// Requests each client issues before leaving.
        queries_per_client: usize,
        /// Mean think gap between a client's completion and its next
        /// request, nanoseconds.
        mean_think_ns: f64,
    },
}

impl ArrivalProcess {
    /// Total requests this process will generate.
    pub fn total_requests(&self) -> usize {
        match self {
            ArrivalProcess::OpenPoisson { arrivals, .. } => *arrivals,
            ArrivalProcess::Burst { arrivals, .. } => *arrivals,
            ArrivalProcess::Closed { clients, queries_per_client, .. } => {
                clients * queries_per_client
            }
        }
    }
}

/// A token-bucket rate limit on one tenant's *admission eligibility*:
/// requests above the sustained rate are not rejected, they become
/// eligible later (throttled), and the scheduler counts them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained request rate, per second.
    pub rate_per_s: f64,
    /// Bucket depth: how many requests may pass at line rate before
    /// the sustained rate bites.
    pub burst: f64,
}

/// Write traffic mixed into a tenant's request stream.
///
/// Each mutation in the set is applied to the cluster **once, at
/// session start** (tenant order, then list order), fixing the state
/// every query answers over; the arrival processes then replay the
/// mutations' compiled write-phase chains as first-class requests —
/// each write request rides the shared host channel and its ingest
/// lane's module queue, charges the tenant's fair share, feeds the
/// AIMD controller its SLO-normalised latency, and wears its lanes'
/// cells. Write requests are never deadline-shed: durable work is not
/// droppable.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteMix {
    /// The tenant's mutation set; arrival processes pick from it
    /// uniformly, exactly as they pick queries.
    pub mutations: Vec<Mutation>,
    /// Probability an arrival is a write rather than a query. Must be
    /// in `(0, 1]`; `1.0` makes a pure-write tenant (its query set may
    /// then be empty).
    pub write_frac: f64,
}

/// What the tenant was promised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The p95 end-to-end latency target, nanoseconds. Feeds the AIMD
    /// controller (violation cuts the window) and the per-tenant
    /// `slo_met` report bit.
    pub p95_target_ns: f64,
    /// Optional per-request deadline relative to arrival: at admission
    /// the scheduler sheds a request whose predicted completion blows
    /// it, and a completion past it does not count toward goodput.
    pub deadline_ns: Option<f64>,
}

/// One tenant: a named workload with its arrival process, rate limit,
/// SLO, and fair-share weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Report/metric label (must be unique across the session).
    pub name: String,
    /// The tenant's query set; arrival processes pick from it.
    pub queries: Vec<Query>,
    /// How requests are generated.
    pub process: ArrivalProcess,
    /// Optional write traffic mixed into the request stream
    /// (HTAP-serving tenants).
    pub writes: Option<WriteMix>,
    /// Optional token-bucket rate limit on admission eligibility.
    pub rate_limit: Option<RateLimit>,
    /// The latency promise.
    pub slo: SloSpec,
    /// Weighted-fair-sharing weight (relative service share under
    /// contention; must be positive).
    pub weight: f64,
}

impl TenantSpec {
    /// Validate one tenant spec.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenant`] for an empty query set,
    /// non-positive weight/targets/rates, or non-finite parameters.
    pub fn validate(&self) -> Result<(), ServeError> {
        let fail = |m: String| Err(ServeError::InvalidTenant(format!("{}: {m}", self.name)));
        match &self.writes {
            None => {
                if self.queries.is_empty() {
                    return fail("empty query set".into());
                }
            }
            Some(w) => {
                if w.mutations.is_empty() {
                    return fail("write mix with an empty mutation set".into());
                }
                if !(w.write_frac.is_finite() && w.write_frac > 0.0 && w.write_frac <= 1.0) {
                    return fail(format!("write_frac must be in (0, 1], got {}", w.write_frac));
                }
                if self.queries.is_empty() && w.write_frac < 1.0 {
                    return fail("empty query set needs write_frac = 1".into());
                }
            }
        }
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return fail(format!("weight must be finite and positive, got {}", self.weight));
        }
        if !(self.slo.p95_target_ns.is_finite() && self.slo.p95_target_ns > 0.0) {
            return fail(format!("p95 target must be positive, got {}", self.slo.p95_target_ns));
        }
        if let Some(d) = self.slo.deadline_ns {
            if !(d.is_finite() && d > 0.0) {
                return fail(format!("deadline must be positive, got {d}"));
            }
        }
        if let Some(rl) = &self.rate_limit {
            if !(rl.rate_per_s.is_finite() && rl.rate_per_s > 0.0) {
                return fail(format!("rate limit must be positive, got {}", rl.rate_per_s));
            }
            if !(rl.burst.is_finite() && rl.burst >= 1.0) {
                return fail(format!("burst must be at least 1, got {}", rl.burst));
            }
        }
        match self.process {
            ArrivalProcess::OpenPoisson { mean_interarrival_ns, .. } => {
                if !(mean_interarrival_ns.is_finite() && mean_interarrival_ns > 0.0) {
                    return fail(format!(
                        "mean interarrival must be positive, got {mean_interarrival_ns}"
                    ));
                }
            }
            ArrivalProcess::Burst { at_ns, .. } => {
                if !(at_ns.is_finite() && at_ns >= 0.0) {
                    return fail(format!("burst instant must be non-negative, got {at_ns}"));
                }
            }
            ArrivalProcess::Closed { mean_think_ns, .. } => {
                if !(mean_think_ns.is_finite() && mean_think_ns >= 0.0) {
                    return fail(format!("mean think must be non-negative, got {mean_think_ns}"));
                }
            }
        }
        Ok(())
    }
}

/// A GCRA-style token bucket over the simulated clock. [`reserve`] is
/// called once per request in nondecreasing arrival order and returns
/// the instant the request becomes *eligible* for admission — `at_ns`
/// itself while tokens last, later once the sustained rate binds. The
/// request is never rejected, only delayed; the delta is the tenant's
/// throttle signal.
///
/// [`reserve`]: TokenBucket::reserve
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_ns: f64,
    burst: f64,
    tokens: f64,
    last_ns: f64,
}

impl TokenBucket {
    /// A full bucket for `limit`.
    pub fn new(limit: &RateLimit) -> TokenBucket {
        TokenBucket {
            rate_per_ns: limit.rate_per_s / 1e9,
            burst: limit.burst,
            tokens: limit.burst,
            last_ns: 0.0,
        }
    }

    /// Reserve one token for a request arriving at `at_ns`
    /// (nondecreasing across calls) and return its eligibility instant.
    /// The count may go negative — accumulated debt is what spaces a
    /// queue of borrowers at exactly the sustained rate.
    pub fn reserve(&mut self, at_ns: f64) -> f64 {
        let refill = (at_ns - self.last_ns).max(0.0) * self.rate_per_ns;
        self.tokens = (self.tokens + refill).min(self.burst);
        self.last_ns = at_ns;
        self.tokens -= 1.0;
        if self.tokens >= 0.0 {
            at_ns
        } else {
            at_ns + -self.tokens / self.rate_per_ns
        }
    }
}

/// Draw an exponential gap with the given mean from `rng` (inverse
/// CDF over the open unit interval — the same transform the
/// scheduler's Poisson workloads use, so seeds compare).
pub(crate) fn exp_gap_ns(rng: &mut StdRng, mean_ns: f64) -> f64 {
    if mean_ns <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen();
    -mean_ns * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
    use rand::SeedableRng;

    fn q() -> Query {
        Query::single(
            "q",
            vec![Atom::Gt { attr: "a".into(), value: 0u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("a".into()),
        )
    }

    fn tenant() -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            queries: vec![q()],
            process: ArrivalProcess::OpenPoisson { arrivals: 4, mean_interarrival_ns: 100.0 },
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 1_000.0, deadline_ns: None },
            weight: 1.0,
        }
    }

    #[test]
    fn bucket_passes_burst_then_paces_at_rate() {
        // 2 req/s sustained, burst of 2: two immediate, then 500 ms
        // spacing from the *bucket*, not from arrival time.
        let mut b = TokenBucket::new(&RateLimit { rate_per_s: 2.0, burst: 2.0 });
        assert_eq!(b.reserve(0.0), 0.0);
        assert_eq!(b.reserve(0.0), 0.0);
        let e3 = b.reserve(0.0);
        assert!((e3 - 0.5e9).abs() < 1.0, "third waits one token: {e3}");
        let e4 = b.reserve(0.0);
        assert!((e4 - 1.0e9).abs() < 1.0, "fourth waits two: {e4}");
        // A late arrival after full refill passes immediately again.
        let mut b = TokenBucket::new(&RateLimit { rate_per_s: 2.0, burst: 2.0 });
        b.reserve(0.0);
        b.reserve(0.0);
        assert_eq!(b.reserve(2.0e9), 2.0e9);
    }

    #[test]
    fn bucket_never_reorders_eligibility() {
        let mut b = TokenBucket::new(&RateLimit { rate_per_s: 10.0, burst: 1.0 });
        let mut at = 0.0;
        let mut last = 0.0;
        for i in 0..50 {
            at += (i % 3) as f64 * 20e6;
            let e = b.reserve(at);
            assert!(e >= at, "eligibility never precedes arrival");
            assert!(e >= last, "eligibility is nondecreasing");
            last = e;
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(tenant().validate().is_ok());
        let mut t = tenant();
        t.queries.clear();
        assert!(matches!(t.validate(), Err(ServeError::InvalidTenant(_))));
        let mut t = tenant();
        t.weight = 0.0;
        assert!(t.validate().is_err());
        let mut t = tenant();
        t.slo.p95_target_ns = -1.0;
        assert!(t.validate().is_err());
        let mut t = tenant();
        t.slo.deadline_ns = Some(0.0);
        assert!(t.validate().is_err());
        let mut t = tenant();
        t.rate_limit = Some(RateLimit { rate_per_s: 0.0, burst: 2.0 });
        assert!(t.validate().is_err());
        let mut t = tenant();
        t.process = ArrivalProcess::OpenPoisson { arrivals: 1, mean_interarrival_ns: f64::NAN };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_polices_the_write_mix() {
        let m = Mutation::update().set("a", 1).build_unchecked();
        let mut t = tenant();
        t.writes = Some(WriteMix { mutations: vec![m.clone()], write_frac: 0.5 });
        assert!(t.validate().is_ok());
        // A pure writer may drop its query set — but only at frac 1.
        t.writes = Some(WriteMix { mutations: vec![m.clone()], write_frac: 1.0 });
        t.queries.clear();
        assert!(t.validate().is_ok());
        t.writes = Some(WriteMix { mutations: vec![m.clone()], write_frac: 0.5 });
        assert!(t.validate().is_err(), "mixed traffic needs queries to mix");
        let mut t = tenant();
        t.writes = Some(WriteMix { mutations: vec![], write_frac: 0.5 });
        assert!(t.validate().is_err());
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            let mut t = tenant();
            t.writes = Some(WriteMix { mutations: vec![m.clone()], write_frac: bad });
            assert!(t.validate().is_err(), "write_frac {bad} must be rejected");
        }
    }

    #[test]
    fn exp_gap_is_seed_deterministic_and_positive() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let ga = exp_gap_ns(&mut a, 1000.0);
            assert!(ga >= 0.0 && ga.is_finite());
            assert_eq!(ga, exp_gap_ns(&mut b, 1000.0));
        }
        assert_eq!(exp_gap_ns(&mut a, 0.0), 0.0);
    }

    #[test]
    fn process_counts_requests() {
        assert_eq!(
            ArrivalProcess::Closed { clients: 3, queries_per_client: 4, mean_think_ns: 1.0 }
                .total_requests(),
            12
        );
        assert_eq!(ArrivalProcess::Burst { arrivals: 5, at_ns: 0.0 }.total_requests(), 5);
    }
}
