//! The multi-tenant serving event loop.
//!
//! [`run_serve`] multiplexes every tenant's arrival process — seeded
//! open Poisson/burst streams *and* closed-loop think-time clients —
//! into one deterministic discrete-event timeline over a
//! [`StreamEngine`] cluster:
//!
//! * **Rate limits** — each arrival passes its tenant's token bucket;
//!   over-rate requests are not rejected, their admission eligibility
//!   moves later (throttling, counted per tenant).
//! * **Weighted fair admission** — each tenant has its own FIFO
//!   admission queue; when an in-flight slot frees, the eligible
//!   tenant with the least weighted admitted work
//!   (`served_work / weight`) goes next, so a heavy tenant cannot
//!   starve a light one no matter how deep its backlog.
//! * **Deadline shedding** — at admission, a request whose predicted
//!   completion (now + candidate-shard count × an EWMA of observed
//!   per-shard service) blows its deadline is dropped instead of
//!   admitted: under overload it could only waste bus time on an
//!   answer nobody will count.
//! * **AIMD window** — the global in-flight bound is either the legacy
//!   static knob or a closed-loop [`AimdController`] fed every
//!   completion's SLO-normalised latency.
//!
//! Service demands come pre-resolved from real shard executions
//! ([`bbpim_sched::demand::resolve_query_demand`]), so every admitted
//! request's answer is fixed *before* any scheduling happens —
//! bit-identical to the batch oracle; policies only decide which
//! requests run and when. Closed-loop clients issue their next request
//! from their completion (or shed) instant plus a seeded think gap,
//! which is why serving needs its own event loop rather than a
//! precomputed workload trace.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use bbpim_cluster::ClusterExecution;
use bbpim_sched::demand::{
    compile_mutation_demand, resolve_query_demand, MutationDemand, QueryDemand, ShardDemand,
};
use bbpim_sched::StreamEngine;
use bbpim_sim::hostbus::SharedBus;
use bbpim_trace::{ArgValue, TraceRecorder, TrackId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::controller::{AimdController, WindowDecision, WindowPolicy};
use crate::error::ServeError;
use crate::tenant::{exp_gap_ns, ArrivalProcess, TenantSpec, TokenBucket, WriteMix};

/// Serve-session configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for every tenant's arrival draws and client think times.
    pub seed: u64,
    /// The in-flight window policy.
    pub window: WindowPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { seed: 0, window: WindowPolicy::Aimd(Default::default()) }
    }
}

/// What happened at one point of the simulated serve timeline
/// (determinism tests compare full traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEventKind {
    /// The request arrived (entered its tenant's admission queue).
    Arrive,
    /// The request was admitted.
    Admit,
    /// The request was shed at admission (predicted deadline miss).
    Shed,
    /// The host bus finished the request's first bus slice for a shard.
    Dispatched,
    /// A shard finished the request's entire slice chain.
    ShardDone,
    /// The request's partials merged; the request is complete.
    Complete,
}

/// One record of the simulated serve timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeTimelineEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: f64,
    /// What happened.
    pub kind: ServeEventKind,
    /// Which request (index into the session's request log).
    pub request: usize,
    /// The shard involved, for [`ServeEventKind::Dispatched`] /
    /// [`ServeEventKind::ShardDone`].
    pub shard: Option<usize>,
}

/// Latency accounting for one completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCompletion {
    /// Index into the session's request log.
    pub request: usize,
    /// Owning tenant (index into the tenant slice).
    pub tenant: usize,
    /// The closed-loop client that issued it, if any.
    pub client: Option<usize>,
    /// Query identifier.
    pub query_id: String,
    /// When the request arrived.
    pub arrive_ns: f64,
    /// When the token bucket made it admissible (equals `arrive_ns`
    /// unless throttled).
    pub eligible_ns: f64,
    /// When admission control let it in.
    pub admit_ns: f64,
    /// When its first bus slice started (equals `admit_ns` for
    /// planner-only answers).
    pub first_service_ns: f64,
    /// When its merged answer was ready.
    pub complete_ns: f64,
    /// Candidate shards dispatched.
    pub shards_dispatched: usize,
    /// Active shards pruned by the zone-map planner.
    pub shards_pruned: usize,
    /// Absolute deadline, if the tenant's SLO set one.
    pub deadline_ns: Option<f64>,
}

impl ServeCompletion {
    /// End-to-end sojourn time (arrival → merged answer).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Time waiting (throttle + admission queue + bus queue) before
    /// any service.
    pub fn wait_ns(&self) -> f64 {
        self.first_service_ns - self.arrive_ns
    }

    /// Time from first service to completion.
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.first_service_ns
    }

    /// Was the request delayed by its tenant's rate limit?
    pub fn throttled(&self) -> bool {
        self.eligible_ns > self.arrive_ns
    }

    /// Did the answer arrive in time to count toward goodput?
    /// (Trivially true without a deadline.)
    pub fn met_deadline(&self) -> bool {
        self.deadline_ns.is_none_or(|d| self.complete_ns <= d)
    }
}

/// Latency accounting for one completed write request (cf.
/// [`ServeCompletion`] — writes have no merge and no deadline, and
/// their answer is state, not groups).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWriteCompletion {
    /// Index into the session's request log.
    pub request: usize,
    /// Owning tenant (index into the tenant slice).
    pub tenant: usize,
    /// The closed-loop client that issued it, if any.
    pub client: Option<usize>,
    /// The mutation's label.
    pub label: String,
    /// When the request arrived.
    pub arrive_ns: f64,
    /// When the token bucket made it admissible.
    pub eligible_ns: f64,
    /// When admission control let it in.
    pub admit_ns: f64,
    /// When its first bus slice started.
    pub first_service_ns: f64,
    /// When its last lane chain finished (durable).
    pub complete_ns: f64,
    /// Ingest lanes the write occupied.
    pub lanes: usize,
    /// Records the mutation rewrites in place (UPDATE).
    pub records_updated: u64,
    /// Records the mutation appends (INSERT).
    pub records_inserted: u64,
}

impl ServeWriteCompletion {
    /// End-to-end sojourn time (arrival → durable).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Time waiting (throttle + admission queue + bus queue) before
    /// any service.
    pub fn wait_ns(&self) -> f64 {
        self.first_service_ns - self.arrive_ns
    }

    /// Time from first service to durable.
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.first_service_ns
    }
}

/// One request shed at admission.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeDrop {
    /// Index into the session's request log.
    pub request: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// The closed-loop client that issued it, if any.
    pub client: Option<usize>,
    /// Query identifier.
    pub query_id: String,
    /// When the request arrived.
    pub arrive_ns: f64,
    /// When admission shed it.
    pub shed_ns: f64,
    /// The completion instant the shedder predicted.
    pub predicted_complete_ns: f64,
    /// The absolute deadline the prediction blew.
    pub deadline_ns: f64,
}

/// Everything one serve session produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-request latency records, in completion order.
    pub completions: Vec<ServeCompletion>,
    /// Merged executions parallel to `completions` — each is
    /// bit-identical to the batch answer for its query.
    pub executions: Vec<ClusterExecution>,
    /// Per-write-request latency records, in completion order (empty
    /// for sessions without write traffic).
    pub write_completions: Vec<ServeWriteCompletion>,
    /// Requests shed at admission, in shed order.
    pub drops: Vec<ServeDrop>,
    /// The full event timeline (deterministic per seed).
    pub timeline: Vec<ServeTimelineEvent>,
    /// The in-flight window over time: the initial window at t = 0
    /// plus one entry per controller decision (static windows have
    /// only the initial entry).
    pub window_trajectory: Vec<(f64, usize)>,
    /// The AIMD decision log (empty under a static window).
    pub decisions: Vec<WindowDecision>,
    /// Per-tenant requests generated.
    pub submitted: Vec<usize>,
    /// Per-tenant requests delayed by the token bucket.
    pub throttled: Vec<usize>,
    /// When the last request completed or was shed.
    pub makespan_ns: f64,
    /// Host-channel busy time.
    pub host_busy_ns: f64,
    /// Per-lane module-local busy time. One entry per active shard for
    /// query-only sessions; with write traffic, one per ingest lane
    /// (auxiliary lanes — star dimension modules — after the shards).
    pub shard_busy_ns: Vec<f64>,
    /// Per-lane accumulated worst-row cell writes over every completed
    /// query slice and write chain (the endurance model's input).
    pub lane_cell_writes: Vec<u64>,
    /// Per-lane required cell endurance (write cycles) to sustain that
    /// lane's worst chain back-to-back for ten years; zero for lanes
    /// whose work performs no PIM writes.
    pub lane_required_endurance: Vec<f64>,
}

impl ServeOutcome {
    /// Completed requests per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_ns / 1e9)
        }
    }

    /// Saturated host-channel utilisation over the makespan.
    pub fn host_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        (self.host_busy_ns / self.makespan_ns).clamp(0.0, 1.0)
    }

    /// Raw (unclamped) host-channel demand ratio (cf.
    /// [`SharedBus::demand`]).
    pub fn host_demand(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.host_busy_ns / self.makespan_ns
    }

    /// The smallest and largest window the session ever ran under.
    pub fn window_bounds(&self) -> (usize, usize) {
        let lo = self.window_trajectory.iter().map(|(_, w)| *w).min().unwrap_or(0);
        let hi = self.window_trajectory.iter().map(|(_, w)| *w).max().unwrap_or(0);
        (lo, hi)
    }

    /// The window after the last decision.
    pub fn final_window(&self) -> usize {
        self.window_trajectory.last().map_or(0, |(_, w)| *w)
    }
}

/// What one request asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Work {
    /// Index into the owning tenant's query set.
    Query(usize),
    /// Index into the owning tenant's write-mix mutation set.
    Write(usize),
}

/// One generated request.
#[derive(Debug, Clone, Copy)]
struct Request {
    tenant: usize,
    work: Work,
    client: Option<usize>,
    arrive_ns: f64,
    /// Set by the token bucket when the arrival fires.
    eligible_ns: f64,
    /// Always `None` for writes: durable work is never shed.
    deadline_ns: Option<f64>,
}

/// Mutable per-request execution state.
#[derive(Clone, Copy)]
struct Progress {
    admit_ns: f64,
    first_service_ns: f64,
    remaining: usize,
}

/// One closed-loop client: its private think/pick RNG and how many
/// requests it has left to issue.
struct ClientState {
    rng: StdRng,
    remaining: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A request enters its tenant's admission queue.
    Arrive(usize),
    /// A deferred admission attempt (head-of-queue eligibility).
    AdmitTick,
    /// `(request, shard_pos, slice_idx)`: the slice's bus part ended.
    BusDone(usize, usize, usize),
    /// `(request, shard_pos, slice_idx)`: the slice's local part ended.
    LocalDone(usize, usize, usize),
    /// The request's host-side merge ended.
    MergeDone(usize),
}

/// Heap entry ordered by (time, insertion sequence) — the sequence
/// makes simultaneous events deterministic.
struct HeapEntry {
    t_ns: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns.total_cmp(&other.t_ns) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so `BinaryHeap` pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.t_ns.total_cmp(&self.t_ns).then(other.seq.cmp(&self.seq))
    }
}

/// The dynamic window state.
enum WindowState {
    Static(usize),
    Aimd(AimdController),
}

impl WindowState {
    fn window(&self) -> usize {
        match self {
            WindowState::Static(w) => *w,
            WindowState::Aimd(c) => c.window(),
        }
    }
}

/// Trace track ids for the serving lanes (present only when the
/// recorder is enabled).
struct Tracks {
    serve: TrackId,
    host: TrackId,
    controller: TrackId,
    modules: Vec<TrackId>,
}

impl Tracks {
    fn new(trace: &mut TraceRecorder, active_shards: usize, lanes: usize) -> Option<Tracks> {
        if !trace.is_enabled() {
            return None;
        }
        Some(Tracks {
            serve: trace.track("serve"),
            host: trace.track("host-bus"),
            controller: trace.track("controller"),
            modules: (0..lanes)
                .map(|k| {
                    if k < active_shards {
                        trace.track(&format!("module-{k}"))
                    } else {
                        trace.track(&format!("ingest-lane-{}", k - active_shards))
                    }
                })
                .collect(),
        })
    }
}

/// Draw one request's work from a tenant's mix. Pure-query tenants
/// draw exactly the single uniform pick they always did (their arrival
/// streams stay byte-identical to pre-HTAP sessions); tenants with a
/// write mix flip the write coin first, then pick uniformly from the
/// chosen set.
fn pick_work(rng: &mut StdRng, n_queries: usize, writes: Option<&WriteMix>) -> Work {
    if let Some(w) = writes {
        if rng.gen::<f64>() < w.write_frac {
            return Work::Write(rng.gen_range(0..w.mutations.len()));
        }
    }
    Work::Query(rng.gen_range(0..n_queries))
}

/// Distinct per-(tenant, stream) RNG seeds: stream 0 is the tenant's
/// open-arrival draw stream, 1 + c is closed client c's think stream.
fn stream_seed(seed: u64, tenant: u64, stream: u64) -> u64 {
    seed ^ tenant.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_add(1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// The serving state machine.
struct Server<'a> {
    tenants: &'a [TenantSpec],
    /// `demands[t][q]`: tenant t's query q, resolved once.
    demands: Vec<Vec<(QueryDemand, ClusterExecution)>>,
    /// `write_demands[t][w]`: tenant t's mutation w, applied to the
    /// cluster once at session start and compiled to its lane chains.
    write_demands: Vec<Vec<MutationDemand>>,
    requests: Vec<Request>,
    /// Per-tenant FIFO admission queues of request indices.
    queues: Vec<VecDeque<usize>>,
    buckets: Vec<Option<TokenBucket>>,
    clients: Vec<Vec<ClientState>>,
    /// WFQ accounting: total busy time of work admitted per tenant.
    served_work: Vec<f64>,
    submitted: Vec<usize>,
    throttled: Vec<usize>,
    window: WindowState,
    events: BinaryHeap<HeapEntry>,
    seq: u64,
    host: SharedBus,
    shard_bus: Vec<SharedBus>,
    in_flight: usize,
    progress: Vec<Option<Progress>>,
    /// EWMA of observed per-candidate-shard service time — the
    /// deadline shedder's completion predictor.
    est_per_shard_ns: Option<f64>,
    next_tick_ns: Option<f64>,
    completions: Vec<ServeCompletion>,
    executions: Vec<ClusterExecution>,
    write_completions: Vec<ServeWriteCompletion>,
    lane_cell_writes: Vec<u64>,
    lane_required_endurance: Vec<f64>,
    drops: Vec<ServeDrop>,
    timeline: Vec<ServeTimelineEvent>,
    window_trajectory: Vec<(f64, usize)>,
    trace: &'a mut TraceRecorder,
    tracks: Option<Tracks>,
}

/// EWMA weight for new per-shard service observations.
const EST_ALPHA: f64 = 0.3;

impl Server<'_> {
    fn push_event(&mut self, t_ns: f64, ev: Ev) {
        self.events.push(HeapEntry { t_ns, seq: self.seq, ev });
        self.seq += 1;
    }

    fn record(&mut self, t_ns: f64, kind: ServeEventKind, request: usize, shard: Option<usize>) {
        self.timeline.push(ServeTimelineEvent { t_ns, kind, request, shard });
    }

    /// The request's per-lane slice chains: candidate shard chains for
    /// a query, ingest lane chains for a write.
    fn chains(&self, ri: usize) -> &[ShardDemand] {
        let r = &self.requests[ri];
        match r.work {
            Work::Query(q) => &self.demands[r.tenant][q].0.shards,
            Work::Write(w) => &self.write_demands[r.tenant][w].lanes,
        }
    }

    /// The request's host-side merge occupancy (writes have none — a
    /// write is durable when its last lane chain finishes).
    fn merge_ns(&self, ri: usize) -> f64 {
        let r = &self.requests[ri];
        match r.work {
            Work::Query(q) => self.demands[r.tenant][q].0.merge_ns,
            Work::Write(_) => 0.0,
        }
    }

    /// The request's report/trace label: query id or mutation label.
    fn label(&self, ri: usize) -> &str {
        let r = &self.requests[ri];
        match r.work {
            Work::Query(q) => &self.demands[r.tenant][q].0.query_id,
            Work::Write(w) => &self.write_demands[r.tenant][w].label,
        }
    }

    /// Standard event attributes: request index, tenant name, query id
    /// or mutation label.
    fn request_args(&self, ri: usize) -> Vec<(&'static str, ArgValue)> {
        let r = &self.requests[ri];
        vec![
            ("request", ArgValue::U64(ri as u64)),
            ("tenant", ArgValue::Str(self.tenants[r.tenant].name.clone())),
            ("query", ArgValue::Str(self.label(ri).to_string())),
        ]
    }

    /// Sample the scheduler counters (total queued, in-flight, window)
    /// onto the serve and controller tracks.
    fn trace_counters(&mut self, t_ns: f64) {
        if let Some(tracks) = &self.tracks {
            let (serve, ctl) = (tracks.serve, tracks.controller);
            let depth: usize = self.queues.iter().map(VecDeque::len).sum();
            let in_flight = self.in_flight as f64;
            let window = self.window.window() as f64;
            self.trace.counter(serve, "admission-queue", t_ns, depth as f64);
            self.trace.counter(serve, "in-flight", t_ns, in_flight);
            self.trace.counter(ctl, "in-flight-window", t_ns, window);
        }
    }

    /// Create one request and schedule its arrival.
    fn create_request(&mut self, tenant: usize, work: Work, client: Option<usize>, at_ns: f64) {
        let deadline_ns = match work {
            Work::Query(_) => self.tenants[tenant].slo.deadline_ns.map(|d| at_ns + d),
            Work::Write(_) => None,
        };
        let ri = self.requests.len();
        self.requests.push(Request {
            tenant,
            work,
            client,
            arrive_ns: at_ns,
            eligible_ns: at_ns,
            deadline_ns,
        });
        self.progress.push(None);
        self.submitted[tenant] += 1;
        self.push_event(at_ns, Ev::Arrive(ri));
    }

    /// A closed-loop client learned its request's fate at `now_ns`:
    /// think, then issue the next request (if it has any left).
    fn client_next(&mut self, now_ns: f64, ri: usize) {
        let r = self.requests[ri];
        let Some(ci) = r.client else { return };
        let ArrivalProcess::Closed { mean_think_ns, .. } = self.tenants[r.tenant].process else {
            return;
        };
        let tenants: &[TenantSpec] = self.tenants;
        let spec = &tenants[r.tenant];
        let st = &mut self.clients[r.tenant][ci];
        if st.remaining == 0 {
            return;
        }
        st.remaining -= 1;
        let gap = exp_gap_ns(&mut st.rng, mean_think_ns);
        let work = pick_work(&mut st.rng, spec.queries.len(), spec.writes.as_ref());
        self.create_request(r.tenant, work, Some(ci), now_ns + gap);
    }

    /// The shedder's completion predictor: candidate shards × the
    /// observed per-shard service EWMA (zero until the first
    /// completion teaches it — cold starts admit optimistically).
    fn estimate_service_ns(&self, candidates: usize) -> f64 {
        self.est_per_shard_ns.map_or(0.0, |e| e * candidates as f64)
    }

    fn note_service(&mut self, service_ns: f64, shards: usize) {
        if shards == 0 {
            return;
        }
        let per = service_ns / shards as f64;
        self.est_per_shard_ns = Some(match self.est_per_shard_ns {
            None => per,
            Some(e) => (1.0 - EST_ALPHA) * e + EST_ALPHA * per,
        });
    }

    /// Schedule a deferred admission attempt at `at_ns` unless an
    /// earlier one is already pending.
    fn schedule_tick(&mut self, at_ns: f64) {
        if !self.next_tick_ns.is_some_and(|t| t <= at_ns) {
            self.next_tick_ns = Some(at_ns);
            self.push_event(at_ns, Ev::AdmitTick);
        }
    }

    /// Weighted-fair pick: among tenants whose queue head is eligible
    /// at `now_ns`, the least `served_work / weight` (ties to the
    /// lowest tenant index). Also returns the earliest future
    /// eligibility when nothing is admissible yet.
    fn pick_tenant(&self, now_ns: f64) -> (Option<usize>, f64) {
        let mut best: Option<(f64, usize)> = None;
        let mut next_eligible = f64::INFINITY;
        for (t, q) in self.queues.iter().enumerate() {
            let Some(&head) = q.front() else { continue };
            let e = self.requests[head].eligible_ns;
            if e <= now_ns {
                let key = self.served_work[t] / self.tenants[t].weight;
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, t));
                }
            } else {
                next_eligible = next_eligible.min(e);
            }
        }
        (best.map(|(_, t)| t), next_eligible)
    }

    /// Start one slice of a shard chain at `now_ns` (cf. the streaming
    /// scheduler: bus part first, then the local part queues on the
    /// shard). Returns the bus grant start when the slice touched the
    /// bus.
    fn start_slice(&mut self, now_ns: f64, ri: usize, sp: usize, idx: usize) -> Option<f64> {
        let slice = self.chains(ri)[sp].slices[idx];
        if slice.bus_ns > 0.0 {
            let grant = self.host.acquire(now_ns, slice.bus_ns);
            self.push_event(grant.end_ns, Ev::BusDone(ri, sp, idx));
            if let Some(tracks) = &self.tracks {
                let (host, shard) = (tracks.host, self.chains(ri)[sp].shard);
                let name = slice.bus_kind.map_or("bus", |k| k.label());
                let mut args = self.request_args(ri);
                args.push(("shard", ArgValue::U64(shard as u64)));
                args.push(("wait_ns", ArgValue::F64(grant.start_ns - now_ns)));
                args.push(("bytes", ArgValue::U64(slice.bus_bytes)));
                self.trace.span(host, name, grant.start_ns, slice.bus_ns, args);
            }
            Some(grant.start_ns)
        } else {
            self.push_event(now_ns, Ev::BusDone(ri, sp, idx));
            None
        }
    }

    /// Shed `ri` at admission: its predicted completion blows its
    /// deadline.
    fn shed(&mut self, now_ns: f64, ri: usize, predicted_ns: f64, deadline_ns: f64) {
        self.record(now_ns, ServeEventKind::Shed, ri, None);
        if let Some(tracks) = &self.tracks {
            let serve = tracks.serve;
            let mut args = self.request_args(ri);
            args.push(("predicted_ns", ArgValue::F64(predicted_ns)));
            args.push(("deadline_ns", ArgValue::F64(deadline_ns)));
            self.trace.instant(serve, "shed", now_ns, args);
        }
        let r = self.requests[ri];
        self.drops.push(ServeDrop {
            request: ri,
            tenant: r.tenant,
            client: r.client,
            query_id: self.label(ri).to_string(),
            arrive_ns: r.arrive_ns,
            shed_ns: now_ns,
            predicted_complete_ns: predicted_ns,
            deadline_ns,
        });
        // The rejection is the client's signal: it thinks, then retries
        // with its next request.
        self.client_next(now_ns, ri);
    }

    /// Admit from the tenant queues while in-flight slots are free.
    fn try_admit(&mut self, now_ns: f64) {
        while self.in_flight < self.window.window() {
            let (pick, next_eligible) = self.pick_tenant(now_ns);
            let Some(t) = pick else {
                if next_eligible.is_finite() {
                    self.schedule_tick(next_eligible);
                }
                break;
            };
            let ri = self.queues[t].pop_front().expect("picked tenant has a head");
            // Deadline shed before the slot is consumed (queries only —
            // write requests carry no deadline).
            if let Some(d) = self.requests[ri].deadline_ns {
                let predicted = now_ns + self.estimate_service_ns(self.chains(ri).len());
                if now_ns > d || predicted > d {
                    self.shed(now_ns, ri, predicted, d);
                    continue;
                }
            }
            self.record(now_ns, ServeEventKind::Admit, ri, None);
            if let Some(tracks) = &self.tracks {
                let serve = tracks.serve;
                let mut args = self.request_args(ri);
                args.push(("queued_ns", ArgValue::F64(now_ns - self.requests[ri].arrive_ns)));
                self.trace.instant(serve, "admit", now_ns, args);
            }
            let (n_shards, busy) = {
                let chains = self.chains(ri);
                let slices: f64 = chains
                    .iter()
                    .flat_map(|c| c.slices.iter())
                    .map(|s| s.bus_ns + s.local_ns)
                    .sum();
                (chains.len(), slices + self.merge_ns(ri))
            };
            self.served_work[t] += busy;
            if n_shards == 0 {
                // The planner answered the query: nothing to dispatch,
                // the (empty) merge is free, the slot never fills.
                self.complete(
                    now_ns,
                    ri,
                    Progress { admit_ns: now_ns, first_service_ns: now_ns, remaining: 0 },
                );
                self.trace_counters(now_ns);
                continue;
            }
            self.in_flight += 1;
            let mut first_service_ns = f64::INFINITY;
            for sp in 0..n_shards {
                if let Some(start) = self.start_slice(now_ns, ri, sp, 0) {
                    first_service_ns = first_service_ns.min(start);
                }
            }
            if !first_service_ns.is_finite() {
                first_service_ns = now_ns;
            }
            self.progress[ri] =
                Some(Progress { admit_ns: now_ns, first_service_ns, remaining: n_shards });
            self.trace_counters(now_ns);
        }
    }

    fn complete(&mut self, now_ns: f64, ri: usize, p: Progress) {
        self.record(now_ns, ServeEventKind::Complete, ri, None);
        if let Some(tracks) = &self.tracks {
            let serve = tracks.serve;
            let mut args = self.request_args(ri);
            args.push(("latency_ns", ArgValue::F64(now_ns - self.requests[ri].arrive_ns)));
            self.trace.instant(serve, "complete", now_ns, args);
        }
        let r = self.requests[ri];
        // Feed the controller the SLO-normalised latency: write
        // completions count against the same promise, so a congested
        // ingest path cuts the window exactly as slow queries do.
        let ratio = match r.work {
            Work::Query(q) => {
                let (demand, exec) = &self.demands[r.tenant][q];
                let completion = ServeCompletion {
                    request: ri,
                    tenant: r.tenant,
                    client: r.client,
                    query_id: demand.query_id.clone(),
                    arrive_ns: r.arrive_ns,
                    eligible_ns: r.eligible_ns,
                    admit_ns: p.admit_ns,
                    first_service_ns: p.first_service_ns,
                    complete_ns: now_ns,
                    shards_dispatched: demand.shards.len(),
                    shards_pruned: demand.shards_pruned,
                    deadline_ns: r.deadline_ns,
                };
                self.executions.push(exec.clone());
                self.note_service(completion.service_ns(), completion.shards_dispatched);
                let ratio = completion.latency_ns() / self.tenants[r.tenant].slo.p95_target_ns;
                self.completions.push(completion);
                ratio
            }
            Work::Write(w) => {
                let d = &self.write_demands[r.tenant][w];
                let completion = ServeWriteCompletion {
                    request: ri,
                    tenant: r.tenant,
                    client: r.client,
                    label: d.label.clone(),
                    arrive_ns: r.arrive_ns,
                    eligible_ns: r.eligible_ns,
                    admit_ns: p.admit_ns,
                    first_service_ns: p.first_service_ns,
                    complete_ns: now_ns,
                    lanes: d.lanes.len(),
                    records_updated: d.records_updated,
                    records_inserted: d.records_inserted,
                };
                let ratio = completion.latency_ns() / self.tenants[r.tenant].slo.p95_target_ns;
                self.write_completions.push(completion);
                ratio
            }
        };
        if let WindowState::Aimd(ctl) = &mut self.window {
            if let Some(w) = ctl.on_completion(now_ns, ratio) {
                self.window_trajectory.push((now_ns, w));
                if let Some(tracks) = &self.tracks {
                    let ctl_track = tracks.controller;
                    self.trace.counter(ctl_track, "in-flight-window", now_ns, w as f64);
                }
            }
        }
        // The completion is the closed-loop client's signal.
        self.client_next(now_ns, ri);
    }

    /// A shard/lane chain finished its last slice.
    fn shard_done(&mut self, t: f64, ri: usize, sp: usize) {
        let (shard, cell_writes, endurance) = {
            let c = &self.chains(ri)[sp];
            (c.shard, c.cell_writes, c.required_endurance)
        };
        self.record(t, ServeEventKind::ShardDone, ri, Some(shard));
        self.lane_cell_writes[shard] += cell_writes;
        if endurance > self.lane_required_endurance[shard] {
            self.lane_required_endurance[shard] = endurance;
        }
        let p = self.progress[ri].as_mut().expect("in-flight request has progress");
        p.remaining -= 1;
        if p.remaining == 0 {
            let merge_ns = self.merge_ns(ri);
            let grant = self.host.acquire(t, merge_ns);
            self.push_event(grant.end_ns, Ev::MergeDone(ri));
            if merge_ns > 0.0 {
                if let Some(tracks) = &self.tracks {
                    let host = tracks.host;
                    let mut args = self.request_args(ri);
                    args.push(("wait_ns", ArgValue::F64(grant.start_ns - t)));
                    self.trace.span(host, "merge", grant.start_ns, merge_ns, args);
                }
            }
        }
    }

    /// Emit the module-track spans for one local window.
    fn trace_local(&mut self, ri: usize, sp: usize, idx: usize, start_ns: f64, local_ns: f64) {
        let Some(tracks) = &self.tracks else { return };
        let shard = self.chains(ri)[sp].shard;
        let module = tracks.modules[shard];
        let detail = self.chains(ri)[sp].detail.get(idx).cloned().unwrap_or_default();
        if detail.is_empty() {
            let args = self.request_args(ri);
            self.trace.span(module, "local", start_ns, local_ns, args);
            return;
        }
        let mut at = start_ns;
        for (kind, dt) in detail {
            let args = self.request_args(ri);
            self.trace.span(module, kind.label(), at, dt, args);
            at += dt;
        }
    }

    fn run(mut self) -> ServeOutcome {
        self.window_trajectory.push((0.0, self.window.window()));
        self.trace_counters(0.0);
        while let Some(entry) = self.events.pop() {
            let t = entry.t_ns;
            match entry.ev {
                Ev::Arrive(ri) => {
                    let tenant = self.requests[ri].tenant;
                    let eligible = match &mut self.buckets[tenant] {
                        Some(b) => b.reserve(t),
                        None => t,
                    };
                    self.requests[ri].eligible_ns = eligible;
                    if eligible > t {
                        self.throttled[tenant] += 1;
                    }
                    self.record(t, ServeEventKind::Arrive, ri, None);
                    if let Some(tracks) = &self.tracks {
                        let serve = tracks.serve;
                        let mut args = self.request_args(ri);
                        args.push(("throttle_ns", ArgValue::F64(eligible - t)));
                        self.trace.instant(serve, "arrive", t, args);
                    }
                    self.queues[tenant].push_back(ri);
                    self.trace_counters(t);
                    self.try_admit(t);
                }
                Ev::AdmitTick => {
                    if self.next_tick_ns == Some(t) {
                        self.next_tick_ns = None;
                    }
                    self.try_admit(t);
                }
                Ev::BusDone(ri, sp, idx) => {
                    let (shard, slice) = {
                        let d = &self.chains(ri)[sp];
                        (d.shard, d.slices[idx])
                    };
                    if idx == 0 {
                        self.record(t, ServeEventKind::Dispatched, ri, Some(shard));
                    }
                    if slice.local_ns > 0.0 {
                        let grant = self.shard_bus[shard].acquire(t, slice.local_ns);
                        self.push_event(grant.end_ns, Ev::LocalDone(ri, sp, idx));
                        self.trace_local(ri, sp, idx, grant.start_ns, slice.local_ns);
                    } else {
                        self.push_event(t, Ev::LocalDone(ri, sp, idx));
                    }
                }
                Ev::LocalDone(ri, sp, idx) => {
                    let len = self.chains(ri)[sp].slices.len();
                    if idx + 1 < len {
                        self.start_slice(t, ri, sp, idx + 1);
                    } else {
                        self.shard_done(t, ri, sp);
                    }
                }
                Ev::MergeDone(ri) => {
                    let p = self.progress[ri].take().expect("merging request has progress");
                    self.complete(t, ri, p);
                    self.in_flight -= 1;
                    self.trace_counters(t);
                    self.try_admit(t);
                }
            }
        }
        let makespan_ns = self
            .completions
            .iter()
            .map(|c| c.complete_ns)
            .chain(self.write_completions.iter().map(|c| c.complete_ns))
            .chain(self.drops.iter().map(|d| d.shed_ns))
            .fold(0.0, f64::max);
        let decisions = match self.window {
            WindowState::Aimd(ctl) => ctl.decisions().to_vec(),
            WindowState::Static(_) => Vec::new(),
        };
        ServeOutcome {
            completions: self.completions,
            executions: self.executions,
            write_completions: self.write_completions,
            drops: self.drops,
            timeline: self.timeline,
            window_trajectory: self.window_trajectory,
            decisions,
            submitted: self.submitted,
            throttled: self.throttled,
            makespan_ns,
            host_busy_ns: self.host.busy_ns(),
            shard_busy_ns: self.shard_bus.iter().map(SharedBus::busy_ns).collect(),
            lane_cell_writes: self.lane_cell_writes,
            lane_required_endurance: self.lane_required_endurance,
        }
    }
}

/// Serve every tenant's traffic through `cluster` under `cfg`.
///
/// Arrival draws, token buckets, fair sharing, shedding and the window
/// controller are all pure functions of `(cluster, tenants, cfg)` on
/// the simulated clock, so the outcome is bit-deterministic per seed.
/// Every completion's execution in [`ServeOutcome::executions`] is the
/// pre-resolved batch answer for its query — admission policies decide
/// *which* requests run and *when*, never *what* they answer.
///
/// # Errors
///
/// [`ServeError::InvalidTenant`] / [`ServeError::InvalidConfig`] for
/// malformed specs, [`ServeError::Sched`] for planner or shard
/// execution failures.
pub fn run_serve<E: StreamEngine>(
    cluster: &mut E,
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
) -> Result<ServeOutcome, ServeError> {
    let mut trace = TraceRecorder::disabled();
    run_serve_traced(cluster, tenants, cfg, &mut trace)
}

/// [`run_serve`] with a [`TraceRecorder`]: arrivals, admissions, sheds
/// and completions land on a `serve` track, bus grants on `host-bus`,
/// module-local windows on `module-<k>`, and the in-flight window on a
/// `controller` counter track. The recorder never changes the
/// simulation.
///
/// # Errors
///
/// Same as [`run_serve`].
pub fn run_serve_traced<E: StreamEngine>(
    cluster: &mut E,
    tenants: &[TenantSpec],
    cfg: &ServeConfig,
    trace: &mut TraceRecorder,
) -> Result<ServeOutcome, ServeError> {
    if tenants.is_empty() {
        return Err(ServeError::InvalidConfig("at least one tenant is required".into()));
    }
    for (i, t) in tenants.iter().enumerate() {
        t.validate()?;
        if tenants[..i].iter().any(|o| o.name == t.name) {
            return Err(ServeError::InvalidTenant(format!("duplicate tenant name {}", t.name)));
        }
    }
    let window = match &cfg.window {
        WindowPolicy::Static(w) => {
            if *w == 0 {
                return Err(ServeError::InvalidConfig("static window must be at least 1".into()));
            }
            WindowState::Static(*w)
        }
        WindowPolicy::Aimd(aimd) => WindowState::Aimd(AimdController::new(aimd.clone())?),
    };

    let want_detail = trace.is_enabled();

    // Apply every tenant's write mix to the cluster once, up front —
    // tenant order, then list order — compiling each mutation's lane
    // chains. Queries then resolve against the fully-ingested state:
    // the batch oracle for a write session is a batch run over that
    // same state, and write requests replay these chains' bus and lane
    // costs without re-mutating.
    let contention = cluster.contention();
    let mut write_demands = Vec::with_capacity(tenants.len());
    for t in tenants {
        let mut per_mutation = Vec::new();
        if let Some(w) = &t.writes {
            for m in &w.mutations {
                let applied = cluster.apply_mutation(m)?;
                let host = cluster.host_config().unwrap_or_default();
                per_mutation.push(compile_mutation_demand(
                    m.label(),
                    &applied,
                    &host,
                    contention,
                    want_detail,
                ));
            }
        }
        write_demands.push(per_mutation);
    }
    let has_writes = tenants.iter().any(|t| t.writes.is_some());

    // Resolve every tenant query's service demand once, up front —
    // fixing every possible answer before the first arrival.
    let mut demands = Vec::with_capacity(tenants.len());
    for t in tenants {
        let mut per_query = Vec::with_capacity(t.queries.len());
        for q in &t.queries {
            per_query.push(resolve_query_demand(cluster, q, want_detail)?);
        }
        demands.push(per_query);
    }

    let active_shards = cluster.active_shards();
    // Query-only sessions keep exactly one lane per active shard;
    // write traffic adds the cluster's auxiliary ingest lanes.
    let lanes = if has_writes { cluster.ingest_lanes().max(active_shards) } else { active_shards };
    let tracks = Tracks::new(trace, active_shards, lanes);
    let n = tenants.len();
    let mut server = Server {
        tenants,
        demands,
        write_demands,
        requests: Vec::new(),
        queues: vec![VecDeque::new(); n],
        buckets: tenants.iter().map(|t| t.rate_limit.as_ref().map(TokenBucket::new)).collect(),
        clients: Vec::with_capacity(n),
        served_work: vec![0.0; n],
        submitted: vec![0; n],
        throttled: vec![0; n],
        window,
        events: BinaryHeap::new(),
        seq: 0,
        host: SharedBus::new(),
        shard_bus: vec![SharedBus::new(); lanes],
        in_flight: 0,
        progress: Vec::new(),
        est_per_shard_ns: None,
        next_tick_ns: None,
        completions: Vec::new(),
        executions: Vec::new(),
        write_completions: Vec::new(),
        lane_cell_writes: vec![0; lanes],
        lane_required_endurance: vec![0.0; lanes],
        drops: Vec::new(),
        timeline: Vec::new(),
        window_trajectory: Vec::new(),
        trace,
        tracks,
    };

    // Seed every tenant's arrival stream.
    for (t, spec) in tenants.iter().enumerate() {
        let n_queries = spec.queries.len();
        let writes = spec.writes.as_ref();
        let mut client_states = Vec::new();
        match spec.process {
            ArrivalProcess::OpenPoisson { arrivals, mean_interarrival_ns } => {
                let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, t as u64, 0));
                let mut at = 0.0;
                for _ in 0..arrivals {
                    at += exp_gap_ns(&mut rng, mean_interarrival_ns);
                    let work = pick_work(&mut rng, n_queries, writes);
                    server.create_request(t, work, None, at);
                }
            }
            ArrivalProcess::Burst { arrivals, at_ns } => {
                let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, t as u64, 0));
                for _ in 0..arrivals {
                    let work = pick_work(&mut rng, n_queries, writes);
                    server.create_request(t, work, None, at_ns);
                }
            }
            ArrivalProcess::Closed { clients, queries_per_client, mean_think_ns } => {
                for c in 0..clients {
                    let mut st = ClientState {
                        rng: StdRng::seed_from_u64(stream_seed(cfg.seed, t as u64, 1 + c as u64)),
                        remaining: queries_per_client,
                    };
                    if st.remaining > 0 {
                        st.remaining -= 1;
                        let gap = exp_gap_ns(&mut st.rng, mean_think_ns);
                        let work = pick_work(&mut st.rng, n_queries, writes);
                        client_states.push(st);
                        server.create_request(t, work, Some(c), gap);
                    } else {
                        client_states.push(st);
                    }
                }
            }
        }
        server.clients.push(client_states);
    }

    Ok(server.run())
}
