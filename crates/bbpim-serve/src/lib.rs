//! # bbpim-serve — SLO-aware multi-tenant serving for the PIM cluster
//!
//! The streaming scheduler answers "what happens when queries arrive
//! over time"; this crate answers the production question on top of
//! it: what happens when *several tenants* share one PIM cluster, each
//! with its own traffic shape, rate limit, and latency promise — and
//! the operator must keep those promises under overload?
//!
//! * [`tenant::TenantSpec`] — a named workload: a query set, an
//!   arrival process (seeded open Poisson / burst, or closed-loop
//!   think-time clients whose offered load *reacts* to latency), an
//!   optional token-bucket [`tenant::RateLimit`], an [`tenant::SloSpec`]
//!   (p95 target, optional per-request deadline), an optional
//!   [`tenant::WriteMix`] (HTAP tenants issue Mutation API v2 writes as
//!   first-class requests), and a fair-share weight.
//! * [`serve::run_serve`] — one deterministic event loop multiplexing
//!   every tenant's stream: token buckets delay over-rate requests,
//!   weighted fair queueing picks the next admission (no tenant
//!   starves), deadline shedding drops requests whose predicted
//!   completion blows their deadline, and the global in-flight window
//!   is either static or closed-loop.
//! * [`controller::AimdController`] — the closed loop: every
//!   completion feeds its SLO-normalised latency; the windowed p95 of
//!   those ratios raises the window additively while promises hold and
//!   cuts it multiplicatively on violation, replacing the static
//!   `max_in_flight` guess.
//! * [`report::tenant_reports`] / [`obs::record_serve_metrics`] —
//!   per-tenant p50/p95/p99/p999, goodput, drop rate, SLO verdict, as
//!   structs and as `bbpim_tenant_*` registry series.
//!
//! Admission policies decide *which* requests run and *when* — never
//! *what* they answer: every admitted request's execution is resolved
//! from real shard runs up front and stays bit-identical to the batch
//! oracle. Write mixes apply their mutations to the cluster once at
//! session start — queries answer over the fully-ingested state — and
//! write requests replay the compiled write-phase chains on the shared
//! channel and their ingest lanes, feeding the controller and the
//! per-lane wear accounting ([`ServeOutcome::lane_cell_writes`]).
//!
//! ```
//! use bbpim_cluster::{ClusterEngine, Partitioner};
//! use bbpim_core::modes::EngineMode;
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_serve::{
//!     run_serve, tenant_reports, ArrivalProcess, ServeConfig, SloSpec, TenantSpec,
//! };
//! use bbpim_sim::SimConfig;
//!
//! let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
//! let mut cluster = ClusterEngine::new(
//!     SimConfig::default(), wide, EngineMode::OneXb, 4, Partitioner::range_by_attr("d_year"))?;
//! let tenants = vec![
//!     TenantSpec {
//!         name: "interactive".into(),
//!         queries: vec![queries::standard_query("Q1.1").unwrap()],
//!         process: ArrivalProcess::OpenPoisson { arrivals: 6, mean_interarrival_ns: 200_000.0 },
//!         writes: None,
//!         rate_limit: None,
//!         slo: SloSpec { p95_target_ns: 2_000_000.0, deadline_ns: None },
//!         weight: 4.0,
//!     },
//!     TenantSpec {
//!         name: "batch".into(),
//!         queries: vec![queries::standard_query("Q1.2").unwrap()],
//!         process: ArrivalProcess::Closed { clients: 2, queries_per_client: 2, mean_think_ns: 50_000.0 },
//!         writes: None,
//!         rate_limit: None,
//!         slo: SloSpec { p95_target_ns: 20_000_000.0, deadline_ns: None },
//!         weight: 1.0,
//!     },
//! ];
//! let out = run_serve(&mut cluster, &tenants, &ServeConfig::default())?;
//! assert_eq!(out.completions.len(), 10);
//! for r in tenant_reports(&tenants, &out) {
//!     println!("{:12} p95 {:8.3} ms  goodput {:6.0} q/s  slo_met {}",
//!         r.name, r.latency.p95_ns / 1e6, r.goodput_qps, r.slo_met);
//! }
//! # Ok::<(), bbpim_serve::ServeError>(())
//! ```

pub mod controller;
pub mod error;
pub mod obs;
pub mod report;
pub mod serve;
pub mod tenant;

pub use controller::{AimdConfig, AimdController, WindowDecision, WindowPolicy};
pub use error::ServeError;
pub use obs::record_serve_metrics;
pub use report::{tenant_reports, TenantReport};
pub use serve::{
    run_serve, run_serve_traced, ServeCompletion, ServeConfig, ServeDrop, ServeEventKind,
    ServeOutcome, ServeTimelineEvent, ServeWriteCompletion,
};
pub use tenant::{ArrivalProcess, RateLimit, SloSpec, TenantSpec, TokenBucket, WriteMix};

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use bbpim_cluster::{ClusterEngine, Partitioner};
    use bbpim_core::modes::EngineMode;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::config::SimConfig;
    use bbpim_trace::TraceRecorder;

    fn relation(rows: u64) -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_year", 3),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[(3 * i + 1) % 251, i % 11, i % 7]).unwrap();
        }
        rel
    }

    fn year_probe(y: u64) -> Query {
        Query::single(
            format!("y{y}"),
            vec![Atom::Eq { attr: "d_year".into(), value: y.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        )
    }

    fn broad() -> Query {
        Query::single(
            "broad",
            vec![Atom::Gt { attr: "lo_price".into(), value: 0u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Mul("lo_price".into(), "lo_disc".into()),
        )
    }

    fn cluster(shards: usize) -> ClusterEngine {
        ClusterEngine::new(
            SimConfig::small_for_tests(),
            relation(1400),
            EngineMode::OneXb,
            shards,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap()
    }

    fn tenant(name: &str, queries: Vec<Query>, process: ArrivalProcess) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            queries,
            process,
            writes: None,
            rate_limit: None,
            slo: SloSpec { p95_target_ns: 1e9, deadline_ns: None },
            weight: 1.0,
        }
    }

    #[test]
    fn served_answers_match_the_batch_oracle() {
        let tenants = vec![
            tenant(
                "probes",
                vec![year_probe(1), year_probe(4)],
                ArrivalProcess::OpenPoisson { arrivals: 8, mean_interarrival_ns: 40_000.0 },
            ),
            tenant(
                "scans",
                vec![broad()],
                ArrivalProcess::Closed {
                    clients: 2,
                    queries_per_client: 3,
                    mean_think_ns: 5_000.0,
                },
            ),
        ];
        let mut c = cluster(7);
        let out = run_serve(&mut c, &tenants, &ServeConfig::default()).unwrap();
        assert_eq!(out.completions.len(), 14);
        assert_eq!(out.executions.len(), 14);
        // Oracle: run each distinct query once, batch-style, on the
        // same cluster. Every served answer must match bit for bit.
        let oracle_queries = vec![year_probe(1), year_probe(4), broad()];
        let batch = c.run_batch(&oracle_queries).unwrap();
        let oracle: HashMap<&str, _> =
            oracle_queries.iter().map(|q| q.id.as_str()).zip(batch.executions.iter()).collect();
        for (completion, exec) in out.completions.iter().zip(&out.executions) {
            let want = oracle[completion.query_id.as_str()];
            assert_eq!(exec.groups, want.groups, "answer drifted for {}", completion.query_id);
            assert_eq!(exec.report, want.report);
        }
    }

    #[test]
    fn same_seed_same_session() {
        let tenants = vec![
            tenant(
                "open",
                vec![broad(), year_probe(2)],
                ArrivalProcess::OpenPoisson { arrivals: 10, mean_interarrival_ns: 20_000.0 },
            ),
            tenant(
                "closed",
                vec![year_probe(5)],
                ArrivalProcess::Closed {
                    clients: 3,
                    queries_per_client: 2,
                    mean_think_ns: 8_000.0,
                },
            ),
        ];
        let cfg = ServeConfig { seed: 42, window: WindowPolicy::Aimd(Default::default()) };
        let run = || {
            let mut c = cluster(5);
            run_serve(&mut c, &tenants, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.window_trajectory, b.window_trajectory);
        assert_eq!(a.decisions, b.decisions);
        // A different seed genuinely reshuffles arrivals.
        let mut c = cluster(5);
        let other = run_serve(&mut c, &tenants, &ServeConfig { seed: 43, ..cfg.clone() }).unwrap();
        assert_ne!(a.timeline, other.timeline);
    }

    #[test]
    fn weighted_fair_sharing_shields_the_light_tenant() {
        // Both tenants dump a burst at t = 0 through a 1-wide window.
        // The probes are tiny next to the broad scans: fair sharing by
        // weighted admitted work must slip probes between scans instead
        // of draining either queue strictly first.
        let tenants = vec![
            tenant("light", vec![year_probe(3)], ArrivalProcess::Burst { arrivals: 6, at_ns: 0.0 }),
            tenant("heavy", vec![broad()], ArrivalProcess::Burst { arrivals: 6, at_ns: 0.0 }),
        ];
        let cfg = ServeConfig { seed: 1, window: WindowPolicy::Static(1) };
        let mut c = cluster(7);
        let out = run_serve(&mut c, &tenants, &cfg).unwrap();
        assert_eq!(out.completions.len(), 12);
        let last_complete = |t: usize| {
            out.completions
                .iter()
                .filter(|c| c.tenant == t)
                .map(|c| c.complete_ns)
                .fold(0.0, f64::max)
        };
        assert!(
            last_complete(0) < last_complete(1),
            "the cheap tenant must clear long before the heavy one"
        );
        // Interleaving, not strict priority: some heavy work is
        // admitted before the light queue drains.
        let light_last_admit = out
            .completions
            .iter()
            .filter(|c| c.tenant == 0)
            .map(|c| c.admit_ns)
            .fold(0.0, f64::max);
        let heavy_admits_before = out
            .completions
            .iter()
            .filter(|c| c.tenant == 1 && c.admit_ns < light_last_admit)
            .count();
        assert!(heavy_admits_before >= 1, "fair sharing interleaves, it does not starve heavy");
        // Cranking the heavy tenant's weight buys it earlier service.
        let mut favoured = tenants.clone();
        favoured[1].weight = 50.0;
        let mut c = cluster(7);
        let out_favoured = run_serve(&mut c, &favoured, &cfg).unwrap();
        let first_heavy_admit = |o: &ServeOutcome| {
            o.completions
                .iter()
                .filter(|c| c.tenant == 1)
                .map(|c| c.admit_ns)
                .fold(f64::INFINITY, f64::min)
        };
        let heavy_done = |o: &ServeOutcome| {
            o.completions.iter().filter(|c| c.tenant == 1).map(|c| c.complete_ns).sum::<f64>()
        };
        assert!(first_heavy_admit(&out_favoured) <= first_heavy_admit(&out));
        assert!(heavy_done(&out_favoured) < heavy_done(&out), "weight must buy service share");
    }

    #[test]
    fn token_bucket_throttles_eligibility_not_answers() {
        // Four simultaneous arrivals against a 1-deep bucket refilling
        // every 1 ms: the first passes, the rest wait 1/2/3 ms.
        let mut t = tenant(
            "limited",
            vec![year_probe(2)],
            ArrivalProcess::Burst { arrivals: 4, at_ns: 0.0 },
        );
        t.rate_limit = Some(RateLimit { rate_per_s: 1_000.0, burst: 1.0 });
        let mut c = cluster(7);
        let out =
            run_serve(&mut c, &[t], &ServeConfig { seed: 0, window: WindowPolicy::Static(4) })
                .unwrap();
        assert_eq!(out.completions.len(), 4);
        assert_eq!(out.throttled, vec![3]);
        let mut eligibles: Vec<f64> = out.completions.iter().map(|c| c.eligible_ns).collect();
        eligibles.sort_by(f64::total_cmp);
        for (i, e) in eligibles.iter().enumerate() {
            let want = i as f64 * 1e6;
            assert!((e - want).abs() < 1.0, "eligibility {i} at {e}, want {want}");
        }
        for c in &out.completions {
            assert!(c.admit_ns >= c.eligible_ns, "admission never precedes eligibility");
            assert!(c.throttled() == (c.eligible_ns > c.arrive_ns));
        }
    }

    #[test]
    fn deadline_shedding_drops_doomed_requests_and_conserves_the_rest() {
        // Eight broad scans at once through a 1-wide window, each
        // promising a deadline barely above one scan's service time:
        // the backlog cannot make it, so once the first completion
        // teaches the predictor, admission sheds the doomed tail.
        let mut t =
            tenant("doomed", vec![broad()], ArrivalProcess::Burst { arrivals: 8, at_ns: 0.0 });
        let mut c = cluster(7);
        let probe = run_serve(
            &mut c,
            &[tenant("probe", vec![broad()], ArrivalProcess::Burst { arrivals: 1, at_ns: 0.0 })],
            &ServeConfig { seed: 0, window: WindowPolicy::Static(1) },
        )
        .unwrap();
        let service = probe.completions[0].service_ns();
        t.slo.deadline_ns = Some(service * 1.5);
        let mut c = cluster(7);
        let out =
            run_serve(&mut c, &[t], &ServeConfig { seed: 0, window: WindowPolicy::Static(1) })
                .unwrap();
        assert!(!out.drops.is_empty(), "the backlog tail must shed");
        assert_eq!(out.completions.len() + out.drops.len(), 8, "every request gets a fate");
        for d in &out.drops {
            assert!(
                d.shed_ns > d.deadline_ns || d.predicted_complete_ns > d.deadline_ns,
                "sheds only on predicted or actual deadline misses"
            );
        }
        // Shedding shows up in the report as drop rate and dropped
        // count, and completed + dropped covers every submission.
        let reports = tenant_reports(
            &[tenant("doomed", vec![broad()], ArrivalProcess::Burst { arrivals: 8, at_ns: 0.0 })],
            &out,
        );
        assert_eq!(reports[0].dropped, out.drops.len());
        assert_eq!(reports[0].latency.count_dropped, out.drops.len());
        assert!(reports[0].drop_rate > 0.0);
    }

    #[test]
    fn closed_loop_clients_wait_for_their_answer_before_the_next_request() {
        let tenants = vec![tenant(
            "closed",
            vec![broad(), year_probe(1)],
            ArrivalProcess::Closed { clients: 2, queries_per_client: 4, mean_think_ns: 10_000.0 },
        )];
        let mut c = cluster(5);
        let out = run_serve(&mut c, &tenants, &ServeConfig::default()).unwrap();
        assert_eq!(out.submitted, vec![8]);
        assert_eq!(out.completions.len(), 8);
        for client in 0..2 {
            let mut mine: Vec<&ServeCompletion> =
                out.completions.iter().filter(|c| c.client == Some(client)).collect();
            mine.sort_by(|a, b| a.arrive_ns.total_cmp(&b.arrive_ns));
            assert_eq!(mine.len(), 4);
            for pair in mine.windows(2) {
                assert!(
                    pair[1].arrive_ns >= pair[0].complete_ns,
                    "a closed client never overlaps its own requests"
                );
            }
        }
    }

    #[test]
    fn planner_only_requests_complete_at_admission_without_a_slot() {
        let impossible = Query::single(
            "never",
            vec![Atom::Gt { attr: "lo_price".into(), value: 254u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        );
        let tenants =
            vec![tenant("t", vec![impossible], ArrivalProcess::Burst { arrivals: 3, at_ns: 5.0 })];
        let mut c = cluster(4);
        let out =
            run_serve(&mut c, &tenants, &ServeConfig { seed: 0, window: WindowPolicy::Static(1) })
                .unwrap();
        assert_eq!(out.completions.len(), 3);
        for comp in &out.completions {
            assert_eq!(comp.complete_ns, 5.0, "no service, no queueing");
            assert_eq!(comp.shards_dispatched, 0);
        }
        assert!(out.executions.iter().all(|e| e.groups.is_empty()));
    }

    #[test]
    fn aimd_session_respects_bounds_and_reacts_to_overload() {
        let aimd = AimdConfig {
            initial_window: 2,
            min_window: 1,
            max_window: 8,
            sample_window: 4,
            ..Default::default()
        };
        // A tight p95 promise under a heavy burst: ratios blow past 1,
        // the controller must cut toward the floor and never leave the
        // configured range.
        let mut t =
            tenant("slammed", vec![broad()], ArrivalProcess::Burst { arrivals: 24, at_ns: 0.0 });
        t.slo.p95_target_ns = 1.0;
        let mut c = cluster(7);
        let out = run_serve(
            &mut c,
            &[t.clone()],
            &ServeConfig { seed: 0, window: WindowPolicy::Aimd(aimd.clone()) },
        )
        .unwrap();
        assert!(!out.decisions.is_empty());
        let (lo, hi) = out.window_bounds();
        assert!(lo >= 1 && hi <= 8, "window stayed in [{lo}, {hi}]");
        assert_eq!(out.final_window(), 1, "persistent violation pins the floor");
        // The same burst against a generous promise climbs instead.
        t.slo.p95_target_ns = 1e15;
        let mut c = cluster(7);
        let out =
            run_serve(&mut c, &[t], &ServeConfig { seed: 0, window: WindowPolicy::Aimd(aimd) })
                .unwrap();
        assert!(out.final_window() > 2, "a kept promise earns additive raises");
    }

    /// The step-load scenario the controller exists for: a steady
    /// probe tenant with a p95 promise, then a mid-session burst of
    /// broad scans. A static window sized for the pre-step load keeps
    /// over-admitting through the burst and blows the probe promise;
    /// the AIMD controller sees the violation samples, cuts, and
    /// converges back under the target.
    #[test]
    fn aimd_converges_under_step_load_where_the_static_mean_window_violates() {
        let probe_target_ns = 450_000.0;
        // The burst lands at 300 us; "converged" is judged on probes
        // arriving after 1.5 ms — several controller decision windows
        // past the step, while the burst backlog is still draining.
        let settled_ns = 1_500_000.0;
        let mk_tenants = || {
            let mut probe = tenant(
                "probe",
                vec![year_probe(1), year_probe(3)],
                ArrivalProcess::OpenPoisson { arrivals: 120, mean_interarrival_ns: 40_000.0 },
            );
            probe.slo.p95_target_ns = probe_target_ns;
            probe.weight = 2.0;
            let mut step = tenant(
                "step",
                vec![broad()],
                ArrivalProcess::Burst { arrivals: 100, at_ns: 300_000.0 },
            );
            step.slo.p95_target_ns = 1e15;
            vec![probe, step]
        };
        let settled_probe_p95 = |out: &ServeOutcome| {
            let mut l: Vec<f64> = out
                .completions
                .iter()
                .filter(|c| c.tenant == 0 && c.arrive_ns >= settled_ns)
                .map(|c| c.latency_ns())
                .collect();
            assert!(l.len() > 20, "enough settled probes to judge a p95");
            l.sort_by(f64::total_cmp);
            l[((l.len() as f64 * 0.95).ceil() as usize - 1).min(l.len() - 1)]
        };
        let aimd = AimdConfig {
            initial_window: 8,
            min_window: 1,
            max_window: 16,
            sample_window: 8,
            multiplicative_decrease: 0.25,
            ..Default::default()
        };
        let mut c = cluster(7);
        let out_aimd = run_serve(
            &mut c,
            &mk_tenants(),
            &ServeConfig { seed: 5, window: WindowPolicy::Aimd(aimd) },
        )
        .unwrap();
        let mut c = cluster(7);
        let out_static = run_serve(
            &mut c,
            &mk_tenants(),
            &ServeConfig { seed: 5, window: WindowPolicy::Static(16) },
        )
        .unwrap();
        let (aimd_p95, static_p95) = (settled_probe_p95(&out_aimd), settled_probe_p95(&out_static));
        eprintln!(
            "settled probe p95: aimd {:.1} us (window {:?}), static16 {:.1} us",
            aimd_p95 / 1e3,
            out_aimd.window_bounds(),
            static_p95 / 1e3,
        );
        let (lo, _) = out_aimd.window_bounds();
        assert!(lo < 8, "the controller cut below the pre-step window, got floor {lo}");
        assert!(
            aimd_p95 <= probe_target_ns,
            "AIMD converges: settled probe p95 {:.1} us within the {:.1} us promise",
            aimd_p95 / 1e3,
            probe_target_ns / 1e3
        );
        assert!(
            static_p95 > probe_target_ns,
            "the static window sized for the pre-step load keeps violating: {:.1} us",
            static_p95 / 1e3
        );
    }

    #[test]
    fn tracing_never_changes_the_session() {
        let tenants = vec![
            tenant(
                "a",
                vec![broad(), year_probe(2)],
                ArrivalProcess::OpenPoisson { arrivals: 6, mean_interarrival_ns: 30_000.0 },
            ),
            tenant(
                "b",
                vec![year_probe(6)],
                ArrivalProcess::Closed {
                    clients: 1,
                    queries_per_client: 3,
                    mean_think_ns: 5_000.0,
                },
            ),
        ];
        let cfg = ServeConfig::default();
        let mut c = cluster(7);
        let plain = run_serve(&mut c, &tenants, &cfg).unwrap();
        let mut c = cluster(7);
        let mut trace = TraceRecorder::enabled();
        let traced = run_serve_traced(&mut c, &tenants, &cfg, &mut trace).unwrap();
        assert_eq!(plain, traced, "the recorder observes, it must not perturb");
        let tracks = trace.tracks();
        for want in ["serve", "host-bus", "controller"] {
            assert!(tracks.iter().any(|t| t == want), "missing track {want}");
        }
    }

    fn disc_update(y: u64, v: u64) -> bbpim_core::mutation::Mutation {
        use bbpim_db::builder::col;
        bbpim_core::mutation::Mutation::update()
            .filter(col("d_year").eq(y))
            .set("lo_disc", v)
            .build_unchecked()
    }

    #[test]
    fn write_traffic_rides_the_bus_wears_cells_and_stays_deterministic() {
        let mut htap = tenant(
            "htap",
            vec![year_probe(2), broad()],
            ArrivalProcess::OpenPoisson { arrivals: 16, mean_interarrival_ns: 30_000.0 },
        );
        htap.writes = Some(WriteMix {
            mutations: vec![disc_update(2, 9), disc_update(5, 1)],
            write_frac: 0.4,
        });
        let cfg = ServeConfig { seed: 7, window: WindowPolicy::Aimd(Default::default()) };
        let run = || {
            let mut c = cluster(5);
            let out = run_serve(&mut c, &[htap.clone()], &cfg).unwrap();
            (out, c)
        };
        let (out, mut c) = run();
        // Every arrival gets a fate; the coin actually mixed the stream.
        assert_eq!(out.completions.len() + out.write_completions.len(), 16);
        assert!(!out.completions.is_empty(), "the mix keeps query traffic");
        assert!(!out.write_completions.is_empty(), "the mix generates writes");
        // Write chains occupied real service time and wore real cells.
        assert!(out.write_completions.iter().all(|w| w.service_ns() > 0.0));
        assert!(out.write_completions.iter().any(|w| w.records_updated > 0));
        assert!(out.lane_cell_writes.iter().any(|&w| w > 0), "UPDATEs wear cells");
        assert!(out.lane_required_endurance.iter().any(|&e| e > 0.0));
        // Queries answer over the post-ingest state: the batch oracle
        // on the same (already mutated) cluster matches bit for bit.
        let batch = c.run_batch(&[year_probe(2), broad()]).unwrap();
        let oracle: HashMap<&str, _> =
            ["y2", "broad"].iter().copied().zip(batch.executions.iter()).collect();
        for (completion, exec) in out.completions.iter().zip(&out.executions) {
            let want = oracle[completion.query_id.as_str()];
            assert_eq!(exec.groups, want.groups, "answer drifted for {}", completion.query_id);
        }
        // Same seed, same session — timeline, writes, wear, everything.
        let (again, _) = run();
        assert_eq!(out, again);
        // The tenant report folds writes into the latency promise.
        let reports = tenant_reports(&[htap], &out);
        assert_eq!(reports[0].writes_completed, out.write_completions.len());
        assert_eq!(reports[0].completed, 16);
    }

    #[test]
    fn aimd_hears_write_latencies() {
        // A pure writer slamming 16 UPDATEs against an impossible p95:
        // the controller must see the write latencies and cut to the
        // floor, exactly as it would for slow queries.
        let mut writer =
            tenant("writer", vec![], ArrivalProcess::Burst { arrivals: 16, at_ns: 0.0 });
        writer.writes = Some(WriteMix { mutations: vec![disc_update(3, 7)], write_frac: 1.0 });
        writer.slo.p95_target_ns = 1.0;
        let aimd = AimdConfig {
            initial_window: 4,
            min_window: 1,
            max_window: 8,
            sample_window: 4,
            ..Default::default()
        };
        let mut c = cluster(5);
        let out = run_serve(
            &mut c,
            &[writer],
            &ServeConfig { seed: 0, window: WindowPolicy::Aimd(aimd) },
        )
        .unwrap();
        assert_eq!(out.write_completions.len(), 16);
        assert!(out.completions.is_empty());
        assert!(!out.decisions.is_empty(), "write completions feed the controller");
        assert_eq!(out.final_window(), 1, "persistent write-latency violation pins the floor");
    }

    /// Pin the wear series names end to end: a serve session with write
    /// traffic must land on exactly the registry series the rest of the
    /// stack (bench gate, dashboards) reads.
    #[test]
    fn serve_metrics_pin_the_wear_series_names() {
        use bbpim_trace::MetricsRegistry;
        let mut htap = tenant(
            "htap",
            vec![year_probe(1)],
            ArrivalProcess::OpenPoisson { arrivals: 10, mean_interarrival_ns: 20_000.0 },
        );
        htap.writes = Some(WriteMix { mutations: vec![disc_update(1, 3)], write_frac: 0.5 });
        let mut c = cluster(4);
        let out = run_serve(&mut c, &[htap.clone()], &ServeConfig::default()).unwrap();
        assert!(!out.write_completions.is_empty());
        let mut reg = MetricsRegistry::new();
        record_serve_metrics(&mut reg, &[htap], &out, &[("run", "pin")]);
        // The exact strings are the contract.
        assert_eq!(obs::CELL_WRITES, "bbpim_cell_writes_total");
        assert_eq!(obs::REQUIRED_ENDURANCE, "bbpim_required_endurance_cycles");
        assert_eq!(obs::TENANT_WRITES, "bbpim_tenant_writes_total");
        let worn: Vec<usize> = out
            .lane_cell_writes
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(m, _)| m)
            .collect();
        assert!(!worn.is_empty());
        for m in worn {
            let module = m.to_string();
            let labels = [("run", "pin"), ("module", module.as_str())];
            assert_eq!(
                reg.counter("bbpim_cell_writes_total", &labels),
                Some(out.lane_cell_writes[m] as f64)
            );
            assert_eq!(
                reg.gauge("bbpim_required_endurance_cycles", &labels),
                Some(out.lane_required_endurance[m])
            );
        }
        assert_eq!(
            reg.counter("bbpim_tenant_writes_total", &[("run", "pin"), ("tenant", "htap")]),
            Some(out.write_completions.len() as f64)
        );
    }

    #[test]
    fn bad_sessions_are_rejected_up_front() {
        let mut c = cluster(2);
        let r = run_serve(&mut c, &[], &ServeConfig::default());
        assert!(matches!(r, Err(ServeError::InvalidConfig(_))));
        let t = tenant("dup", vec![broad()], ArrivalProcess::Burst { arrivals: 1, at_ns: 0.0 });
        let r = run_serve(&mut c, &[t.clone(), t.clone()], &ServeConfig::default());
        assert!(matches!(r, Err(ServeError::InvalidTenant(_))));
        let r = run_serve(&mut c, &[t], &ServeConfig { seed: 0, window: WindowPolicy::Static(0) });
        assert!(matches!(r, Err(ServeError::InvalidConfig(_))));
    }
}
