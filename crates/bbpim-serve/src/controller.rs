//! The AIMD in-flight-window controller.
//!
//! The streaming scheduler bounds load with a static `max_in_flight`
//! knob; picking it is guesswork — too wide and every in-flight query
//! time-slices the shared host channel (tail latency inflates with the
//! window), too narrow and modules idle. The controller closes the
//! loop instead: each completion contributes its **SLO-normalised**
//! latency (observed latency over the owning tenant's p95 target), and
//! every `sample_window` completions the controller compares the
//! windowed p95 of those ratios against [`AimdConfig::target`] —
//! additive raise while under it, multiplicative cut on violation.
//! Normalising by the per-tenant target makes one global window serve
//! mixed SLOs: a light tenant's tight promise and a heavy tenant's
//! loose one pull the same signal in commensurable units.
//!
//! Everything is a pure function of the completion sequence, so serve
//! sessions stay bit-deterministic per seed.

use bbpim_sched::report::percentile;

use crate::error::ServeError;

/// How the global in-flight window is set.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowPolicy {
    /// The legacy fixed bound (what `--inflight` used to pin).
    Static(usize),
    /// Closed-loop AIMD on the windowed SLO-normalised p95.
    Aimd(AimdConfig),
}

/// AIMD controller parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdConfig {
    /// Threshold on the windowed SLO-normalised p95 (observed p95
    /// latency / tenant p95 target): cut above, raise at or below.
    /// 1.0 means "track the SLO exactly"; below 1.0 leaves headroom.
    pub target: f64,
    /// Window at session start.
    pub initial_window: usize,
    /// Hard floor (≥ 1: the scheduler must always admit something).
    pub min_window: usize,
    /// Hard ceiling.
    pub max_window: usize,
    /// Additive raise per under-target decision.
    pub additive_increase: usize,
    /// Multiplicative cut factor per violation, in (0, 1).
    pub multiplicative_decrease: f64,
    /// Completions per decision (the p95 sample window).
    pub sample_window: usize,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            target: 1.0,
            initial_window: 4,
            min_window: 1,
            max_window: 64,
            additive_increase: 1,
            multiplicative_decrease: 0.5,
            sample_window: 8,
        }
    }
}

impl AimdConfig {
    /// Validate the parameters.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an empty window range, a
    /// decrease factor outside (0, 1), a non-positive target, a zero
    /// increase, or a zero sample window.
    pub fn validate(&self) -> Result<(), ServeError> {
        let fail = |m: String| Err(ServeError::InvalidConfig(m));
        if self.min_window == 0 {
            return fail("min_window must be at least 1".into());
        }
        if self.max_window < self.min_window {
            return fail(format!(
                "max_window {} below min_window {}",
                self.max_window, self.min_window
            ));
        }
        if self.initial_window < self.min_window || self.initial_window > self.max_window {
            return fail(format!(
                "initial_window {} outside [{}, {}]",
                self.initial_window, self.min_window, self.max_window
            ));
        }
        if !(self.target.is_finite() && self.target > 0.0) {
            return fail(format!("target must be positive, got {}", self.target));
        }
        if self.additive_increase == 0 {
            return fail("additive_increase must be at least 1".into());
        }
        if !(self.multiplicative_decrease > 0.0 && self.multiplicative_decrease < 1.0) {
            return fail(format!(
                "multiplicative_decrease must be in (0, 1), got {}",
                self.multiplicative_decrease
            ));
        }
        if self.sample_window == 0 {
            return fail("sample_window must be at least 1".into());
        }
        Ok(())
    }
}

/// One controller decision, for trajectory reports and traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// Simulated instant of the deciding completion.
    pub t_ns: f64,
    /// The windowed p95 of SLO-normalised latencies that decided.
    pub p95_ratio: f64,
    /// The window after the decision.
    pub window: usize,
}

/// The AIMD state machine: feed it SLO-normalised completion
/// latencies, read the window.
#[derive(Debug, Clone)]
pub struct AimdController {
    cfg: AimdConfig,
    window: usize,
    samples: Vec<f64>,
    decisions: Vec<WindowDecision>,
}

impl AimdController {
    /// Start at [`AimdConfig::initial_window`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] per [`AimdConfig::validate`].
    pub fn new(cfg: AimdConfig) -> Result<AimdController, ServeError> {
        cfg.validate()?;
        let window = cfg.initial_window;
        Ok(AimdController { cfg, window, samples: Vec::new(), decisions: Vec::new() })
    }

    /// The current in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The decision log so far.
    pub fn decisions(&self) -> &[WindowDecision] {
        &self.decisions
    }

    /// Feed one completion's SLO-normalised latency (latency over the
    /// owning tenant's p95 target) observed at `t_ns`. Returns the new
    /// window when this completion closed a sample window and forced a
    /// decision, `None` otherwise.
    pub fn on_completion(&mut self, t_ns: f64, latency_ratio: f64) -> Option<usize> {
        self.samples.push(latency_ratio);
        if self.samples.len() < self.cfg.sample_window {
            return None;
        }
        let mut sorted = std::mem::take(&mut self.samples);
        sorted.sort_by(f64::total_cmp);
        let p95_ratio = percentile(&sorted, 95.0);
        self.window = if p95_ratio > self.cfg.target {
            // Violation: multiplicative cut, floored.
            let cut = (self.window as f64 * self.cfg.multiplicative_decrease).floor() as usize;
            cut.max(self.cfg.min_window)
        } else {
            // Under target: additive raise, capped.
            (self.window + self.cfg.additive_increase).min(self.cfg.max_window)
        };
        self.decisions.push(WindowDecision { t_ns, p95_ratio, window: self.window });
        Some(self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(cfg: AimdConfig) -> AimdController {
        AimdController::new(cfg).unwrap()
    }

    #[test]
    fn config_validation_catches_each_knob() {
        assert!(AimdConfig::default().validate().is_ok());
        let bad = [
            AimdConfig { min_window: 0, ..Default::default() },
            AimdConfig { max_window: 2, initial_window: 4, ..Default::default() },
            AimdConfig { initial_window: 0, ..Default::default() },
            AimdConfig { target: 0.0, ..Default::default() },
            AimdConfig { target: f64::NAN, ..Default::default() },
            AimdConfig { additive_increase: 0, ..Default::default() },
            AimdConfig { multiplicative_decrease: 1.0, ..Default::default() },
            AimdConfig { multiplicative_decrease: 0.0, ..Default::default() },
            AimdConfig { sample_window: 0, ..Default::default() },
        ];
        for cfg in bad {
            assert!(
                matches!(cfg.validate(), Err(ServeError::InvalidConfig(_))),
                "should reject {cfg:?}"
            );
        }
    }

    #[test]
    fn raises_additively_under_target_and_cuts_multiplicatively_over() {
        let mut c = ctl(AimdConfig { sample_window: 2, initial_window: 8, ..Default::default() });
        // Two good samples: one decision, +1.
        assert_eq!(c.on_completion(1.0, 0.5), None);
        assert_eq!(c.on_completion(2.0, 0.5), Some(9));
        // Violation: 9 → floor(4.5) = 4.
        c.on_completion(3.0, 2.0);
        assert_eq!(c.on_completion(4.0, 2.0), Some(4));
        assert_eq!(c.decisions().len(), 2);
        assert_eq!(c.decisions()[1].window, 4);
        assert!(c.decisions()[1].p95_ratio > 1.0);
    }

    #[test]
    fn window_never_leaves_configured_bounds() {
        let cfg = AimdConfig {
            sample_window: 1,
            initial_window: 3,
            min_window: 1,
            max_window: 6,
            ..Default::default()
        };
        // Hammer violations far past the floor…
        let mut c = ctl(cfg.clone());
        for i in 0..20 {
            c.on_completion(i as f64, 100.0);
            assert!(c.window() >= 1, "window fell below 1 at step {i}");
        }
        assert_eq!(c.window(), 1);
        // …and successes far past the ceiling.
        let mut c = ctl(cfg);
        for i in 0..20 {
            c.on_completion(i as f64, 0.01);
            assert!(c.window() <= 6, "window rose above max at step {i}");
        }
        assert_eq!(c.window(), 6);
    }

    #[test]
    fn decision_uses_windowed_p95_not_mean() {
        // 19 fast + 1 slow in a 20-sample window: p95 (nearest rank
        // 19) is still fast → raise. Two slow: rank 19 is slow → cut.
        let cfg = AimdConfig { sample_window: 20, initial_window: 10, ..Default::default() };
        let mut c = ctl(cfg.clone());
        for i in 0..19 {
            c.on_completion(i as f64, 0.1);
        }
        assert_eq!(c.on_completion(19.0, 50.0), Some(11), "one outlier must not cut");
        let mut c = ctl(cfg);
        for i in 0..18 {
            c.on_completion(i as f64, 0.1);
        }
        c.on_completion(18.0, 50.0);
        assert_eq!(c.on_completion(19.0, 50.0), Some(5), "p95 violation cuts");
    }

    #[test]
    fn identical_sample_streams_yield_identical_trajectories() {
        let cfg = AimdConfig { sample_window: 3, ..Default::default() };
        let feed = |c: &mut AimdController| {
            let samples = [0.2, 0.9, 1.4, 2.0, 0.3, 0.1, 0.5, 1.8, 1.1, 0.6, 0.4, 0.2];
            for (i, s) in samples.iter().enumerate() {
                c.on_completion(i as f64 * 10.0, *s);
            }
        };
        let mut a = ctl(cfg.clone());
        let mut b = ctl(cfg);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.window(), b.window());
    }
}
