//! Per-tenant serving reports: latency percentiles, goodput, drops,
//! and the SLO verdict.

use bbpim_sched::report::LatencySummary;

use crate::serve::ServeOutcome;
use crate::tenant::TenantSpec;

/// One tenant's session summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Requests generated.
    pub submitted: usize,
    /// Requests completed (queries and writes).
    pub completed: usize,
    /// Write requests durably applied (a subset of `completed`).
    pub writes_completed: usize,
    /// Requests shed at admission.
    pub dropped: usize,
    /// Requests delayed by the tenant's token bucket.
    pub throttled: usize,
    /// Latency percentiles over the tenant's completions (its drop
    /// count rides in [`LatencySummary::count_dropped`]).
    pub latency: LatencySummary,
    /// Deadline-met completions per second of session makespan (all
    /// completions count when the tenant has no deadline).
    pub goodput_qps: f64,
    /// Shed requests over submitted requests.
    pub drop_rate: f64,
    /// The tenant's promised p95, nanoseconds.
    pub p95_target_ns: f64,
    /// The per-request deadline, if the SLO set one.
    pub deadline_ns: Option<f64>,
    /// Did the observed p95 stay within the promise? (False when
    /// nothing completed: a tenant starved out of every answer did
    /// not get its SLO.)
    pub slo_met: bool,
}

/// Summarise one serve session per tenant, in tenant order.
pub fn tenant_reports(tenants: &[TenantSpec], outcome: &ServeOutcome) -> Vec<TenantReport> {
    let makespan_s = outcome.makespan_ns / 1e9;
    tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            let mut latencies = Vec::new();
            let mut waits = Vec::new();
            let mut services = Vec::new();
            let mut in_time = 0usize;
            for c in outcome.completions.iter().filter(|c| c.tenant == t) {
                latencies.push(c.latency_ns());
                waits.push(c.wait_ns());
                services.push(c.service_ns());
                if c.met_deadline() {
                    in_time += 1;
                }
            }
            // Write completions count against the same latency promise
            // and goodput (writes carry no deadline to miss).
            let mut writes_completed = 0usize;
            for c in outcome.write_completions.iter().filter(|c| c.tenant == t) {
                latencies.push(c.latency_ns());
                waits.push(c.wait_ns());
                services.push(c.service_ns());
                in_time += 1;
                writes_completed += 1;
            }
            let dropped = outcome.drops.iter().filter(|d| d.tenant == t).count();
            let completed = latencies.len();
            let submitted = outcome.submitted[t];
            let latency = LatencySummary::from_parts(latencies, &waits, &services, dropped);
            TenantReport {
                name: spec.name.clone(),
                weight: spec.weight,
                submitted,
                completed,
                writes_completed,
                dropped,
                throttled: outcome.throttled[t],
                goodput_qps: if makespan_s > 0.0 { in_time as f64 / makespan_s } else { 0.0 },
                drop_rate: if submitted > 0 { dropped as f64 / submitted as f64 } else { 0.0 },
                p95_target_ns: spec.slo.p95_target_ns,
                deadline_ns: spec.slo.deadline_ns,
                slo_met: completed > 0 && latency.p95_ns <= spec.slo.p95_target_ns,
                latency,
            }
        })
        .collect()
}
