//! The two MonetDB-stand-in configurations: `mnt_join` and `mnt_reg`.
//!
//! Queries arrive in the same logical form the PIM engine consumes
//! (attribute names of the *wide* schema). `mnt_join` executes them
//! directly on the pre-joined relation. `mnt_reg` runs on the normalised
//! star schema: dimension predicates filter their dimension first,
//! producing dense-key bitmaps; the fact scan probes the bitmaps through
//! the foreign keys and fetches dimension group keys positionally (the
//! invisible-join plan a column store uses for star schemas — dimension
//! keys are dense, so the "hash" lookup is an array index).
//!
//! Latencies are wall-clock (`std::time::Instant`), measured around
//! execution only — plan resolution (the optimizer's job) is excluded,
//! matching the paper's "without SQL parsing and optimization".

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bbpim_db::plan::{AggFunc, Query, ResolvedAtom};
use bbpim_db::ssb::SsbDb;
use bbpim_db::stats::GroupedResult;
use bbpim_db::{DbError, Relation};

use crate::exec::{eval_expr, fold, merge, ExprCols};
use crate::selection::{refine, KeyBitmap};

/// Result of one baseline query.
#[derive(Debug, Clone)]
pub struct MonetResult {
    /// Grouped aggregates (empty-key entry for global aggregates).
    pub groups: GroupedResult,
    /// Wall-clock execution time.
    pub wall: Duration,
}

/// Which physical database the engine runs on.
enum PlanKind<'a> {
    Prejoined(&'a Relation),
    Star(&'a SsbDb),
}

/// The baseline engine.
pub struct MonetEngine<'a> {
    plan: PlanKind<'a>,
    threads: usize,
}

/// The four dimensions of the star schema, with their fact foreign key
/// and key base (date keys are 0-based day indices).
const DIMS: [(&str, &str, u64); 4] = [
    ("c_", "lo_custkey", 1),
    ("s_", "lo_suppkey", 1),
    ("p_", "lo_partkey", 1),
    ("d_", "lo_orderdate", 0),
];

impl<'a> MonetEngine<'a> {
    /// `mnt_join`: run on the pre-joined relation.
    pub fn prejoined(wide: &'a Relation, threads: usize) -> Self {
        MonetEngine { plan: PlanKind::Prejoined(wide), threads: threads.max(1) }
    }

    /// `mnt_reg`: run on the normalised star schema.
    pub fn star(db: &'a SsbDb, threads: usize) -> Self {
        MonetEngine { plan: PlanKind::Star(db), threads: threads.max(1) }
    }

    /// Label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self.plan {
            PlanKind::Prejoined(_) => "mnt_join",
            PlanKind::Star(_) => "mnt_reg",
        }
    }

    /// Execute a query.
    ///
    /// # Errors
    ///
    /// Resolution failures (unknown attributes/constants).
    pub fn run(&self, query: &Query) -> Result<MonetResult, DbError> {
        match self.plan {
            PlanKind::Prejoined(rel) => self.run_prejoined(rel, query),
            PlanKind::Star(db) => self.run_star(db, query),
        }
    }

    fn run_prejoined(&self, rel: &Relation, query: &Query) -> Result<MonetResult, DbError> {
        let atoms = query.resolve_filter(rel.schema())?;
        let key_cols: Vec<usize> =
            query.group_by.iter().map(|g| rel.schema().index_of(g)).collect::<Result<_, _>>()?;
        let expr = ExprCols::resolve(&query.agg_expr, rel)?;
        let func = query.agg_func;

        let start = Instant::now();
        let groups = scan_partitions(rel.len(), self.threads, func, |lo, hi| {
            let mut sel: Vec<u32> = (lo as u32..hi as u32).collect();
            for atom in &atoms {
                sel = refine(rel.column(atom.attr_index()), atom, &sel);
                if sel.is_empty() {
                    break;
                }
            }
            let mut table: HashMap<Vec<u64>, u64> = HashMap::new();
            for &row in &sel {
                let row = row as usize;
                let key: Vec<u64> = key_cols.iter().map(|&c| rel.value(row, c)).collect();
                fold(&mut table, key, eval_expr(rel, &expr, row), func);
            }
            table
        });
        let wall = start.elapsed();
        Ok(MonetResult { groups, wall })
    }

    fn run_star(&self, db: &'a SsbDb, query: &Query) -> Result<MonetResult, DbError> {
        let fact = &db.lineorder;

        // Split atoms: fact-side stay on the scan; dimension-side filter
        // their dimension into a key bitmap.
        let mut fact_atoms: Vec<ResolvedAtom> = Vec::new();
        let mut dim_atoms: Vec<Vec<ResolvedAtom>> = vec![Vec::new(); 4];
        for atom in &query.filter {
            match dim_index(atom.attr()) {
                None => fact_atoms.push(atom.resolve(fact.schema())?),
                Some(d) => dim_atoms[d].push(atom.resolve(dim_relation(db, d).schema())?),
            }
        }

        // Group-key sources: fact column or positional dimension fetch.
        enum KeySource {
            Fact(usize),
            Dim { dim: usize, col: usize, fk_col: usize, base: u64 },
        }
        let mut key_sources = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            match dim_index(g) {
                None => key_sources.push(KeySource::Fact(fact.schema().index_of(g)?)),
                Some(d) => key_sources.push(KeySource::Dim {
                    dim: d,
                    col: dim_relation(db, d).schema().index_of(g)?,
                    fk_col: fact.schema().index_of(DIMS[d].1)?,
                    base: DIMS[d].2,
                }),
            }
        }
        let expr = ExprCols::resolve(&query.agg_expr, fact)?;
        let func = query.agg_func;

        let start = Instant::now();

        // Dimension phase: filter dimensions that carry predicates.
        let mut bitmaps: Vec<Option<KeyBitmap>> = vec![None; 4];
        let mut probe_cols: Vec<Option<usize>> = vec![None; 4];
        for d in 0..4 {
            if dim_atoms[d].is_empty() {
                continue;
            }
            let dim = dim_relation(db, d);
            let sel = crate::exec::filter(dim, &dim_atoms[d]);
            let key_col_idx = dim_key_index(dim)?;
            bitmaps[d] = Some(KeyBitmap::from_selection(
                dim.column(key_col_idx),
                &sel,
                dim.len(),
                DIMS[d].2,
            ));
            probe_cols[d] = Some(fact.schema().index_of(DIMS[d].1)?);
        }

        // Fact scan.
        let groups = scan_partitions(fact.len(), self.threads, func, |lo, hi| {
            let mut sel: Vec<u32> = (lo as u32..hi as u32).collect();
            for atom in &fact_atoms {
                sel = refine(fact.column(atom.attr_index()), atom, &sel);
                if sel.is_empty() {
                    break;
                }
            }
            // probe the dimension bitmaps
            for d in 0..4 {
                if let (Some(bm), Some(fk_col)) = (&bitmaps[d], probe_cols[d]) {
                    let col = fact.column(fk_col);
                    sel.retain(|&row| bm.contains(col.get(row as usize)));
                }
            }
            let mut table: HashMap<Vec<u64>, u64> = HashMap::new();
            for &row in &sel {
                let row = row as usize;
                let key: Vec<u64> = key_sources
                    .iter()
                    .map(|src| match src {
                        KeySource::Fact(c) => fact.value(row, *c),
                        KeySource::Dim { dim, col, fk_col, base } => {
                            let fk = fact.value(row, *fk_col);
                            dim_relation(db, *dim).value((fk - base) as usize, *col)
                        }
                    })
                    .collect();
                fold(&mut table, key, eval_expr(fact, &expr, row), func);
            }
            table
        });
        let wall = start.elapsed();
        Ok(MonetResult { groups, wall })
    }
}

impl std::fmt::Debug for MonetEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonetEngine")
            .field("plan", &self.label())
            .field("threads", &self.threads)
            .finish()
    }
}

/// Which dimension an attribute belongs to (None = fact).
fn dim_index(attr: &str) -> Option<usize> {
    if attr.starts_with("lo_") {
        return None;
    }
    DIMS.iter().position(|(p, _, _)| attr.starts_with(p))
}

fn dim_relation(db: &SsbDb, d: usize) -> &Relation {
    match d {
        0 => &db.customer,
        1 => &db.supplier,
        2 => &db.part,
        3 => &db.date,
        _ => unreachable!("only four dimensions"),
    }
}

fn dim_key_index(dim: &Relation) -> Result<usize, DbError> {
    for key in ["c_custkey", "s_suppkey", "p_partkey", "d_datekey"] {
        if let Ok(idx) = dim.schema().index_of(key) {
            return Ok(idx);
        }
    }
    Err(DbError::InvalidQuery(format!(
        "relation `{}` has no recognised dimension key",
        dim.schema().name
    )))
}

/// Run `work(lo, hi)` over `threads` row partitions and merge the
/// thread-local tables with the query's aggregate function (this is the
/// engine's parallel scan driver).
fn scan_partitions(
    len: usize,
    threads: usize,
    func: AggFunc,
    work: impl Fn(usize, usize) -> HashMap<Vec<u64>, u64> + Sync,
) -> GroupedResult {
    let mut out = GroupedResult::new();
    if len == 0 {
        return out;
    }
    let threads = threads.min(len).max(1);
    let chunk = len.div_ceil(threads);
    let tables: Vec<HashMap<Vec<u64>, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                let work = &work;
                scope.spawn(move || work(lo, hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });
    for table in tables {
        merge(&mut out, table, func);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::{AggExpr, Atom};
    use bbpim_db::ssb::{queries, SsbParams};
    use bbpim_db::stats;

    fn db() -> SsbDb {
        SsbDb::generate(&SsbParams::tiny_for_tests())
    }

    #[test]
    fn both_modes_match_oracle_on_all_13_queries() {
        let db = db();
        let wide = db.prejoin();
        let join_engine = MonetEngine::prejoined(&wide, 2);
        let star_engine = MonetEngine::star(&db, 2);
        for q in queries::standard_queries() {
            let expected = stats::run_oracle(&q, &wide).unwrap();
            let a = join_engine.run(&q).unwrap();
            let b = star_engine.run(&q).unwrap();
            assert_eq!(a.groups, expected, "mnt_join {}", q.id);
            assert_eq!(b.groups, expected, "mnt_reg {}", q.id);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = db();
        let wide = db.prejoin();
        let q = queries::standard_query("Q3.1").unwrap();
        let r1 = MonetEngine::prejoined(&wide, 1).run(&q).unwrap();
        let r8 = MonetEngine::prejoined(&wide, 8).run(&q).unwrap();
        assert_eq!(r1.groups, r8.groups);
        let s1 = MonetEngine::star(&db, 1).run(&q).unwrap();
        let s8 = MonetEngine::star(&db, 8).run(&q).unwrap();
        assert_eq!(s1.groups, s8.groups);
    }

    #[test]
    fn min_max_queries_merge_correctly_across_threads() {
        let db = db();
        let wide = db.prejoin();
        for func in [AggFunc::Min, AggFunc::Max] {
            let q = Query {
                id: "t".into(),
                filter: vec![Atom::Eq { attr: "c_region".into(), value: "ASIA".into() }],
                group_by: vec!["d_year".into()],
                agg_func: func,
                agg_expr: AggExpr::Attr("lo_revenue".into()),
            };
            let expected = stats::run_oracle(&q, &wide).unwrap();
            assert_eq!(MonetEngine::prejoined(&wide, 4).run(&q).unwrap().groups, expected);
            assert_eq!(MonetEngine::star(&db, 4).run(&q).unwrap().groups, expected);
        }
    }

    #[test]
    fn labels() {
        let db = db();
        let wide = db.prejoin();
        assert_eq!(MonetEngine::prejoined(&wide, 1).label(), "mnt_join");
        assert_eq!(MonetEngine::star(&db, 1).label(), "mnt_reg");
    }

    #[test]
    fn wall_clock_is_positive() {
        let db = db();
        let wide = db.prejoin();
        let q = queries::standard_query("Q1.1").unwrap();
        let r = MonetEngine::prejoined(&wide, 2).run(&q).unwrap();
        assert!(r.wall.as_nanos() > 0);
    }

    #[test]
    fn empty_relation_yields_empty_groups() {
        let db = db();
        let wide = db.prejoin();
        let q = Query {
            id: "t".into(),
            filter: vec![Atom::Gt { attr: "lo_quantity".into(), value: 63u64.into() }],
            group_by: vec!["d_year".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("lo_revenue".into()),
        };
        assert!(MonetEngine::prejoined(&wide, 2).run(&q).unwrap().groups.is_empty());
        assert!(MonetEngine::star(&db, 2).run(&q).unwrap().groups.is_empty());
    }
}
