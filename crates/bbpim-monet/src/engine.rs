//! The two MonetDB-stand-in configurations: `mnt_join` and `mnt_reg`.
//!
//! Queries arrive in the same logical form the PIM engine consumes
//! (attribute names of the *wide* schema) — including the v2 surface:
//! multi-aggregate SELECT lists and `AND`/`OR` filter trees. `mnt_join`
//! executes them directly on the pre-joined relation. `mnt_reg` runs on
//! the normalised star schema: per DNF disjunct, dimension predicates
//! filter their dimension first, producing dense-key bitmaps; the fact
//! scan probes the bitmaps through the foreign keys, the disjunct
//! selections are unioned, and dimension group keys are fetched
//! positionally (the invisible-join plan a column store uses for star
//! schemas — dimension keys are dense, so the "hash" lookup is an array
//! index).
//!
//! Latencies are wall-clock (`std::time::Instant`), measured around
//! execution only — plan resolution (the optimizer's job) is excluded,
//! matching the paper's "without SQL parsing and optimization".

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bbpim_db::plan::{PhysFunc, Query, ResolvedAtom};
use bbpim_db::ssb::SsbDb;
use bbpim_db::stats::{GroupedResult, MultiGrouped};
use bbpim_db::{DbError, Relation};

use crate::exec::{fold_row, merge_table, refine_conj, union_selections, ResolvedAggs};
use crate::selection::{KeyBitmap, SelectionVector};

/// Result of one baseline query.
#[derive(Debug, Clone)]
pub struct MonetResult {
    /// Grouped multi-column aggregates (empty-key entry for global
    /// aggregates), one value per SELECT item in SELECT order.
    pub groups: MultiGrouped,
    /// Wall-clock execution time.
    pub wall: Duration,
}

/// Which physical database the engine runs on.
enum PlanKind<'a> {
    Prejoined(&'a Relation),
    Star(&'a SsbDb),
}

/// The baseline engine.
pub struct MonetEngine<'a> {
    plan: PlanKind<'a>,
    threads: usize,
}

/// The four dimensions of the star schema, with their fact foreign key
/// and key base (date keys are 0-based day indices).
const DIMS: [(&str, &str, u64); 4] = [
    ("c_", "lo_custkey", 1),
    ("s_", "lo_suppkey", 1),
    ("p_", "lo_partkey", 1),
    ("d_", "lo_orderdate", 0),
];

impl<'a> MonetEngine<'a> {
    /// `mnt_join`: run on the pre-joined relation.
    pub fn prejoined(wide: &'a Relation, threads: usize) -> Self {
        MonetEngine { plan: PlanKind::Prejoined(wide), threads: threads.max(1) }
    }

    /// `mnt_reg`: run on the normalised star schema.
    pub fn star(db: &'a SsbDb, threads: usize) -> Self {
        MonetEngine { plan: PlanKind::Star(db), threads: threads.max(1) }
    }

    /// Label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self.plan {
            PlanKind::Prejoined(_) => "mnt_join",
            PlanKind::Star(_) => "mnt_reg",
        }
    }

    /// Execute a query.
    ///
    /// # Errors
    ///
    /// Resolution failures (unknown attributes/constants).
    pub fn run(&self, query: &Query) -> Result<MonetResult, DbError> {
        match self.plan {
            PlanKind::Prejoined(rel) => self.run_prejoined(rel, query),
            PlanKind::Star(db) => self.run_star(db, query),
        }
    }

    fn run_prejoined(&self, rel: &Relation, query: &Query) -> Result<MonetResult, DbError> {
        let dnf = query.resolve_filter(rel.schema())?;
        let plan = query.physical_plan()?;
        let key_cols: Vec<usize> =
            query.group_by.iter().map(|g| rel.schema().index_of(g)).collect::<Result<_, _>>()?;
        let aggs = ResolvedAggs::resolve(&plan.aggs, rel)?;

        let start = Instant::now();
        let per_agg = scan_partitions(rel.len(), self.threads, &aggs.funcs, |lo, hi| {
            let base: SelectionVector = (lo as u32..hi as u32).collect();
            let sel =
                union_selections(dnf.iter().map(|conj| refine_conj(rel, conj, &base)).collect());
            let mut table: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
            for &row in &sel {
                let row = row as usize;
                let key: Vec<u64> = key_cols.iter().map(|&c| rel.value(row, c)).collect();
                fold_row(&mut table, key, aggs.row_values(rel, row), &aggs.funcs);
            }
            table
        });
        let groups = plan.finalize(&per_agg);
        let wall = start.elapsed();
        Ok(MonetResult { groups, wall })
    }

    fn run_star(&self, db: &'a SsbDb, query: &Query) -> Result<MonetResult, DbError> {
        let fact = &db.lineorder;
        let plan = query.physical_plan()?;
        let dnf = query.filter.dnf();

        /// One DNF disjunct's star plan: fact-side atoms stay on the
        /// scan; each dimension's atoms collapse into a key bitmap.
        struct DisjunctPlan {
            fact_atoms: Vec<ResolvedAtom>,
            bitmaps: Vec<Option<KeyBitmap>>,
            probe_cols: Vec<Option<usize>>,
        }

        let mut disjuncts: Vec<DisjunctPlan> = Vec::with_capacity(dnf.len());
        for conj in &dnf {
            let mut fact_atoms: Vec<ResolvedAtom> = Vec::new();
            let mut dim_atoms: Vec<Vec<ResolvedAtom>> = vec![Vec::new(); 4];
            for atom in conj {
                match dim_index(atom.attr()) {
                    None => fact_atoms.push(atom.resolve(fact.schema())?),
                    Some(d) => dim_atoms[d].push(atom.resolve(dim_relation(db, d).schema())?),
                }
            }
            let mut bitmaps: Vec<Option<KeyBitmap>> = vec![None; 4];
            let mut probe_cols: Vec<Option<usize>> = vec![None; 4];
            for d in 0..4 {
                if dim_atoms[d].is_empty() {
                    continue;
                }
                let dim = dim_relation(db, d);
                let sel = crate::exec::filter(dim, &dim_atoms[d]);
                let key_col_idx = dim_key_index(dim)?;
                bitmaps[d] = Some(KeyBitmap::from_selection(
                    dim.column(key_col_idx),
                    &sel,
                    dim.len(),
                    DIMS[d].2,
                ));
                probe_cols[d] = Some(fact.schema().index_of(DIMS[d].1)?);
            }
            disjuncts.push(DisjunctPlan { fact_atoms, bitmaps, probe_cols });
        }

        // Group-key sources: fact column or positional dimension fetch.
        enum KeySource {
            Fact(usize),
            Dim { dim: usize, col: usize, fk_col: usize, base: u64 },
        }
        let mut key_sources = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            match dim_index(g) {
                None => key_sources.push(KeySource::Fact(fact.schema().index_of(g)?)),
                Some(d) => key_sources.push(KeySource::Dim {
                    dim: d,
                    col: dim_relation(db, d).schema().index_of(g)?,
                    fk_col: fact.schema().index_of(DIMS[d].1)?,
                    base: DIMS[d].2,
                }),
            }
        }
        let aggs = ResolvedAggs::resolve(&plan.aggs, fact)?;

        let start = Instant::now();

        // Fact scan: per disjunct refine + probe, union, then fold.
        let per_agg = scan_partitions(fact.len(), self.threads, &aggs.funcs, |lo, hi| {
            let base: SelectionVector = (lo as u32..hi as u32).collect();
            let sel = union_selections(
                disjuncts
                    .iter()
                    .map(|d| {
                        let mut sel = refine_conj(fact, &d.fact_atoms, &base);
                        for dim in 0..4 {
                            if let (Some(bm), Some(fk_col)) = (&d.bitmaps[dim], d.probe_cols[dim]) {
                                let col = fact.column(fk_col);
                                sel.retain(|&row| bm.contains(col.get(row as usize)));
                            }
                        }
                        sel
                    })
                    .collect(),
            );
            let mut table: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
            for &row in &sel {
                let row = row as usize;
                let key: Vec<u64> = key_sources
                    .iter()
                    .map(|src| match src {
                        KeySource::Fact(c) => fact.value(row, *c),
                        KeySource::Dim { dim, col, fk_col, base } => {
                            let fk = fact.value(row, *fk_col);
                            dim_relation(db, *dim).value((fk - base) as usize, *col)
                        }
                    })
                    .collect();
                fold_row(&mut table, key, aggs.row_values(fact, row), &aggs.funcs);
            }
            table
        });
        let groups = plan.finalize(&per_agg);
        let wall = start.elapsed();
        Ok(MonetResult { groups, wall })
    }
}

impl std::fmt::Debug for MonetEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonetEngine")
            .field("plan", &self.label())
            .field("threads", &self.threads)
            .finish()
    }
}

/// Which dimension an attribute belongs to (None = fact).
fn dim_index(attr: &str) -> Option<usize> {
    if attr.starts_with("lo_") {
        return None;
    }
    DIMS.iter().position(|(p, _, _)| attr.starts_with(p))
}

fn dim_relation(db: &SsbDb, d: usize) -> &Relation {
    match d {
        0 => &db.customer,
        1 => &db.supplier,
        2 => &db.part,
        3 => &db.date,
        _ => unreachable!("only four dimensions"),
    }
}

fn dim_key_index(dim: &Relation) -> Result<usize, DbError> {
    for key in ["c_custkey", "s_suppkey", "p_partkey", "d_datekey"] {
        if let Ok(idx) = dim.schema().index_of(key) {
            return Ok(idx);
        }
    }
    Err(DbError::InvalidQuery(format!(
        "relation `{}` has no recognised dimension key",
        dim.schema().name
    )))
}

/// Run `work(lo, hi)` over `threads` row partitions and merge the
/// thread-local multi-column tables per physical aggregate (this is the
/// engine's parallel scan driver).
fn scan_partitions(
    len: usize,
    threads: usize,
    funcs: &[PhysFunc],
    work: impl Fn(usize, usize) -> HashMap<Vec<u64>, Vec<u64>> + Sync,
) -> Vec<GroupedResult> {
    let mut per_agg = vec![GroupedResult::new(); funcs.len()];
    if len == 0 {
        return per_agg;
    }
    let threads = threads.min(len).max(1);
    let chunk = len.div_ceil(threads);
    let tables: Vec<HashMap<Vec<u64>, Vec<u64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                let work = &work;
                scope.spawn(move || work(lo, hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });
    for table in tables {
        merge_table(&mut per_agg, table, funcs);
    }
    per_agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, SelectItem};
    use bbpim_db::ssb::{queries, SsbParams};
    use bbpim_db::stats;

    fn db() -> SsbDb {
        SsbDb::generate(&SsbParams::tiny_for_tests())
    }

    #[test]
    fn both_modes_match_oracle_on_all_13_queries() {
        let db = db();
        let wide = db.prejoin();
        let join_engine = MonetEngine::prejoined(&wide, 2);
        let star_engine = MonetEngine::star(&db, 2);
        for q in queries::standard_queries() {
            let expected = stats::run_oracle(&q, &wide).unwrap();
            let a = join_engine.run(&q).unwrap();
            let b = star_engine.run(&q).unwrap();
            assert_eq!(a.groups, expected, "mnt_join {}", q.id);
            assert_eq!(b.groups, expected, "mnt_reg {}", q.id);
        }
    }

    #[test]
    fn combined_variants_match_oracle_in_both_modes() {
        let db = db();
        let wide = db.prejoin();
        let join_engine = MonetEngine::prejoined(&wide, 2);
        let star_engine = MonetEngine::star(&db, 2);
        for q in queries::combined_queries() {
            let expected = stats::run_oracle(&q, &wide).unwrap();
            assert_eq!(join_engine.run(&q).unwrap().groups, expected, "mnt_join {}", q.id);
            assert_eq!(star_engine.run(&q).unwrap().groups, expected, "mnt_reg {}", q.id);
        }
    }

    #[test]
    fn disjunction_across_dimensions_matches_oracle() {
        // an OR spanning two different dimensions forces per-disjunct
        // bitmaps in the star plan
        let db = db();
        let wide = db.prejoin();
        let q = Query::select([
            SelectItem::sum("rev", AggExpr::attr("lo_revenue")),
            SelectItem::count("n"),
        ])
        .id("or-dims")
        .filter(col("c_region").eq("ASIA").or(col("s_region").eq("AMERICA")))
        .group_by(["d_year"])
        .build(wide.schema())
        .unwrap();
        let expected = stats::run_oracle(&q, &wide).unwrap();
        assert_eq!(MonetEngine::prejoined(&wide, 3).run(&q).unwrap().groups, expected);
        assert_eq!(MonetEngine::star(&db, 3).run(&q).unwrap().groups, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = db();
        let wide = db.prejoin();
        let q = queries::standard_query("Q3.1").unwrap();
        let r1 = MonetEngine::prejoined(&wide, 1).run(&q).unwrap();
        let r8 = MonetEngine::prejoined(&wide, 8).run(&q).unwrap();
        assert_eq!(r1.groups, r8.groups);
        let s1 = MonetEngine::star(&db, 1).run(&q).unwrap();
        let s8 = MonetEngine::star(&db, 8).run(&q).unwrap();
        assert_eq!(s1.groups, s8.groups);
    }

    #[test]
    fn min_max_queries_merge_correctly_across_threads() {
        let db = db();
        let wide = db.prejoin();
        for func in [AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::Count] {
            let q = Query::single(
                "t",
                vec![Atom::Eq { attr: "c_region".into(), value: "ASIA".into() }],
                vec!["d_year".into()],
                func,
                AggExpr::attr("lo_revenue"),
            );
            let expected = stats::run_oracle(&q, &wide).unwrap();
            assert_eq!(MonetEngine::prejoined(&wide, 4).run(&q).unwrap().groups, expected);
            assert_eq!(MonetEngine::star(&db, 4).run(&q).unwrap().groups, expected);
        }
    }

    #[test]
    fn labels() {
        let db = db();
        let wide = db.prejoin();
        assert_eq!(MonetEngine::prejoined(&wide, 1).label(), "mnt_join");
        assert_eq!(MonetEngine::star(&db, 1).label(), "mnt_reg");
    }

    #[test]
    fn wall_clock_is_positive() {
        let db = db();
        let wide = db.prejoin();
        let q = queries::standard_query("Q1.1").unwrap();
        let r = MonetEngine::prejoined(&wide, 2).run(&q).unwrap();
        assert!(r.wall.as_nanos() > 0);
    }

    #[test]
    fn empty_relation_yields_empty_groups() {
        let db = db();
        let wide = db.prejoin();
        let q = Query::single(
            "t",
            vec![Atom::Gt { attr: "lo_quantity".into(), value: 63u64.into() }],
            vec!["d_year".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_revenue"),
        );
        assert!(MonetEngine::prejoined(&wide, 2).run(&q).unwrap().groups.is_empty());
        assert!(MonetEngine::star(&db, 2).run(&q).unwrap().groups.is_empty());
    }
}
