//! Physical operators: filter, positional star join, hash GROUP-BY.

use std::collections::HashMap;

use bbpim_db::plan::{AggExpr, AggFunc, Query, ResolvedAtom};
use bbpim_db::stats::GroupedResult;
use bbpim_db::{DbError, Relation};

use crate::selection::{refine, select_all, SelectionVector};

/// Filter a relation with resolved atoms, producing a selection vector.
pub fn filter(rel: &Relation, atoms: &[ResolvedAtom]) -> SelectionVector {
    let mut sel = select_all(rel.len());
    for atom in atoms {
        sel = refine(rel.column(atom.attr_index()), atom, &sel);
        if sel.is_empty() {
            break;
        }
    }
    sel
}

/// Fold one value into a hash-aggregation table.
#[inline]
pub fn fold(table: &mut HashMap<Vec<u64>, u64>, key: Vec<u64>, v: u64, func: AggFunc) {
    table
        .entry(key)
        .and_modify(|acc| {
            *acc = match func {
                AggFunc::Sum => acc.wrapping_add(v),
                AggFunc::Min => (*acc).min(v),
                AggFunc::Max => (*acc).max(v),
            }
        })
        .or_insert(v);
}

/// Merge a thread-local table into the global result.
pub fn merge(into: &mut GroupedResult, from: HashMap<Vec<u64>, u64>, func: AggFunc) {
    for (key, v) in from {
        into.entry(key)
            .and_modify(|acc| {
                *acc = match func {
                    AggFunc::Sum => acc.wrapping_add(v),
                    AggFunc::Min => (*acc).min(v),
                    AggFunc::Max => (*acc).max(v),
                }
            })
            .or_insert(v);
    }
}

/// Evaluate an aggregate expression for one row (columns pre-resolved).
#[inline]
pub fn eval_expr(rel: &Relation, expr_cols: &ExprCols, row: usize) -> u64 {
    match expr_cols {
        ExprCols::Attr(a) => rel.value(row, *a),
        ExprCols::Mul(a, b) => rel.value(row, *a).wrapping_mul(rel.value(row, *b)),
        ExprCols::Sub(a, b) => rel.value(row, *a).wrapping_sub(rel.value(row, *b)),
    }
}

/// Column-index-resolved aggregate expression.
#[derive(Debug, Clone, Copy)]
pub enum ExprCols {
    /// Single attribute.
    Attr(usize),
    /// Product.
    Mul(usize, usize),
    /// Difference.
    Sub(usize, usize),
}

impl ExprCols {
    /// Resolve names against a schema.
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn resolve(expr: &AggExpr, rel: &Relation) -> Result<Self, DbError> {
        Ok(match expr {
            AggExpr::Attr(a) => ExprCols::Attr(rel.schema().index_of(a)?),
            AggExpr::Mul(a, b) => {
                ExprCols::Mul(rel.schema().index_of(a)?, rel.schema().index_of(b)?)
            }
            AggExpr::Sub(a, b) => {
                ExprCols::Sub(rel.schema().index_of(a)?, rel.schema().index_of(b)?)
            }
        })
    }
}

/// Hash GROUP-BY over a selection of a single (wide) relation.
///
/// # Errors
///
/// Unknown attribute names.
pub fn group_aggregate(
    rel: &Relation,
    query: &Query,
    sel: &SelectionVector,
) -> Result<GroupedResult, DbError> {
    let key_cols: Vec<usize> =
        query.group_by.iter().map(|g| rel.schema().index_of(g)).collect::<Result<_, _>>()?;
    let expr = ExprCols::resolve(&query.agg_expr, rel)?;
    let mut table: HashMap<Vec<u64>, u64> = HashMap::new();
    for &row in sel {
        let row = row as usize;
        let key: Vec<u64> = key_cols.iter().map(|&c| rel.value(row, c)).collect();
        fold(&mut table, key, eval_expr(rel, &expr, row), query.agg_func);
    }
    let mut out = GroupedResult::new();
    merge(&mut out, table, query.agg_func);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::Atom;
    use bbpim_db::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("g", 4),
                Attribute::numeric("v", 8),
                Attribute::numeric("w", 8),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..40u64 {
            rel.push_row(&[i % 4, i % 100, (i * 2) % 100]).unwrap();
        }
        rel
    }

    fn query(filter: Vec<Atom>, group: Vec<&str>, expr: AggExpr) -> Query {
        Query {
            id: "t".into(),
            filter,
            group_by: group.into_iter().map(String::from).collect(),
            agg_func: AggFunc::Sum,
            agg_expr: expr,
        }
    }

    #[test]
    fn filter_then_group_matches_oracle() {
        let rel = rel();
        let q = query(
            vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }],
            vec!["g"],
            AggExpr::Attr("v".into()),
        );
        let atoms = q.resolve_filter(rel.schema()).unwrap();
        let sel = filter(&rel, &atoms);
        let got = group_aggregate(&rel, &q, &sel).unwrap();
        assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap());
    }

    #[test]
    fn empty_filter_short_circuits() {
        let rel = rel();
        let q = query(
            vec![Atom::Gt { attr: "v".into(), value: 200u64.into() }],
            vec!["g"],
            AggExpr::Attr("v".into()),
        );
        let atoms = q.resolve_filter(rel.schema()).unwrap();
        assert!(filter(&rel, &atoms).is_empty());
    }

    #[test]
    fn expression_aggregates() {
        let rel = rel();
        for expr in [AggExpr::Mul("v".into(), "w".into()), AggExpr::Sub("w".into(), "g".into())] {
            let q = query(vec![], vec!["g"], expr);
            let sel = select_all(rel.len());
            let got = group_aggregate(&rel, &q, &sel).unwrap();
            assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap(), "{q:?}");
        }
    }

    #[test]
    fn merge_combines_thread_locals() {
        let mut a = GroupedResult::new();
        let mut t1 = HashMap::new();
        fold(&mut t1, vec![1], 10, AggFunc::Sum);
        let mut t2 = HashMap::new();
        fold(&mut t2, vec![1], 5, AggFunc::Sum);
        fold(&mut t2, vec![2], 7, AggFunc::Sum);
        merge(&mut a, t1, AggFunc::Sum);
        merge(&mut a, t2, AggFunc::Sum);
        assert_eq!(a[&vec![1u64]], 15);
        assert_eq!(a[&vec![2u64]], 7);
    }
}
