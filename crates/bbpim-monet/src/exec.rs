//! Physical operators: filter (conjunctive and DNF), positional star
//! join, hash GROUP-BY over the full multi-aggregate SELECT list.

use std::collections::HashMap;

use bbpim_db::plan::{AggExpr, PhysAgg, PhysFunc, Query, ResolvedAtom};
use bbpim_db::stats::{GroupedResult, MultiGrouped};
use bbpim_db::{DbError, Relation};

use crate::selection::{refine, select_all, SelectionVector};

/// Filter a relation with one resolved conjunction, producing a
/// selection vector.
pub fn filter(rel: &Relation, atoms: &[ResolvedAtom]) -> SelectionVector {
    let mut sel = select_all(rel.len());
    for atom in atoms {
        sel = refine(rel.column(atom.attr_index()), atom, &sel);
        if sel.is_empty() {
            break;
        }
    }
    sel
}

/// Refine a base selection with one resolved conjunction.
pub fn refine_conj(
    rel: &Relation,
    atoms: &[ResolvedAtom],
    base: &SelectionVector,
) -> SelectionVector {
    let mut sel = base.clone();
    for atom in atoms {
        sel = refine(rel.column(atom.attr_index()), atom, &sel);
        if sel.is_empty() {
            break;
        }
    }
    sel
}

/// Union sorted selection vectors (the OR of DNF disjunct selections).
pub fn union_selections(mut parts: Vec<SelectionVector>) -> SelectionVector {
    match parts.len() {
        0 => Vec::new(),
        1 => parts.pop().expect("one part"),
        _ => {
            let mut all: SelectionVector = parts.into_iter().flatten().collect();
            all.sort_unstable();
            all.dedup();
            all
        }
    }
}

/// Filter a relation with a resolved DNF over a base row range.
pub fn filter_dnf(
    rel: &Relation,
    dnf: &[Vec<ResolvedAtom>],
    base: &SelectionVector,
) -> SelectionVector {
    union_selections(dnf.iter().map(|conj| refine_conj(rel, conj, base)).collect())
}

/// Column-index-resolved aggregate expression.
#[derive(Debug, Clone, Copy)]
pub enum ExprCols {
    /// Single attribute.
    Attr(usize),
    /// Product.
    Mul(usize, usize),
    /// Difference.
    Sub(usize, usize),
}

impl ExprCols {
    /// Resolve names against a schema.
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn resolve(expr: &AggExpr, rel: &Relation) -> Result<Self, DbError> {
        Ok(match expr {
            AggExpr::Attr(a) => ExprCols::Attr(rel.schema().index_of(a)?),
            AggExpr::Mul(a, b) => {
                ExprCols::Mul(rel.schema().index_of(a)?, rel.schema().index_of(b)?)
            }
            AggExpr::Sub(a, b) => {
                ExprCols::Sub(rel.schema().index_of(a)?, rel.schema().index_of(b)?)
            }
        })
    }
}

/// Evaluate an aggregate expression for one row (columns pre-resolved).
#[inline]
pub fn eval_expr(rel: &Relation, expr_cols: &ExprCols, row: usize) -> u64 {
    match expr_cols {
        ExprCols::Attr(a) => rel.value(row, *a),
        ExprCols::Mul(a, b) => rel.value(row, *a).wrapping_mul(rel.value(row, *b)),
        ExprCols::Sub(a, b) => rel.value(row, *a).wrapping_sub(rel.value(row, *b)),
    }
}

/// The physical aggregates of a plan, resolved to column indices.
#[derive(Debug, Clone)]
pub struct ResolvedAggs {
    /// Per-aggregate merge component.
    pub funcs: Vec<PhysFunc>,
    /// Per-aggregate expression (`None` = COUNT, contributes 1).
    pub exprs: Vec<Option<ExprCols>>,
}

impl ResolvedAggs {
    /// Resolve a plan's aggregates against a schema.
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn resolve(aggs: &[PhysAgg], rel: &Relation) -> Result<Self, DbError> {
        let funcs = aggs.iter().map(|a| a.func).collect();
        let exprs = aggs
            .iter()
            .map(|a| a.expr.as_ref().map(|e| ExprCols::resolve(e, rel)).transpose())
            .collect::<Result<_, _>>()?;
        Ok(ResolvedAggs { funcs, exprs })
    }

    /// Number of aggregates.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Is the aggregate list empty?
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// The per-aggregate contributions of one row.
    #[inline]
    pub fn row_values(&self, rel: &Relation, row: usize) -> Vec<u64> {
        self.exprs
            .iter()
            .map(|e| match e {
                None => 1,
                Some(expr) => eval_expr(rel, expr, row),
            })
            .collect()
    }
}

/// Fold one row's values into a multi-column hash-aggregation table.
#[inline]
pub fn fold_row(
    table: &mut HashMap<Vec<u64>, Vec<u64>>,
    key: Vec<u64>,
    values: Vec<u64>,
    funcs: &[PhysFunc],
) {
    table
        .entry(key)
        .and_modify(|accs| {
            for ((acc, v), func) in accs.iter_mut().zip(&values).zip(funcs) {
                *acc = func.merge(*acc, *v);
            }
        })
        .or_insert(values);
}

/// Merge a thread-local multi-column table into per-aggregate grouped
/// results (one [`GroupedResult`] per aggregate, plan order).
pub fn merge_table(
    per_agg: &mut [GroupedResult],
    from: HashMap<Vec<u64>, Vec<u64>>,
    funcs: &[PhysFunc],
) {
    for (key, values) in from {
        for ((grouped, v), func) in per_agg.iter_mut().zip(values).zip(funcs) {
            grouped.entry(key.clone()).and_modify(|acc| *acc = func.merge(*acc, v)).or_insert(v);
        }
    }
}

/// Hash GROUP-BY over a selection of a single (wide) relation,
/// evaluating the query's whole physical plan and finalising the
/// multi-column answer.
///
/// # Errors
///
/// Unknown attribute names / invalid SELECT lists.
pub fn group_aggregate(
    rel: &Relation,
    query: &Query,
    sel: &SelectionVector,
) -> Result<MultiGrouped, DbError> {
    let plan = query.physical_plan()?;
    let key_cols: Vec<usize> =
        query.group_by.iter().map(|g| rel.schema().index_of(g)).collect::<Result<_, _>>()?;
    let aggs = ResolvedAggs::resolve(&plan.aggs, rel)?;
    let mut table: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
    for &row in sel {
        let row = row as usize;
        let key: Vec<u64> = key_cols.iter().map(|&c| rel.value(row, c)).collect();
        fold_row(&mut table, key, aggs.row_values(rel, row), &aggs.funcs);
    }
    let mut per_agg = vec![GroupedResult::new(); aggs.len()];
    merge_table(&mut per_agg, table, &aggs.funcs);
    Ok(plan.finalize(&per_agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{AggFunc, Atom, SelectItem};
    use bbpim_db::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("g", 4),
                Attribute::numeric("v", 8),
                Attribute::numeric("w", 8),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..40u64 {
            rel.push_row(&[i % 4, i % 100, (i * 2) % 100]).unwrap();
        }
        rel
    }

    fn query(filter: Vec<Atom>, group: Vec<&str>, expr: AggExpr) -> Query {
        Query::single(
            "t",
            filter,
            group.into_iter().map(String::from).collect(),
            AggFunc::Sum,
            expr,
        )
    }

    #[test]
    fn filter_then_group_matches_oracle() {
        let rel = rel();
        let q = query(
            vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }],
            vec!["g"],
            AggExpr::attr("v"),
        );
        let dnf = q.resolve_filter(rel.schema()).unwrap();
        let sel = filter_dnf(&rel, &dnf, &select_all(rel.len()));
        let got = group_aggregate(&rel, &q, &sel).unwrap();
        assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap());
    }

    #[test]
    fn disjunctive_selection_unions_branches() {
        let rel = rel();
        let q = Query::select([SelectItem::count("n")])
            .filter(col("v").lt(10u64).or(col("w").gt(80u64)))
            .group_by(["g"])
            .build(rel.schema())
            .unwrap();
        let dnf = q.resolve_filter(rel.schema()).unwrap();
        let sel = filter_dnf(&rel, &dnf, &select_all(rel.len()));
        // rows are unique even when both branches select them
        let mut sorted = sel.clone();
        sorted.dedup();
        assert_eq!(sel, sorted);
        let got = group_aggregate(&rel, &q, &sel).unwrap();
        assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap());
    }

    #[test]
    fn empty_filter_short_circuits() {
        let rel = rel();
        let q = query(
            vec![Atom::Gt { attr: "v".into(), value: 200u64.into() }],
            vec!["g"],
            AggExpr::attr("v"),
        );
        let dnf = q.resolve_filter(rel.schema()).unwrap();
        assert!(filter_dnf(&rel, &dnf, &select_all(rel.len())).is_empty());
    }

    #[test]
    fn expression_aggregates() {
        let rel = rel();
        for expr in [AggExpr::mul("v", "w"), AggExpr::sub("w", "g")] {
            let q = query(vec![], vec!["g"], expr);
            let sel = select_all(rel.len());
            let got = group_aggregate(&rel, &q, &sel).unwrap();
            assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap(), "{q:?}");
        }
    }

    #[test]
    fn multi_aggregate_group_aggregate() {
        let rel = rel();
        let q = Query::select([
            SelectItem::sum("s", AggExpr::attr("v")),
            SelectItem::count("n"),
            SelectItem::avg("a", AggExpr::attr("v")),
            SelectItem::min("lo", AggExpr::attr("w")),
        ])
        .group_by(["g"])
        .build(rel.schema())
        .unwrap();
        let got = group_aggregate(&rel, &q, &select_all(rel.len())).unwrap();
        assert_eq!(got, bbpim_db::stats::run_oracle(&q, &rel).unwrap());
    }

    #[test]
    fn fold_row_merges_per_column() {
        let funcs = [PhysFunc::Sum, PhysFunc::Min, PhysFunc::Count];
        let mut t = HashMap::new();
        fold_row(&mut t, vec![1], vec![10, 5, 1], &funcs);
        fold_row(&mut t, vec![1], vec![7, 9, 1], &funcs);
        assert_eq!(t[&vec![1u64]], vec![17, 5, 2]);
        let mut per_agg = vec![GroupedResult::new(); 3];
        merge_table(&mut per_agg, t, &funcs);
        assert_eq!(per_agg[0][&vec![1u64]], 17);
        assert_eq!(per_agg[1][&vec![1u64]], 5);
        assert_eq!(per_agg[2][&vec![1u64]], 2);
    }

    #[test]
    fn union_selections_dedups_and_sorts() {
        let a = vec![1u32, 3, 5];
        let b = vec![2u32, 3, 8];
        assert_eq!(union_selections(vec![a, b]), vec![1, 2, 3, 5, 8]);
        assert!(union_selections(vec![]).is_empty());
    }
}
