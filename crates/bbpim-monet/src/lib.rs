//! # bbpim-monet — the in-memory column-store baseline
//!
//! A compact vectorized analytical engine standing in for MonetDB in the
//! paper's comparison (Section V-A): selection vectors over columnar
//! storage, positional (invisible-join style) star joins against dense
//! dimension keys, hash GROUP-BY aggregation, and multi-threaded scans.
//! Its latencies are **real wall-clock** measurements on the build
//! machine, mirroring the paper's methodology of comparing simulated PIM
//! time against a real DBMS.
//!
//! Two configurations, as in Fig. 6:
//!
//! * [`engine::MonetEngine::prejoined`] — `mnt_join`: scans the wide
//!   pre-joined relation.
//! * [`engine::MonetEngine::star`] — `mnt_reg`: the normalised star
//!   schema; dimension filters run first, fact rows probe the dimension
//!   bitmaps and fetch group keys positionally.
//!
//! ```
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_monet::engine::MonetEngine;
//!
//! let db = SsbDb::generate(&SsbParams::tiny_for_tests());
//! let engine = MonetEngine::star(&db, 2);
//! let q = queries::standard_query("Q2.1").unwrap();
//! let out = engine.run(&q)?;
//! println!("{} groups in {:?}", out.groups.len(), out.wall);
//! # Ok::<(), bbpim_db::DbError>(())
//! ```

pub mod engine;
pub mod exec;
pub mod selection;

pub use engine::{MonetEngine, MonetResult};
