//! Vectorized predicate kernels over columns with selection vectors.

use bbpim_db::column::Column;
use bbpim_db::plan::ResolvedAtom;

/// Row indices surviving the filters so far (always sorted ascending).
pub type SelectionVector = Vec<u32>;

/// Full selection over `len` rows.
pub fn select_all(len: usize) -> SelectionVector {
    (0..len as u32).collect()
}

/// Narrow `input` to the rows of `col` satisfying `atom`.
///
/// This is the vectorized kernel: one tight loop per atom over the
/// candidate rows, no per-row interpretation.
pub fn refine(col: &Column, atom: &ResolvedAtom, input: &SelectionVector) -> SelectionVector {
    let values = col.values();
    match atom {
        ResolvedAtom::Eq { value, .. } => {
            input.iter().copied().filter(|&i| values[i as usize] == *value).collect()
        }
        ResolvedAtom::Between { lo, hi, .. } => input
            .iter()
            .copied()
            .filter(|&i| {
                let v = values[i as usize];
                v >= *lo && v <= *hi
            })
            .collect(),
        ResolvedAtom::Lt { value, .. } => {
            input.iter().copied().filter(|&i| values[i as usize] < *value).collect()
        }
        ResolvedAtom::Gt { value, .. } => {
            input.iter().copied().filter(|&i| values[i as usize] > *value).collect()
        }
        ResolvedAtom::In { values: set, .. } => input
            .iter()
            .copied()
            .filter(|&i| set.binary_search(&values[i as usize]).is_ok())
            .collect(),
    }
}

/// A per-key bitmap for dense 1-based (or 0-based) key spaces —
/// the probe side of the positional star join.
#[derive(Debug, Clone)]
pub struct KeyBitmap {
    bits: Vec<bool>,
    /// 1 for 1-based keys, 0 for 0-based (the date dimension).
    base: u64,
}

impl KeyBitmap {
    /// Build from the surviving rows of a dimension (`key_col` holds the
    /// dense keys).
    pub fn from_selection(
        key_col: &Column,
        selection: &SelectionVector,
        key_space: usize,
        base: u64,
    ) -> Self {
        let mut bits = vec![false; key_space + 1];
        for &row in selection {
            let key = key_col.get(row as usize);
            bits[(key - base) as usize] = true;
        }
        KeyBitmap { bits, base }
    }

    /// Does a foreign key hit a surviving dimension row?
    #[inline]
    pub fn contains(&self, fk: u64) -> bool {
        self.bits.get((fk - self.base) as usize).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::ResolvedAtom;

    fn col(values: &[u64]) -> Column {
        let mut c = Column::new(16);
        for &v in values {
            c.push(v).unwrap();
        }
        c
    }

    #[test]
    fn refine_eq() {
        let c = col(&[5, 7, 5, 9]);
        let out = refine(&c, &ResolvedAtom::Eq { idx: 0, value: 5 }, &select_all(4));
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn refine_chains() {
        let c1 = col(&[1, 2, 3, 4, 5, 6]);
        let c2 = col(&[9, 9, 0, 9, 0, 9]);
        let s = refine(&c1, &ResolvedAtom::Gt { idx: 0, value: 2 }, &select_all(6));
        let s = refine(&c2, &ResolvedAtom::Eq { idx: 0, value: 9 }, &s);
        assert_eq!(s, vec![3, 5]);
    }

    #[test]
    fn refine_between_and_in() {
        let c = col(&[10, 20, 30, 40]);
        let b = refine(&c, &ResolvedAtom::Between { idx: 0, lo: 15, hi: 35 }, &select_all(4));
        assert_eq!(b, vec![1, 2]);
        let i = refine(&c, &ResolvedAtom::In { idx: 0, values: vec![10, 40] }, &select_all(4));
        assert_eq!(i, vec![0, 3]);
    }

    #[test]
    fn bitmap_probe_one_based() {
        let keys = col(&[1, 2, 3, 4, 5]);
        let surviving = vec![1u32, 3]; // keys 2 and 4
        let bm = KeyBitmap::from_selection(&keys, &surviving, 5, 1);
        assert!(!bm.contains(1));
        assert!(bm.contains(2));
        assert!(bm.contains(4));
        assert!(!bm.contains(5));
    }

    #[test]
    fn bitmap_probe_zero_based() {
        let keys = col(&[0, 1, 2]);
        let bm = KeyBitmap::from_selection(&keys, &vec![0u32, 2], 3, 0);
        assert!(bm.contains(0));
        assert!(!bm.contains(1));
        assert!(bm.contains(2));
    }
}
