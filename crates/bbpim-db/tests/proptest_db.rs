//! Randomized tests on the relational substrate: dictionary
//! round-trips, width enforcement, oracle algebra, and generator
//! invariants.
//!
//! Formerly written with `proptest`; rewritten as deterministic
//! seed-driven loops (see `tests/properties.rs` at the workspace root
//! for the rationale).

use std::collections::BTreeSet;

use bbpim_db::column::Column;
use bbpim_db::dict::{bits_for, Dictionary};
use bbpim_db::plan::{AggExpr, AggFunc, Atom, Pred, Query};
use bbpim_db::relation::Relation;
use bbpim_db::schema::{Attribute, Schema};
use bbpim_db::ssb::skew::Zipf;
use bbpim_db::stats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..=8);
    (0..len).map(|_| (b'a' + rng.gen_range(0u64..26) as u8) as char).collect()
}

#[test]
fn dictionary_roundtrips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1D1C7 + case);
        let mut words = BTreeSet::new();
        for _ in 0..rng.gen_range(1usize..50) {
            words.insert(random_word(&mut rng));
        }
        let values: Vec<String> = words.into_iter().collect(); // sorted, unique
        let dict = Dictionary::from_sorted(values.clone()).unwrap();
        for (code, value) in dict.iter() {
            assert_eq!(dict.encode(value), Some(code), "case {case}");
            assert_eq!(dict.decode(code), Some(value), "case {case}");
        }
        assert!(dict.code_bits() <= 6, "case {case}");
        assert_eq!(dict.len(), values.len(), "case {case}");
    }
}

#[test]
fn bits_for_is_minimal() {
    let mut rng = StdRng::seed_from_u64(0xB175);
    let check = |v: u64| {
        let bits = bits_for(v);
        assert!((1..=64).contains(&bits), "v={v}");
        if bits < 64 {
            assert!(v < (1u64 << bits), "v={v}");
        }
        if bits > 1 {
            assert!(v >= (1u64 << (bits - 1)), "v={v}");
        }
    };
    check(0);
    check(1);
    check(u64::MAX);
    for _ in 0..CASES {
        check(rng.gen::<u64>());
        // small values exercise the low-bit edge cases
        check(rng.gen_range(0u64..1024));
    }
}

#[test]
fn column_width_is_enforced() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC01 + case);
        let width = rng.gen_range(1usize..=63);
        let mut col = Column::new(width);
        let limit = 1u64 << width;
        for _ in 0..rng.gen_range(1usize..100) {
            // mix in-range and out-of-range values
            let v = if rng.gen::<bool>() { rng.gen::<u64>() } else { rng.gen::<u64>() % limit };
            let result = col.push(v);
            assert_eq!(result.is_ok(), v < limit, "case {case}, width {width}, v {v}");
        }
    }
}

fn two_attr_relation(rng: &mut StdRng) -> Relation {
    let schema = Schema::new("t", vec![Attribute::numeric("g", 3), Attribute::numeric("v", 7)]);
    let mut rel = Relation::new(schema);
    for _ in 0..rng.gen_range(10usize..200) {
        rel.push_row(&[rng.gen_range(0u64..8), rng.gen_range(0u64..100)]).unwrap();
    }
    rel
}

#[test]
fn oracle_total_equals_sum_of_groups() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x04AC1E + case);
        let rel = two_attr_relation(&mut rng);
        let grouped =
            Query::single("g", vec![], vec!["g".into()], AggFunc::Sum, AggExpr::attr("v"));
        let total = Query { group_by: vec![], ..grouped.clone() };
        let by_group = stats::run_oracle(&grouped, &rel).unwrap();
        let overall = stats::run_oracle(&total, &rel).unwrap();
        let sum_of_groups: u64 = by_group.values().map(|vs| vs[0]).sum();
        assert_eq!(overall[&Vec::<u64>::new()], vec![sum_of_groups], "case {case}");
    }
}

#[test]
fn filter_monotone_under_conjunction() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF117 + case);
        let rel = two_attr_relation(&mut rng);
        let threshold = rng.gen_range(0u64..100);
        let one = Query::single(
            "one",
            vec![Atom::Lt { attr: "v".into(), value: threshold.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("v"),
        );
        let two = Query {
            filter: Pred::all(vec![
                Atom::Lt { attr: "v".into(), value: threshold.into() },
                Atom::Eq { attr: "g".into(), value: 3u64.into() },
            ]),
            ..one.clone()
        };
        let s1 = stats::selectivity(&one, &rel).unwrap();
        let s2 = stats::selectivity(&two, &rel).unwrap();
        assert!(s2 <= s1 + 1e-12, "case {case}: adding a conjunct cannot select more");
    }
}

#[test]
fn zipf_samples_in_range() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x21BF + case);
        let n = rng.gen_range(1usize..1000);
        let theta = rng.gen::<f64>() * 1.5;
        let z = Zipf::new(n, theta);
        let mut sample_rng = StdRng::seed_from_u64(rng.gen::<u64>());
        for _ in 0..100 {
            let v = z.sample(&mut sample_rng);
            assert!(v >= 1 && v <= n as u64, "case {case}: {v} outside 1..={n}");
        }
    }
}

#[test]
fn potential_subgroups_bounds_occupied() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5B6 + case);
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("d_g", 3),
                Attribute::numeric("d_h", 2),
                Attribute::numeric("lo_v", 6),
            ],
        );
        let mut rel = Relation::new(schema);
        for _ in 0..rng.gen_range(20usize..200) {
            rel.push_row(&[
                rng.gen_range(0u64..6),
                rng.gen_range(0u64..4),
                rng.gen_range(0u64..50),
            ])
            .unwrap();
        }
        let q = Query::single(
            "t",
            vec![Atom::Lt { attr: "lo_v".into(), value: 25u64.into() }],
            vec!["d_g".into(), "d_h".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        let potential = stats::potential_subgroups(&q, &rel).unwrap();
        let occupied = stats::occupied_subgroups(&q, &rel).unwrap();
        assert!(occupied <= potential, "case {case}: occupied {occupied} > potential {potential}");
    }
}
