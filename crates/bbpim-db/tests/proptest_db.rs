//! Property tests on the relational substrate: dictionary round-trips,
//! width enforcement, oracle algebra, and generator invariants.

use bbpim_db::column::Column;
use bbpim_db::dict::{bits_for, Dictionary};
use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
use bbpim_db::relation::Relation;
use bbpim_db::schema::{Attribute, Schema};
use bbpim_db::ssb::skew::Zipf;
use bbpim_db::stats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dictionary_roundtrips(words in proptest::collection::btree_set("[a-z]{1,8}", 1..50)) {
        let values: Vec<String> = words.into_iter().collect(); // sorted, unique
        let dict = Dictionary::from_sorted(values.clone()).unwrap();
        for (code, value) in dict.iter() {
            prop_assert_eq!(dict.encode(value), Some(code));
            prop_assert_eq!(dict.decode(code), Some(value));
        }
        prop_assert!(dict.code_bits() <= 6);
        prop_assert_eq!(dict.len(), values.len());
    }

    #[test]
    fn bits_for_is_minimal(v in any::<u64>()) {
        let bits = bits_for(v);
        prop_assert!((1..=64).contains(&bits));
        if bits < 64 {
            prop_assert!(v < (1u64 << bits));
        }
        if bits > 1 {
            prop_assert!(v >= (1u64 << (bits - 1)));
        }
    }

    #[test]
    fn column_width_is_enforced(width in 1usize..=63, values in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut col = Column::new(width);
        let limit = 1u64 << width;
        for v in &values {
            let result = col.push(*v);
            prop_assert_eq!(result.is_ok(), *v < limit);
        }
    }

    #[test]
    fn oracle_total_equals_sum_of_groups(
        rows in proptest::collection::vec((0u64..8, 0u64..100), 10..200),
    ) {
        let schema = Schema::new(
            "t",
            vec![Attribute::numeric("g", 3), Attribute::numeric("v", 7)],
        );
        let mut rel = Relation::new(schema);
        for (g, v) in &rows {
            rel.push_row(&[*g, *v]).unwrap();
        }
        let grouped = Query {
            id: "g".into(),
            filter: vec![],
            group_by: vec!["g".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("v".into()),
        };
        let total = Query { group_by: vec![], ..grouped.clone() };
        let by_group = stats::run_oracle(&grouped, &rel).unwrap();
        let overall = stats::run_oracle(&total, &rel).unwrap();
        let sum_of_groups: u64 = by_group.values().copied().sum();
        prop_assert_eq!(overall[&Vec::<u64>::new()], sum_of_groups);
    }

    #[test]
    fn filter_monotone_under_conjunction(
        rows in proptest::collection::vec((0u64..8, 0u64..100), 10..200),
        threshold in 0u64..100,
    ) {
        let schema = Schema::new(
            "t",
            vec![Attribute::numeric("g", 3), Attribute::numeric("v", 7)],
        );
        let mut rel = Relation::new(schema);
        for (g, v) in &rows {
            rel.push_row(&[*g, *v]).unwrap();
        }
        let one = Query {
            id: "one".into(),
            filter: vec![Atom::Lt { attr: "v".into(), value: threshold.into() }],
            group_by: vec![],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("v".into()),
        };
        let two = Query {
            filter: vec![
                Atom::Lt { attr: "v".into(), value: threshold.into() },
                Atom::Eq { attr: "g".into(), value: 3u64.into() },
            ],
            ..one.clone()
        };
        let s1 = stats::selectivity(&one, &rel).unwrap();
        let s2 = stats::selectivity(&two, &rel).unwrap();
        prop_assert!(s2 <= s1 + 1e-12, "adding a conjunct cannot select more");
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..1000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let v = z.sample(&mut rng);
            prop_assert!(v >= 1 && v <= n as u64);
        }
    }

    #[test]
    fn potential_subgroups_bounds_occupied(
        rows in proptest::collection::vec((0u64..6, 0u64..4, 0u64..50), 20..200),
    ) {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("d_g", 3),
                Attribute::numeric("d_h", 2),
                Attribute::numeric("lo_v", 6),
            ],
        );
        let mut rel = Relation::new(schema);
        for (g, h, v) in &rows {
            rel.push_row(&[*g, *h, *v]).unwrap();
        }
        let q = Query {
            id: "t".into(),
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 25u64.into() }],
            group_by: vec!["d_g".into(), "d_h".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("lo_v".into()),
        };
        let potential = stats::potential_subgroups(&q, &rel).unwrap();
        let occupied = stats::occupied_subgroups(&q, &rel).unwrap();
        prop_assert!(occupied <= potential, "occupied {} > potential {}", occupied, potential);
    }
}
