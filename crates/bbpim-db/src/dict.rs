//! Order-preserving string dictionaries.
//!
//! String attributes are stored as small integers. Dictionaries are
//! built from a *sorted* (or otherwise deliberately ordered) value list
//! so that integer comparisons implement lexicographic predicates — the
//! property SSB's `p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'` relies
//! on.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::DbError;

/// An immutable, order-preserving string dictionary.
///
/// ```
/// use bbpim_db::dict::Dictionary;
/// let d = Dictionary::from_sorted(vec!["APAC".into(), "EMEA".into()]).unwrap();
/// assert_eq!(d.encode("EMEA"), Some(1));
/// assert_eq!(d.decode(0), Some("APAC"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u64>,
}

impl Dictionary {
    /// Build from values that are already in the intended code order.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidQuery`] if the list contains duplicates
    /// (codes must be unambiguous).
    pub fn from_sorted(values: Vec<String>) -> Result<Arc<Self>, DbError> {
        let mut index = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if index.insert(v.clone(), i as u64).is_some() {
                return Err(DbError::InvalidQuery(format!("duplicate dictionary entry `{v}`")));
            }
        }
        Ok(Arc::new(Dictionary { values, index }))
    }

    /// Code of a string, if present.
    pub fn encode(&self, value: &str) -> Option<u64> {
        self.index.get(value).copied()
    }

    /// String of a code, if in range.
    pub fn decode(&self, code: u64) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Bits needed to store any code.
    pub fn code_bits(&self) -> usize {
        bits_for(self.values.len().saturating_sub(1) as u64)
    }

    /// Iterate `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u64, v.as_str()))
    }
}

/// Bits needed to represent `max_value` (at least 1).
pub fn bits_for(max_value: u64) -> usize {
    (64 - max_value.leading_zeros() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Dictionary::from_sorted(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        for (code, value) in d.iter() {
            assert_eq!(d.encode(value), Some(code));
        }
        assert_eq!(d.decode(3), None);
        assert_eq!(d.encode("zzz"), None);
    }

    #[test]
    fn sorted_input_preserves_order() {
        let mut names: Vec<String> = (1..=40).map(|i| format!("MFGR#22{i:02}")).collect();
        names.sort();
        let d = Dictionary::from_sorted(names.clone()).unwrap();
        let lo = d.encode("MFGR#2221").unwrap();
        let hi = d.encode("MFGR#2228").unwrap();
        // lexicographic range == code range
        for (code, value) in d.iter() {
            let in_lex = ("MFGR#2221"..="MFGR#2228").contains(&value);
            assert_eq!((lo..=hi).contains(&code), in_lex, "{value}");
        }
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Dictionary::from_sorted(vec!["x".into(), "x".into()]).is_err());
    }

    #[test]
    fn code_bits_minimal() {
        let d = Dictionary::from_sorted((0..5).map(|i| i.to_string()).collect()).unwrap();
        assert_eq!(d.code_bits(), 3);
        let d1 = Dictionary::from_sorted(vec!["only".into()]).unwrap();
        assert_eq!(d1.code_bits(), 1);
    }

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
