//! Schemas: named, bit-width-minimal attributes.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dict::Dictionary;
use crate::error::DbError;

/// How an attribute's integer codes should be interpreted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttrKind {
    /// A plain unsigned integer.
    Numeric,
    /// Codes into an order-preserving string dictionary.
    Dict(#[serde(skip)] Option<Arc<Dictionary>>),
}

impl PartialEq for AttrKind {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (AttrKind::Numeric, AttrKind::Numeric) | (AttrKind::Dict(_), AttrKind::Dict(_))
        )
    }
}

/// One attribute: a name, a width in bits, and an interpretation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (prefixed by relation: `lo_quantity`, `d_year`…).
    pub name: String,
    /// Storage width in bits (1..=64).
    pub bits: usize,
    /// Interpretation of the stored codes.
    pub kind: AttrKind,
}

impl Attribute {
    /// A numeric attribute.
    pub fn numeric(name: impl Into<String>, bits: usize) -> Self {
        Attribute { name: name.into(), bits, kind: AttrKind::Numeric }
    }

    /// A dictionary-encoded attribute; width follows the dictionary.
    pub fn dict(name: impl Into<String>, dict: Arc<Dictionary>) -> Self {
        let bits = dict.code_bits();
        Attribute { name: name.into(), bits, kind: AttrKind::Dict(Some(dict)) }
    }

    /// The dictionary, when this attribute has one.
    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        match &self.kind {
            AttrKind::Dict(d) => d.as_ref(),
            AttrKind::Numeric => None,
        }
    }

    /// Encode a string through this attribute's dictionary.
    ///
    /// # Errors
    ///
    /// [`DbError::KindMismatch`] for numeric attributes,
    /// [`DbError::NotInDictionary`] for unknown strings.
    pub fn encode_str(&self, value: &str) -> Result<u64, DbError> {
        let dict = self.dictionary().ok_or_else(|| DbError::KindMismatch {
            attr: self.name.clone(),
            detail: "string constant on a numeric attribute".into(),
        })?;
        dict.encode(value).ok_or_else(|| DbError::NotInDictionary {
            attr: self.name.clone(),
            value: value.into(),
        })
    }
}

/// An ordered set of attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Relation name.
    pub name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        Schema { name: name.into(), attrs }
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute by name.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchAttribute`] when absent.
    pub fn index_of(&self, name: &str) -> Result<usize, DbError> {
        self.attrs.iter().position(|a| a.name == name).ok_or_else(|| DbError::NoSuchAttribute {
            name: name.into(),
            schema: self.name.clone(),
        })
    }

    /// Attribute by name.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchAttribute`] when absent.
    pub fn attr(&self, name: &str) -> Result<&Attribute, DbError> {
        Ok(&self.attrs[self.index_of(name)?])
    }

    /// Total record width in bits.
    pub fn record_bits(&self) -> usize {
        self.attrs.iter().map(|a| a.bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Attribute::numeric("a", 8),
                Attribute::dict(
                    "b",
                    Dictionary::from_sorted(vec!["x".into(), "y".into(), "z".into()]).unwrap(),
                ),
            ],
        )
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.attr("b").unwrap().bits, 2);
        assert!(matches!(s.index_of("zzz"), Err(DbError::NoSuchAttribute { .. })));
    }

    #[test]
    fn record_bits_sums_widths() {
        assert_eq!(schema().record_bits(), 10);
    }

    #[test]
    fn encode_str_through_dictionary() {
        let s = schema();
        assert_eq!(s.attr("b").unwrap().encode_str("y").unwrap(), 1);
        assert!(matches!(
            s.attr("b").unwrap().encode_str("nope"),
            Err(DbError::NotInDictionary { .. })
        ));
        assert!(matches!(s.attr("a").unwrap().encode_str("y"), Err(DbError::KindMismatch { .. })));
    }

    #[test]
    fn dict_attr_width_follows_dictionary() {
        let d = Dictionary::from_sorted((0..100).map(|i| format!("v{i:03}")).collect()).unwrap();
        let a = Attribute::dict("big", d);
        assert_eq!(a.bits, 7);
    }
}
