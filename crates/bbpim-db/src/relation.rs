//! Columnar relations.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::DbError;
use crate::schema::Schema;
use crate::zonemap::ZoneMap;

/// A columnar relation: a [`Schema`] plus one [`Column`] per attribute.
///
/// ```
/// use bbpim_db::relation::Relation;
/// use bbpim_db::schema::{Attribute, Schema};
///
/// let schema = Schema::new("t", vec![Attribute::numeric("x", 8), Attribute::numeric("y", 4)]);
/// let mut rel = Relation::new(schema);
/// rel.push_row(&[7, 3])?;
/// assert_eq!(rel.len(), 1);
/// assert_eq!(rel.value(0, rel.schema().index_of("y")?), 3);
/// # Ok::<(), bbpim_db::DbError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
}

impl Relation {
    /// Empty relation for a schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.attrs().iter().map(|a| Column::new(a.bits)).collect();
        Relation { schema, columns }
    }

    /// Empty relation with row capacity reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = schema.attrs().iter().map(|a| Column::with_capacity(a.bits, rows)).collect();
        Relation { schema, columns }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map(Column::len).unwrap_or(0)
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row given values in schema order.
    ///
    /// # Errors
    ///
    /// [`DbError::ArityMismatch`] on wrong arity;
    /// [`DbError::ValueOutOfRange`] (with the attribute name filled in)
    /// when a value exceeds its width. The row is either fully appended
    /// or not at all.
    pub fn push_row(&mut self, values: &[u64]) -> Result<(), DbError> {
        if values.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        // Validate first so a failure cannot leave ragged columns.
        for (attr, &v) in self.schema.attrs().iter().zip(values) {
            if attr.bits < 64 && v >> attr.bits != 0 {
                return Err(DbError::ValueOutOfRange {
                    attr: attr.name.clone(),
                    value: v,
                    bits: attr.bits,
                });
            }
        }
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v).expect("validated above");
        }
        Ok(())
    }

    /// Value at `(row, attr_index)`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn value(&self, row: usize, attr_index: usize) -> u64 {
        self.columns[attr_index].get(row)
    }

    /// Value at `row` of the attribute called `name`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchAttribute`] when the name is unknown.
    pub fn value_by_name(&self, row: usize, name: &str) -> Result<u64, DbError> {
        Ok(self.value(row, self.schema.index_of(name)?))
    }

    /// Overwrite one value (UPDATE maintenance).
    ///
    /// # Errors
    ///
    /// [`DbError::ValueOutOfRange`] (with the attribute named) when the
    /// value exceeds the attribute width.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn set_value(&mut self, row: usize, attr_index: usize, value: u64) -> Result<(), DbError> {
        self.columns[attr_index].set(row, value).map_err(|e| match e {
            DbError::ValueOutOfRange { value, bits, .. } => DbError::ValueOutOfRange {
                attr: self.schema.attrs()[attr_index].name.clone(),
                value,
                bits,
            },
            other => other,
        })
    }

    /// Borrow a column by attribute index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn column(&self, attr_index: usize) -> &Column {
        &self.columns[attr_index]
    }

    /// Borrow a column by attribute name.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchAttribute`] when the name is unknown.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DbError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Materialise one row in schema order.
    pub fn row(&self, row: usize) -> Vec<u64> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Horizontally partition the relation into `n` relations by a
    /// per-row assignment function (`assign(row) -> shard`), preserving
    /// relative row order within each part. Rows assigned outside
    /// `0..n` are rejected.
    ///
    /// This is the substrate for sharded (multi-module) execution: each
    /// part keeps the full schema, so every shard can answer the same
    /// logical queries over its slice of the records.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidQuery`] when `n` is zero or `assign` returns an
    /// out-of-range shard.
    pub fn partition_by<F>(&self, n: usize, assign: F) -> Result<Vec<Relation>, DbError>
    where
        F: FnMut(usize) -> usize,
    {
        Ok(self.partition_by_zoned(n, assign)?.into_iter().map(|(part, _)| part).collect())
    }

    /// [`Relation::partition_by`], additionally building each part's
    /// [`ZoneMap`] (per-attribute min/max) in the same pass over the
    /// rows. This is the load-time half of zone-map-driven pruning: the
    /// cluster layer keeps the per-shard maps and skips shards whose
    /// ranges cannot satisfy a query's filter.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidQuery`] when `n` is zero or `assign` returns an
    /// out-of-range shard.
    pub fn partition_by_zoned<F>(
        &self,
        n: usize,
        mut assign: F,
    ) -> Result<Vec<(Relation, ZoneMap)>, DbError>
    where
        F: FnMut(usize) -> usize,
    {
        if n == 0 {
            return Err(DbError::InvalidQuery("cannot partition into 0 parts".into()));
        }
        let mut parts: Vec<(Relation, ZoneMap)> = (0..n)
            .map(|_| (Relation::new(self.schema.clone()), ZoneMap::empty(self.schema.arity())))
            .collect();
        let mut row_buf = Vec::with_capacity(self.schema.arity());
        for row in 0..self.len() {
            let shard = assign(row);
            if shard >= n {
                return Err(DbError::InvalidQuery(format!(
                    "row {row} assigned to shard {shard}, but only {n} shards exist"
                )));
            }
            row_buf.clear();
            row_buf.extend(self.columns.iter().map(|c| c.get(row)));
            let (part, zone) = &mut parts[shard];
            part.push_row(&row_buf).expect("values came from a valid relation");
            zone.observe_row(&row_buf);
        }
        Ok(parts)
    }

    /// The whole relation's [`ZoneMap`].
    pub fn zone_map(&self) -> ZoneMap {
        ZoneMap::of(self)
    }

    /// Decode a row for display: dictionary attributes as strings.
    pub fn row_display(&self, row: usize) -> Vec<String> {
        self.schema
            .attrs()
            .iter()
            .zip(self.columns.iter())
            .map(|(attr, col)| {
                let v = col.get(row);
                match attr.dictionary().and_then(|d| d.decode(v)) {
                    Some(s) => s.to_owned(),
                    None => v.to_string(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::schema::Attribute;

    fn rel() -> Relation {
        let d = Dictionary::from_sorted(vec!["lo".into(), "hi".into()]).unwrap();
        let schema = Schema::new("t", vec![Attribute::numeric("n", 8), Attribute::dict("s", d)]);
        Relation::new(schema)
    }

    #[test]
    fn push_and_read_back() {
        let mut r = rel();
        r.push_row(&[42, 1]).unwrap();
        r.push_row(&[7, 0]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), vec![42, 1]);
        assert_eq!(r.value_by_name(1, "n").unwrap(), 7);
    }

    #[test]
    fn arity_checked() {
        let mut r = rel();
        assert!(matches!(r.push_row(&[1]), Err(DbError::ArityMismatch { .. })));
    }

    #[test]
    fn width_violation_names_attribute_and_keeps_columns_aligned() {
        let mut r = rel();
        let err = r.push_row(&[256, 0]).unwrap_err();
        match err {
            DbError::ValueOutOfRange { attr, .. } => assert_eq!(attr, "n"),
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn partition_by_round_robin_preserves_rows() {
        let mut r = rel();
        for i in 0..10u64 {
            r.push_row(&[i, i % 2]).unwrap();
        }
        let parts = r.partition_by(3, |row| row % 3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 10);
        // shard 0 got rows 0,3,6,9 in order
        assert_eq!(parts[0].row(0), vec![0, 0]);
        assert_eq!(parts[0].row(3), vec![9, 1]);
        for p in &parts {
            assert_eq!(p.schema(), r.schema());
        }
    }

    #[test]
    fn partition_by_rejects_bad_arguments() {
        let mut r = rel();
        r.push_row(&[1, 0]).unwrap();
        assert!(matches!(r.partition_by(0, |_| 0), Err(DbError::InvalidQuery(_))));
        assert!(matches!(r.partition_by(2, |_| 5), Err(DbError::InvalidQuery(_))));
    }

    #[test]
    fn partition_by_allows_empty_parts() {
        let mut r = rel();
        r.push_row(&[1, 0]).unwrap();
        let parts = r.partition_by(4, |_| 2).unwrap();
        assert_eq!(parts[2].len(), 1);
        assert!(parts[0].is_empty() && parts[1].is_empty() && parts[3].is_empty());
    }

    #[test]
    fn partition_by_zoned_summarises_each_part() {
        let mut r = rel();
        for i in 0..10u64 {
            r.push_row(&[10 * i, i % 2]).unwrap();
        }
        let parts = r.partition_by_zoned(2, |row| row % 2).unwrap();
        // part 0 got rows 0,2,4,6,8 → n ∈ {0,20,40,60,80}
        assert_eq!(parts[0].1.range(0), Some((0, 80)));
        assert_eq!(parts[1].1.range(0), Some((10, 90)));
        // zones match recomputation from the part itself
        for (part, zone) in &parts {
            assert_eq!(zone, &part.zone_map());
        }
    }

    #[test]
    fn row_display_decodes_dictionary() {
        let mut r = rel();
        r.push_row(&[3, 1]).unwrap();
        assert_eq!(r.row_display(0), vec!["3".to_string(), "hi".to_string()]);
    }
}
