//! Fluent query construction.
//!
//! ```
//! use bbpim_db::builder::col;
//! use bbpim_db::plan::{AggExpr, Query, SelectItem};
//!
//! let q = Query::select([
//!         SelectItem::sum("revenue", AggExpr::mul("lo_extendedprice", "lo_discount")),
//!         SelectItem::count("orders"),
//!         SelectItem::avg("avg_discount", AggExpr::attr("lo_discount")),
//!     ])
//!     .id("Q1.1-combined")
//!     .filter(
//!         col("d_year")
//!             .eq(1993u64)
//!             .and(col("lo_discount").between(1u64, 3u64))
//!             .and(col("lo_quantity").lt(25u64)),
//!     )
//!     .build_unchecked();
//! assert_eq!(q.select.len(), 3);
//! ```
//!
//! [`QueryBuilder::build`] validates against a concrete [`Schema`]
//! (attribute existence, dictionary strings, SELECT-list sanity);
//! [`QueryBuilder::build_unchecked`] defers validation to the engines —
//! useful when queries are defined before any schema exists (the SSB
//! catalog does this).

use crate::error::DbError;
use crate::plan::{Atom, Const, Pred, Query, SelectItem};
use crate::schema::Schema;

/// Start a predicate on a column: `col("d_year").eq(1993)`.
pub fn col(name: impl Into<String>) -> ColRef {
    ColRef { name: name.into() }
}

/// A column reference waiting for a comparison — see [`col`].
#[derive(Debug, Clone)]
pub struct ColRef {
    name: String,
}

impl ColRef {
    /// `col = value`
    pub fn eq(self, value: impl Into<Const>) -> Pred {
        Pred::Atom(Atom::Eq { attr: self.name, value: value.into() })
    }

    /// `lo <= col <= hi` (inclusive)
    pub fn between(self, lo: impl Into<Const>, hi: impl Into<Const>) -> Pred {
        Pred::Atom(Atom::Between { attr: self.name, lo: lo.into(), hi: hi.into() })
    }

    /// `col < value`
    pub fn lt(self, value: impl Into<Const>) -> Pred {
        Pred::Atom(Atom::Lt { attr: self.name, value: value.into() })
    }

    /// `col > value`
    pub fn gt(self, value: impl Into<Const>) -> Pred {
        Pred::Atom(Atom::Gt { attr: self.name, value: value.into() })
    }

    /// `col IN (values…)`
    pub fn is_in<I, C>(self, values: I) -> Pred
    where
        I: IntoIterator<Item = C>,
        C: Into<Const>,
    {
        Pred::Atom(Atom::In {
            attr: self.name,
            values: values.into_iter().map(Into::into).collect(),
        })
    }
}

/// Fluent [`Query`] builder — start with [`Query::select`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: String,
    select: Vec<SelectItem>,
    filter: Option<Pred>,
    group_by: Vec<String>,
}

impl QueryBuilder {
    /// A builder over a SELECT list (normally via [`Query::select`]).
    pub fn new(items: impl IntoIterator<Item = SelectItem>) -> QueryBuilder {
        QueryBuilder {
            id: "query".into(),
            select: items.into_iter().collect(),
            filter: None,
            group_by: Vec::new(),
        }
    }

    /// Set the query identifier (defaults to `"query"`).
    #[must_use]
    pub fn id(mut self, id: impl Into<String>) -> Self {
        self.id = id.into();
        self
    }

    /// Set the filter; calling again ANDs the predicates together.
    #[must_use]
    pub fn filter(mut self, pred: Pred) -> Self {
        self.filter = Some(match self.filter.take() {
            None => pred,
            Some(existing) => existing.and(pred),
        });
        self
    }

    /// Append GROUP BY attributes (in key order).
    #[must_use]
    pub fn group_by<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.group_by.extend(keys.into_iter().map(Into::into));
        self
    }

    /// Finish without schema validation (the engines validate at
    /// resolution time anyway).
    pub fn build_unchecked(self) -> Query {
        Query {
            id: self.id,
            filter: self.filter.unwrap_or_else(Pred::always),
            group_by: self.group_by,
            select: self.select,
        }
    }

    /// Finish and validate against a schema: every filter atom resolves
    /// (attributes exist, dictionary strings encode, `BETWEEN` bounds
    /// ordered, `IN` non-empty), group keys and aggregate operands
    /// exist, and the SELECT list is non-empty with unique names.
    ///
    /// # Errors
    ///
    /// [`DbError`] describing the first problem found.
    pub fn build(self, schema: &Schema) -> Result<Query, DbError> {
        let query = self.build_unchecked();
        query.validate(schema)?;
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggExpr, AggFunc};
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_year", 3),
            ],
        )
    }

    #[test]
    fn builder_assembles_the_query() {
        let q = Query::select([
            SelectItem::sum("rev", AggExpr::mul("lo_price", "lo_disc")),
            SelectItem::count("n"),
        ])
        .id("combo")
        .filter(col("d_year").eq(3u64).and(col("lo_disc").between(1u64, 3u64)))
        .group_by(["d_year"])
        .build(&schema())
        .unwrap();
        assert_eq!(q.id, "combo");
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.group_by, vec!["d_year"]);
        assert_eq!(q.filter.atoms().len(), 2);
    }

    #[test]
    fn repeated_filter_calls_and_together() {
        let q = Query::select([SelectItem::count("n")])
            .filter(col("d_year").eq(1u64))
            .filter(col("lo_price").gt(10u64).or(col("lo_price").lt(2u64)))
            .build(&schema())
            .unwrap();
        // (year AND (gt OR lt)) → two disjuncts, each containing the year atom
        let dnf = q.filter.dnf();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|conj| conj.len() == 2));
    }

    #[test]
    fn empty_filter_is_always_true() {
        let q = Query::select([SelectItem::count("n")]).build(&schema()).unwrap();
        assert!(q.filter.is_always());
    }

    #[test]
    fn build_validates_against_the_schema() {
        let bad_attr =
            Query::select([SelectItem::count("n")]).filter(col("nope").eq(1u64)).build(&schema());
        assert!(bad_attr.is_err());
        let bad_operand =
            Query::select([SelectItem::sum("s", AggExpr::attr("nope"))]).build(&schema());
        assert!(bad_operand.is_err());
        let bad_group = Query::select([SelectItem::count("n")]).group_by(["nope"]).build(&schema());
        assert!(bad_group.is_err());
        let empty_select = Query::select([]).build(&schema());
        assert!(empty_select.is_err());
        let dup = Query::select([SelectItem::count("n"), SelectItem::count("n")]).build(&schema());
        assert!(dup.is_err());
        let missing_expr =
            Query::select([SelectItem { name: "x".into(), func: AggFunc::Avg, expr: None }])
                .build(&schema());
        assert!(missing_expr.is_err());
    }

    #[test]
    fn in_list_builder() {
        let q = Query::select([SelectItem::count("n")])
            .filter(col("d_year").is_in([1u64, 3u64]))
            .build(&schema())
            .unwrap();
        assert_eq!(q.filter.to_string(), "d_year IN (1, 3)");
    }
}
