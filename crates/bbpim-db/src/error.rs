//! Error type for the relational substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the relational layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// An attribute name was not found in a schema.
    NoSuchAttribute {
        /// The missing name.
        name: String,
        /// The schema searched.
        schema: String,
    },
    /// A value exceeded its attribute's declared bit width.
    ValueOutOfRange {
        /// Attribute name.
        attr: String,
        /// Offending value.
        value: u64,
        /// Declared width in bits.
        bits: usize,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Values supplied.
        got: usize,
        /// Attributes expected.
        expected: usize,
    },
    /// A string was not present in an attribute's dictionary.
    NotInDictionary {
        /// Attribute name.
        attr: String,
        /// The unknown string.
        value: String,
    },
    /// A dictionary decode was requested for a plain numeric attribute,
    /// or vice versa.
    KindMismatch {
        /// Attribute name.
        attr: String,
        /// Human explanation.
        detail: String,
    },
    /// A key lookup failed while pre-joining (dangling foreign key).
    DanglingKey {
        /// Dimension relation name.
        relation: String,
        /// The key value that had no match.
        key: u64,
    },
    /// A query referenced something invalid (bad constant, empty IN…).
    InvalidQuery(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchAttribute { name, schema } => {
                write!(f, "no attribute `{name}` in schema `{schema}`")
            }
            DbError::ValueOutOfRange { attr, value, bits } => {
                write!(f, "value {value} does not fit `{attr}` ({bits} bits)")
            }
            DbError::ArityMismatch { got, expected } => {
                write!(f, "row has {got} values, schema expects {expected}")
            }
            DbError::NotInDictionary { attr, value } => {
                write!(f, "string `{value}` not in dictionary of `{attr}`")
            }
            DbError::KindMismatch { attr, detail } => write!(f, "attribute `{attr}`: {detail}"),
            DbError::DanglingKey { relation, key } => {
                write!(f, "foreign key {key} has no match in `{relation}`")
            }
            DbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_attribute() {
        let e = DbError::NoSuchAttribute { name: "lo_qty".into(), schema: "lineorder".into() };
        assert!(e.to_string().contains("lo_qty"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<DbError>();
    }
}
