//! Width-checked columnar storage.

use serde::{Deserialize, Serialize};

use crate::error::DbError;

/// A column of unsigned integers, each fitting `bits`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    bits: usize,
    data: Vec<u64>,
}

impl Column {
    /// Empty column of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 64.
    pub fn new(bits: usize) -> Self {
        assert!((1..=64).contains(&bits), "column width must be 1..=64");
        Column { bits, data: Vec::new() }
    }

    /// Empty column with reserved capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 64.
    pub fn with_capacity(bits: usize, capacity: usize) -> Self {
        let mut c = Column::new(bits);
        c.data.reserve(capacity);
        c
    }

    /// Width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a value.
    ///
    /// # Errors
    ///
    /// [`DbError::ValueOutOfRange`] when the value exceeds the width.
    pub fn push(&mut self, value: u64) -> Result<(), DbError> {
        if self.bits < 64 && value >> self.bits != 0 {
            return Err(DbError::ValueOutOfRange { attr: String::new(), value, bits: self.bits });
        }
        self.data.push(value);
        Ok(())
    }

    /// Value at `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn get(&self, row: usize) -> u64 {
        self.data[row]
    }

    /// Overwrite the value at `row`.
    ///
    /// # Errors
    ///
    /// [`DbError::ValueOutOfRange`] when the value exceeds the width.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn set(&mut self, row: usize, value: u64) -> Result<(), DbError> {
        if self.bits < 64 && value >> self.bits != 0 {
            return Err(DbError::ValueOutOfRange { attr: String::new(), value, bits: self.bits });
        }
        self.data[row] = value;
        Ok(())
    }

    /// The raw values.
    pub fn values(&self) -> &[u64] {
        &self.data
    }

    /// Distinct values, sorted ascending.
    pub fn distinct_sorted(&self) -> Vec<u64> {
        let mut v = self.data.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Largest value (None when empty).
    pub fn max(&self) -> Option<u64> {
        self.data.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::new(8);
        c.push(200).unwrap();
        c.push(0).unwrap();
        assert_eq!(c.get(0), 200);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn width_enforced() {
        let mut c = Column::new(4);
        assert!(c.push(16).is_err());
        assert!(c.push(15).is_ok());
    }

    #[test]
    fn full_width_accepts_max() {
        let mut c = Column::new(64);
        c.push(u64::MAX).unwrap();
        assert_eq!(c.get(0), u64::MAX);
    }

    #[test]
    fn distinct_sorted_dedups() {
        let mut c = Column::new(8);
        for v in [5u64, 1, 5, 3, 1] {
            c.push(v).unwrap();
        }
        assert_eq!(c.distinct_sorted(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_width_rejected() {
        let _ = Column::new(0);
    }
}
