//! Query oracles: reference execution, selectivity, subgroup counts.
//!
//! These row-at-a-time evaluators are the ground truth the PIM engine
//! and the column-store baseline are tested against, and they produce
//! the per-query statistics of the paper's Table II (selectivity, total
//! potential subgroups).
//!
//! The oracle executes the v2 query surface: the filter tree is
//! evaluated in disjunctive normal form and every SELECT item is
//! computed through the query's [`crate::plan::PhysicalPlan`] — the same
//! sum/count/min/max components the engines merge — so `AVG` derives
//! identically everywhere (merged sum over merged count, integer
//! division at the very end).

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::plan::{PhysAgg, PhysFunc, Query, ResolvedAtom};
use crate::relation::Relation;

/// Result of a single-component (group-by) aggregation: group key
/// values → one aggregate value. This is the *mergeable* per-column
/// shape partials travel in.
pub type GroupedResult = BTreeMap<Vec<u64>, u64>;

/// A full query answer: group key values → one value per SELECT item
/// (in SELECT order). Queries without GROUP BY use a single empty key.
pub type MultiGrouped = BTreeMap<Vec<u64>, Vec<u64>>;

/// Extract one output column of a [`MultiGrouped`] answer as a
/// [`GroupedResult`] (handy for single-aggregate comparisons).
///
/// # Panics
///
/// Panics when a row is narrower than `idx` (caller bug).
pub fn column(grouped: &MultiGrouped, idx: usize) -> GroupedResult {
    grouped.iter().map(|(k, vs)| (k.clone(), vs[idx])).collect()
}

/// Evaluate a resolved conjunction on one row.
pub fn row_matches(atoms: &[ResolvedAtom], rel: &Relation, row: usize) -> bool {
    atoms.iter().all(|a| a.matches(rel, row))
}

/// Evaluate a resolved DNF (any disjunct's atoms all hold) on one row.
pub fn row_matches_dnf(dnf: &[Vec<ResolvedAtom>], rel: &Relation, row: usize) -> bool {
    dnf.iter().any(|conj| row_matches(conj, rel, row))
}

/// The selection bit-vector of a query's filter.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn filter_bitvec(query: &Query, rel: &Relation) -> Result<Vec<bool>, DbError> {
    let dnf = query.resolve_filter(rel.schema())?;
    Ok((0..rel.len()).map(|r| row_matches_dnf(&dnf, rel, r)).collect())
}

/// Selectivity: fraction of rows passing the filter.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn selectivity(query: &Query, rel: &Relation) -> Result<f64, DbError> {
    if rel.is_empty() {
        return Ok(0.0);
    }
    let bits = filter_bitvec(query, rel)?;
    Ok(bits.iter().filter(|b| **b).count() as f64 / rel.len() as f64)
}

/// Evaluate one physical aggregate component for one row (`Count`
/// contributes 1 per matching row).
fn phys_row_value(agg: &PhysAgg, rel: &Relation, row: usize) -> Result<u64, DbError> {
    match &agg.expr {
        None => Ok(1),
        Some(expr) => expr.eval(rel, row),
    }
}

/// Reference (row-at-a-time) execution of the query's *physical* plan:
/// one [`GroupedResult`] per deduplicated physical aggregate, in plan
/// order. This is what per-shard partials look like before merging.
///
/// # Errors
///
/// Propagates resolution and evaluation failures.
pub fn run_oracle_physical(query: &Query, rel: &Relation) -> Result<Vec<GroupedResult>, DbError> {
    let dnf = query.resolve_filter(rel.schema())?;
    let plan = query.physical_plan()?;
    let group_idx: Vec<usize> =
        query.group_by.iter().map(|name| rel.schema().index_of(name)).collect::<Result<_, _>>()?;
    let mut per_agg: Vec<GroupedResult> = vec![GroupedResult::new(); plan.aggs.len()];
    for row in 0..rel.len() {
        if !row_matches_dnf(&dnf, rel, row) {
            continue;
        }
        let key: Vec<u64> = group_idx.iter().map(|&i| rel.value(row, i)).collect();
        for (agg, grouped) in plan.aggs.iter().zip(per_agg.iter_mut()) {
            let v = phys_row_value(agg, rel, row)?;
            grouped
                .entry(key.clone())
                .and_modify(|acc| *acc = agg.func.merge(*acc, v))
                .or_insert(v);
        }
    }
    Ok(per_agg)
}

/// Reference (row-at-a-time) execution of a query.
///
/// Returns the grouped multi-column answer; a query without GROUP BY
/// yields one entry keyed by the empty vector. Groups with no matching
/// rows are absent (matching SQL semantics) — including for `COUNT`:
/// with nothing selected the answer is empty, not a zero row.
///
/// # Errors
///
/// Propagates resolution and evaluation failures.
pub fn run_oracle(query: &Query, rel: &Relation) -> Result<MultiGrouped, DbError> {
    let per_agg = run_oracle_physical(query, rel)?;
    Ok(query.physical_plan()?.finalize(&per_agg))
}

/// The paper's "total subgroups" (Table II): how many subgroups could
/// potentially exist given the query and database contents.
///
/// For each GROUP BY attribute, count the distinct values it takes among
/// rows satisfying the filter atoms *of the same dimension* (attributes
/// share a dimension when their names share the relation prefix before
/// the first `_`: `p_category` constrains `p_brand1`, but not `d_year`);
/// the result is the product across GROUP BY attributes. This captures
/// hierarchy implications — SSB Q2.1's `p_category = 'MFGR#12'` leaves
/// 40 potential brands, giving the paper's 7 × 40 = 280.
///
/// Disjunctive filters take the **union** over DNF branches (a row can
/// satisfy the filter through any branch, so its group values must be
/// covered) — a sound superset, which the PIM-side GROUP BY needs when
/// it aggregates *all* potential subgroups in PIM.
///
/// Returns 0 for a query without GROUP BY.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn potential_subgroups(query: &Query, rel: &Relation) -> Result<u64, DbError> {
    if !query.has_group_by() {
        return Ok(0);
    }
    Ok(group_domains(query, rel)?
        .iter()
        .fold(1u64, |acc, d| acc.saturating_mul(d.len().max(1) as u64)))
}

/// Per GROUP BY attribute, the distinct values it can take under the
/// query's same-dimension constraints (see [`potential_subgroups`]);
/// their cross product enumerates every potential subgroup key — which
/// the PIM engine needs when it decides to aggregate *all* subgroups in
/// PIM, including ones the sample never saw.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn group_domains(query: &Query, rel: &Relation) -> Result<Vec<Vec<u64>>, DbError> {
    let prefix = |name: &str| name.split('_').next().unwrap_or("").to_owned();
    let dnf = query.filter.dnf();
    // Resolve each disjunct alongside its raw atoms (the raw names carry
    // the dimension prefix).
    let resolved: Vec<Vec<(String, ResolvedAtom)>> = dnf
        .iter()
        .map(|conj| {
            conj.iter()
                .map(|a| Ok((prefix(a.attr()), a.resolve(rel.schema())?)))
                .collect::<Result<Vec<_>, DbError>>()
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::with_capacity(query.group_by.len());
    for name in &query.group_by {
        let idx = rel.schema().index_of(name)?;
        let dim = prefix(name);
        let mut seen = std::collections::BTreeSet::new();
        for conj in &resolved {
            let constraints: Vec<&ResolvedAtom> =
                conj.iter().filter(|(p, _)| *p == dim).map(|(_, a)| a).collect();
            for row in 0..rel.len() {
                if constraints.iter().all(|a| a.matches(rel, row)) {
                    seen.insert(rel.value(row, idx));
                }
            }
        }
        out.push(seen.into_iter().collect());
    }
    Ok(out)
}

/// Merge one partial grouped result into an accumulator with the given
/// physical component.
///
/// This is the reduce side of sharded (scatter–gather) execution: each
/// shard aggregates its own disjoint slice of the records, and because
/// SUM (wrapping), MIN, MAX and COUNT (addition) are commutative and
/// associative, folding the per-shard partials in any order reproduces
/// the single-engine answer bit-exactly. `AVG` never merges directly —
/// it is derived from merged SUM + COUNT components afterwards
/// ([`crate::plan::PhysicalPlan::finalize`]).
pub fn merge_grouped_into(acc: &mut GroupedResult, part: GroupedResult, func: PhysFunc) {
    for (key, v) in part {
        acc.entry(key).and_modify(|a| *a = func.merge(*a, v)).or_insert(v);
    }
}

/// [`merge_grouped_into`] from a borrowed partial: clones only the
/// keys that are new to the accumulator, not the whole map — the
/// cluster gather path merges many shard partials per query and must
/// not deep-copy each one first.
pub fn merge_grouped_ref_into(acc: &mut GroupedResult, part: &GroupedResult, func: PhysFunc) {
    for (key, v) in part {
        match acc.get_mut(key) {
            Some(a) => *a = func.merge(*a, *v),
            None => {
                acc.insert(key.clone(), *v);
            }
        }
    }
}

/// Fold any number of partial grouped results (see
/// [`merge_grouped_into`]).
pub fn merge_grouped<I>(parts: I, func: PhysFunc) -> GroupedResult
where
    I: IntoIterator<Item = GroupedResult>,
{
    let mut acc = GroupedResult::new();
    for part in parts {
        merge_grouped_into(&mut acc, part, func);
    }
    acc
}

/// Number of distinct group keys among rows matching the filter (the
/// non-empty subgroups; `run_oracle(..).len()` without the aggregates).
///
/// # Errors
///
/// Propagates resolution failures.
pub fn occupied_subgroups(query: &Query, rel: &Relation) -> Result<u64, DbError> {
    Ok(run_oracle(query, rel)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::col;
    use crate::plan::{AggExpr, AggFunc, Atom, SelectItem};
    use crate::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("g", 4),
                Attribute::numeric("h", 4),
                Attribute::numeric("v", 8),
            ],
        );
        let mut rel = Relation::new(schema);
        // g in {0,1,2}, h in {0,1}, v = 10*row
        for row in 0..12u64 {
            rel.push_row(&[row % 3, row % 2, row * 10]).unwrap();
        }
        rel
    }

    fn query(filter: Vec<Atom>, group_by: Vec<&str>) -> Query {
        Query::single(
            "t",
            filter,
            group_by.into_iter().map(String::from).collect(),
            AggFunc::Sum,
            AggExpr::attr("v"),
        )
    }

    #[test]
    fn oracle_groups_and_sums() {
        let rel = rel();
        let q = query(vec![], vec!["g"]);
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out.len(), 3);
        // rows with g=0: 0,3,6,9 → v = 0+30+60+90
        assert_eq!(out[&vec![0u64]], vec![180]);
    }

    #[test]
    fn oracle_without_group_by_uses_empty_key() {
        let rel = rel();
        let q = query(vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }], vec![]);
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[&Vec::<u64>::new()], vec![10 + 20]);
        assert_eq!(column(&out, 0)[&Vec::<u64>::new()], 30);
    }

    #[test]
    fn selectivity_fraction() {
        let rel = rel();
        let q = query(vec![Atom::Eq { attr: "h".into(), value: 0u64.into() }], vec![]);
        assert!((selectivity(&q, &rel).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjunctive_filter_matches_either_branch() {
        let rel = rel();
        let q = Query::select([SelectItem::count("n")])
            .filter(col("v").lt(20u64).or(col("v").gt(90u64)))
            .build_unchecked();
        // rows 0,1 (v=0,10) plus rows 10,11 (v=100,110)
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out[&Vec::<u64>::new()], vec![4]);
        assert!((selectivity(&q, &rel).unwrap() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn multi_aggregate_oracle_including_avg() {
        let rel = rel();
        let q = Query::select([
            SelectItem::sum("total", AggExpr::attr("v")),
            SelectItem::count("n"),
            SelectItem::avg("mean", AggExpr::attr("v")),
            SelectItem::min("lo", AggExpr::attr("v")),
            SelectItem::max("hi", AggExpr::attr("v")),
        ])
        .group_by(["h"])
        .build_unchecked();
        let out = run_oracle(&q, &rel).unwrap();
        // h=0: rows 0,2,4,6,8,10 → v = 0,20,…,100
        assert_eq!(out[&vec![0u64]], vec![300, 6, 50, 0, 100]);
        // h=1: rows 1,3,…,11 → v = 10,30,…,110
        assert_eq!(out[&vec![1u64]], vec![360, 6, 60, 10, 110]);
    }

    #[test]
    fn count_of_empty_selection_is_an_empty_answer() {
        let rel = rel();
        let q = Query::select([SelectItem::count("n")])
            .filter(col("v").gt(10_000u64))
            .build_unchecked();
        assert!(run_oracle(&q, &rel).unwrap().is_empty());
    }

    #[test]
    fn potential_subgroups_product_of_constrained_domains() {
        let rel = rel();
        // unconstrained: 3 g-values × 2 h-values
        assert_eq!(potential_subgroups(&query(vec![], vec!["g", "h"]), &rel).unwrap(), 6);
        // constrain g to {0,1}: 2 × 2
        let q = query(
            vec![Atom::In { attr: "g".into(), values: vec![0u64.into(), 1u64.into()] }],
            vec!["g", "h"],
        );
        assert_eq!(potential_subgroups(&q, &rel).unwrap(), 4);
        // no group-by → 0
        assert_eq!(potential_subgroups(&query(vec![], vec![]), &rel).unwrap(), 0);
    }

    #[test]
    fn group_domains_union_over_disjuncts() {
        let rel = rel();
        // (g = 0) OR (g = 2): the domain must cover both branches.
        let q = Query::select([SelectItem::sum("s", AggExpr::attr("v"))])
            .filter(col("g").eq(0u64).or(col("g").eq(2u64)))
            .group_by(["g"])
            .build_unchecked();
        assert_eq!(group_domains(&q, &rel).unwrap(), vec![vec![0, 2]]);
        assert_eq!(potential_subgroups(&q, &rel).unwrap(), 2);
        // every occupied group is inside the enumerated domain
        let occupied = run_oracle(&q, &rel).unwrap();
        for key in occupied.keys() {
            assert!([0u64, 2].contains(&key[0]));
        }
    }

    #[test]
    fn occupied_can_be_less_than_potential() {
        let rel = rel();
        // filter keeps only rows 0..2 → g keys {0,1,2}, h keys {0,1} but
        // only 3 (g,h) combos occupied
        let q = query(vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }], vec!["g", "h"]);
        assert_eq!(occupied_subgroups(&q, &rel).unwrap(), 3);
        assert_eq!(potential_subgroups(&q, &rel).unwrap(), 6);
    }

    #[test]
    fn merged_partitions_equal_whole() {
        let rel = rel();
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count, AggFunc::Avg] {
            let mut q = query(vec![Atom::Gt { attr: "v".into(), value: 15u64.into() }], vec!["g"]);
            q.select[0].func = func;
            let whole = run_oracle(&q, &rel).unwrap();
            let plan = q.physical_plan().unwrap();
            let parts = rel.partition_by(3, |row| row % 3).unwrap();
            // merge each physical component across partitions, then derive
            let mut merged: Vec<GroupedResult> = vec![GroupedResult::new(); plan.aggs.len()];
            for p in &parts {
                let partial = run_oracle_physical(&q, p).unwrap();
                for (acc, (part, agg)) in merged.iter_mut().zip(partial.into_iter().zip(&plan.aggs))
                {
                    merge_grouped_into(acc, part, agg.func);
                }
            }
            assert_eq!(plan.finalize(&merged), whole, "{func:?}");
        }
    }

    #[test]
    fn merge_into_is_commutative() {
        let mut a = GroupedResult::new();
        a.insert(vec![1], 10);
        a.insert(vec![2], 5);
        let mut b = GroupedResult::new();
        b.insert(vec![2], 7);
        b.insert(vec![3], 1);
        let ab = merge_grouped([a.clone(), b.clone()], PhysFunc::Sum);
        let ba = merge_grouped([b, a], PhysFunc::Sum);
        assert_eq!(ab, ba);
        assert_eq!(ab[&vec![2u64]], 12);
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn count_partials_merge_by_addition() {
        let mut a = GroupedResult::new();
        a.insert(vec![1], 4);
        let mut b = GroupedResult::new();
        b.insert(vec![1], 2);
        b.insert(vec![2], 9);
        let merged = merge_grouped([a, b], PhysFunc::Count);
        assert_eq!(merged[&vec![1u64]], 6);
        assert_eq!(merged[&vec![2u64]], 9);
    }

    #[test]
    fn min_max_oracle() {
        let rel = rel();
        let mut q = query(vec![], vec!["h"]);
        q.select[0].func = AggFunc::Min;
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out[&vec![0u64]], vec![0]);
        assert_eq!(out[&vec![1u64]], vec![10]);
        q.select[0].func = AggFunc::Max;
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out[&vec![0u64]], vec![100]);
        assert_eq!(out[&vec![1u64]], vec![110]);
    }
}
