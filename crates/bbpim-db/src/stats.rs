//! Query oracles: reference execution, selectivity, subgroup counts.
//!
//! These row-at-a-time evaluators are the ground truth the PIM engine
//! and the column-store baseline are tested against, and they produce
//! the per-query statistics of the paper's Table II (selectivity, total
//! potential subgroups).

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::plan::{Query, ResolvedAtom};
use crate::relation::Relation;

/// Result of a (group-by) aggregation: group key values → aggregate.
pub type GroupedResult = BTreeMap<Vec<u64>, u64>;

/// Evaluate the resolved conjunction on one row.
pub fn row_matches(atoms: &[ResolvedAtom], rel: &Relation, row: usize) -> bool {
    atoms.iter().all(|a| a.matches(rel, row))
}

/// The selection bit-vector of a query's filter.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn filter_bitvec(query: &Query, rel: &Relation) -> Result<Vec<bool>, DbError> {
    let atoms = query.resolve_filter(rel.schema())?;
    Ok((0..rel.len()).map(|r| row_matches(&atoms, rel, r)).collect())
}

/// Selectivity: fraction of rows passing the filter.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn selectivity(query: &Query, rel: &Relation) -> Result<f64, DbError> {
    if rel.is_empty() {
        return Ok(0.0);
    }
    let bits = filter_bitvec(query, rel)?;
    Ok(bits.iter().filter(|b| **b).count() as f64 / rel.len() as f64)
}

/// Reference (row-at-a-time) execution of a query.
///
/// Returns the grouped aggregates; a query without GROUP BY yields one
/// entry keyed by the empty vector. Groups with no matching rows are
/// absent (matching SQL semantics).
///
/// # Errors
///
/// Propagates resolution and evaluation failures.
pub fn run_oracle(query: &Query, rel: &Relation) -> Result<GroupedResult, DbError> {
    let atoms = query.resolve_filter(rel.schema())?;
    let group_idx: Vec<usize> =
        query.group_by.iter().map(|name| rel.schema().index_of(name)).collect::<Result<_, _>>()?;
    let mut out = GroupedResult::new();
    for row in 0..rel.len() {
        if !row_matches(&atoms, rel, row) {
            continue;
        }
        let key: Vec<u64> = group_idx.iter().map(|&i| rel.value(row, i)).collect();
        let v = query.agg_expr.eval(rel, row)?;
        out.entry(key)
            .and_modify(|acc| {
                *acc = match query.agg_func {
                    crate::plan::AggFunc::Sum => acc.wrapping_add(v),
                    crate::plan::AggFunc::Min => (*acc).min(v),
                    crate::plan::AggFunc::Max => (*acc).max(v),
                }
            })
            .or_insert(v);
    }
    Ok(out)
}

/// The paper's "total subgroups" (Table II): how many subgroups could
/// potentially exist given the query and database contents.
///
/// For each GROUP BY attribute, count the distinct values it takes among
/// rows satisfying the filter atoms *of the same dimension* (attributes
/// share a dimension when their names share the relation prefix before
/// the first `_`: `p_category` constrains `p_brand1`, but not `d_year`);
/// the result is the product across GROUP BY attributes. This captures
/// hierarchy implications — SSB Q2.1's `p_category = 'MFGR#12'` leaves
/// 40 potential brands, giving the paper's 7 × 40 = 280.
///
/// Returns 0 for a query without GROUP BY.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn potential_subgroups(query: &Query, rel: &Relation) -> Result<u64, DbError> {
    if !query.has_group_by() {
        return Ok(0);
    }
    Ok(group_domains(query, rel)?
        .iter()
        .fold(1u64, |acc, d| acc.saturating_mul(d.len().max(1) as u64)))
}

/// Per GROUP BY attribute, the distinct values it can take under the
/// query's same-dimension constraints (see [`potential_subgroups`]);
/// their cross product enumerates every potential subgroup key — which
/// the PIM engine needs when it decides to aggregate *all* subgroups in
/// PIM, including ones the sample never saw.
///
/// # Errors
///
/// Propagates resolution failures.
pub fn group_domains(query: &Query, rel: &Relation) -> Result<Vec<Vec<u64>>, DbError> {
    let prefix = |name: &str| name.split('_').next().unwrap_or("").to_owned();
    let atoms = query.resolve_filter(rel.schema())?;
    let atom_prefixes: Vec<String> = query.filter.iter().map(|a| prefix(a.attr())).collect();
    let mut out = Vec::with_capacity(query.group_by.len());
    for name in &query.group_by {
        let idx = rel.schema().index_of(name)?;
        let dim = prefix(name);
        let constraints: Vec<&ResolvedAtom> =
            atoms.iter().zip(&atom_prefixes).filter(|(_, p)| **p == dim).map(|(a, _)| a).collect();
        let mut seen = std::collections::BTreeSet::new();
        for row in 0..rel.len() {
            if constraints.iter().all(|a| a.matches(rel, row)) {
                seen.insert(rel.value(row, idx));
            }
        }
        out.push(seen.into_iter().collect());
    }
    Ok(out)
}

/// Merge one partial grouped result into an accumulator with the given
/// aggregate function.
///
/// This is the reduce side of sharded (scatter–gather) execution: each
/// shard aggregates its own disjoint slice of the records, and because
/// SUM (wrapping), MIN and MAX are commutative and associative, folding
/// the per-shard partials in any order reproduces the single-engine
/// answer bit-exactly. COUNT partials (e.g. per-shard selected-record
/// counts) merge by plain addition and need no helper.
pub fn merge_grouped_into(
    acc: &mut GroupedResult,
    part: GroupedResult,
    func: crate::plan::AggFunc,
) {
    for (key, v) in part {
        acc.entry(key)
            .and_modify(|a| {
                *a = match func {
                    crate::plan::AggFunc::Sum => a.wrapping_add(v),
                    crate::plan::AggFunc::Min => (*a).min(v),
                    crate::plan::AggFunc::Max => (*a).max(v),
                }
            })
            .or_insert(v);
    }
}

/// Fold any number of partial grouped results (see
/// [`merge_grouped_into`]).
pub fn merge_grouped<I>(parts: I, func: crate::plan::AggFunc) -> GroupedResult
where
    I: IntoIterator<Item = GroupedResult>,
{
    let mut acc = GroupedResult::new();
    for part in parts {
        merge_grouped_into(&mut acc, part, func);
    }
    acc
}

/// Number of distinct group keys among rows matching the filter (the
/// non-empty subgroups; `run_oracle(..).len()` without the aggregates).
///
/// # Errors
///
/// Propagates resolution failures.
pub fn occupied_subgroups(query: &Query, rel: &Relation) -> Result<u64, DbError> {
    Ok(run_oracle(query, rel)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggExpr, AggFunc, Atom};
    use crate::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("g", 4),
                Attribute::numeric("h", 4),
                Attribute::numeric("v", 8),
            ],
        );
        let mut rel = Relation::new(schema);
        // g in {0,1,2}, h in {0,1}, v = 10*row
        for row in 0..12u64 {
            rel.push_row(&[row % 3, row % 2, row * 10]).unwrap();
        }
        rel
    }

    fn query(filter: Vec<Atom>, group_by: Vec<&str>) -> Query {
        Query {
            id: "t".into(),
            filter,
            group_by: group_by.into_iter().map(String::from).collect(),
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("v".into()),
        }
    }

    #[test]
    fn oracle_groups_and_sums() {
        let rel = rel();
        let q = query(vec![], vec!["g"]);
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out.len(), 3);
        // rows with g=0: 0,3,6,9 → v = 0+30+60+90
        assert_eq!(out[&vec![0u64]], 180);
    }

    #[test]
    fn oracle_without_group_by_uses_empty_key() {
        let rel = rel();
        let q = query(vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }], vec![]);
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[&Vec::<u64>::new()], 10 + 20);
    }

    #[test]
    fn selectivity_fraction() {
        let rel = rel();
        let q = query(vec![Atom::Eq { attr: "h".into(), value: 0u64.into() }], vec![]);
        assert!((selectivity(&q, &rel).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn potential_subgroups_product_of_constrained_domains() {
        let rel = rel();
        // unconstrained: 3 g-values × 2 h-values
        assert_eq!(potential_subgroups(&query(vec![], vec!["g", "h"]), &rel).unwrap(), 6);
        // constrain g to {0,1}: 2 × 2
        let q = query(
            vec![Atom::In { attr: "g".into(), values: vec![0u64.into(), 1u64.into()] }],
            vec!["g", "h"],
        );
        assert_eq!(potential_subgroups(&q, &rel).unwrap(), 4);
        // no group-by → 0
        assert_eq!(potential_subgroups(&query(vec![], vec![]), &rel).unwrap(), 0);
    }

    #[test]
    fn occupied_can_be_less_than_potential() {
        let rel = rel();
        // filter keeps only rows 0..2 → g keys {0,1,2}, h keys {0,1} but
        // only 3 (g,h) combos occupied
        let q = query(vec![Atom::Lt { attr: "v".into(), value: 30u64.into() }], vec!["g", "h"]);
        assert_eq!(occupied_subgroups(&q, &rel).unwrap(), 3);
        assert_eq!(potential_subgroups(&q, &rel).unwrap(), 6);
    }

    #[test]
    fn merged_partitions_equal_whole() {
        let rel = rel();
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let mut q = query(vec![Atom::Gt { attr: "v".into(), value: 15u64.into() }], vec!["g"]);
            q.agg_func = func;
            let whole = run_oracle(&q, &rel).unwrap();
            let parts = rel.partition_by(3, |row| row % 3).unwrap();
            let partials: Vec<GroupedResult> =
                parts.iter().map(|p| run_oracle(&q, p).unwrap()).collect();
            assert_eq!(merge_grouped(partials, func), whole, "{func:?}");
        }
    }

    #[test]
    fn merge_into_is_commutative() {
        let mut a = GroupedResult::new();
        a.insert(vec![1], 10);
        a.insert(vec![2], 5);
        let mut b = GroupedResult::new();
        b.insert(vec![2], 7);
        b.insert(vec![3], 1);
        let ab = merge_grouped([a.clone(), b.clone()], AggFunc::Sum);
        let ba = merge_grouped([b, a], AggFunc::Sum);
        assert_eq!(ab, ba);
        assert_eq!(ab[&vec![2u64]], 12);
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn min_max_oracle() {
        let rel = rel();
        let mut q = query(vec![], vec!["h"]);
        q.agg_func = AggFunc::Min;
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out[&vec![0u64]], 0);
        assert_eq!(out[&vec![1u64]], 10);
        q.agg_func = AggFunc::Max;
        let out = run_oracle(&q, &rel).unwrap();
        assert_eq!(out[&vec![0u64]], 100);
        assert_eq!(out[&vec![1u64]], 110);
    }
}
