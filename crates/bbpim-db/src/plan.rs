//! Logical query plans.
//!
//! The analytical queries this system runs (all 13 SSB queries among
//! them) share one shape — `SELECT agg(expr) FROM wide WHERE conj
//! [GROUP BY keys]` — captured by [`Query`]. Filters are conjunctions of
//! per-attribute atoms; the aggregate input is an attribute or a
//! two-attribute expression (`extendedprice · discount`,
//! `revenue − supplycost`). String constants are written as strings and
//! resolved to dictionary codes against a concrete schema.

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::Schema;

/// A query constant: numeric, or a string to be dictionary-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Const {
    /// Plain number.
    Num(u64),
    /// Dictionary string (resolved at plan time).
    Str(String),
}

impl From<u64> for Const {
    fn from(v: u64) -> Self {
        Const::Num(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(v.into())
    }
}

/// One conjunct of a filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// `attr = c`
    Eq {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `lo <= attr <= hi` (inclusive)
    Between {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        lo: Const,
        /// Upper bound.
        hi: Const,
    },
    /// `attr < c`
    Lt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr > c`
    Gt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr IN (c…)`
    In {
        /// Attribute name.
        attr: String,
        /// Members.
        values: Vec<Const>,
    },
}

impl Atom {
    /// The attribute this atom constrains.
    pub fn attr(&self) -> &str {
        match self {
            Atom::Eq { attr, .. }
            | Atom::Between { attr, .. }
            | Atom::Lt { attr, .. }
            | Atom::Gt { attr, .. }
            | Atom::In { attr, .. } => attr,
        }
    }

    /// Resolve against a schema: attribute index + encoded constants.
    ///
    /// # Errors
    ///
    /// Unknown attribute, unknown dictionary string, empty `IN`, or
    /// inverted `BETWEEN` bounds.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedAtom, DbError> {
        let idx = schema.index_of(self.attr())?;
        let enc = |c: &Const| -> Result<u64, DbError> {
            match c {
                Const::Num(v) => Ok(*v),
                Const::Str(s) => schema.attrs()[idx].encode_str(s),
            }
        };
        Ok(match self {
            Atom::Eq { value, .. } => ResolvedAtom::Eq { idx, value: enc(value)? },
            Atom::Between { lo, hi, .. } => {
                let (lo, hi) = (enc(lo)?, enc(hi)?);
                if lo > hi {
                    return Err(DbError::InvalidQuery(format!(
                        "BETWEEN bounds inverted on `{}`",
                        self.attr()
                    )));
                }
                ResolvedAtom::Between { idx, lo, hi }
            }
            Atom::Lt { value, .. } => ResolvedAtom::Lt { idx, value: enc(value)? },
            Atom::Gt { value, .. } => ResolvedAtom::Gt { idx, value: enc(value)? },
            Atom::In { values, .. } => {
                if values.is_empty() {
                    return Err(DbError::InvalidQuery(format!("empty IN on `{}`", self.attr())));
                }
                let mut vs = values.iter().map(enc).collect::<Result<Vec<_>, _>>()?;
                vs.sort_unstable();
                vs.dedup();
                ResolvedAtom::In { idx, values: vs }
            }
        })
    }
}

/// An atom with the attribute index and constants resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvedAtom {
    /// `attr = value`
    Eq {
        /// Attribute index in the schema.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `lo <= attr <= hi`
    Between {
        /// Attribute index.
        idx: usize,
        /// Encoded lower bound.
        lo: u64,
        /// Encoded upper bound.
        hi: u64,
    },
    /// `attr < value`
    Lt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr > value`
    Gt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr IN values` (sorted, deduplicated)
    In {
        /// Attribute index.
        idx: usize,
        /// Encoded members.
        values: Vec<u64>,
    },
}

impl ResolvedAtom {
    /// The constrained attribute's index.
    pub fn attr_index(&self) -> usize {
        match self {
            ResolvedAtom::Eq { idx, .. }
            | ResolvedAtom::Between { idx, .. }
            | ResolvedAtom::Lt { idx, .. }
            | ResolvedAtom::Gt { idx, .. }
            | ResolvedAtom::In { idx, .. } => *idx,
        }
    }

    /// Does `value` satisfy this atom?
    pub fn matches_value(&self, v: u64) -> bool {
        match self {
            ResolvedAtom::Eq { value, .. } => v == *value,
            ResolvedAtom::Between { lo, hi, .. } => (*lo..=*hi).contains(&v),
            ResolvedAtom::Lt { value, .. } => v < *value,
            ResolvedAtom::Gt { value, .. } => v > *value,
            ResolvedAtom::In { values, .. } => values.binary_search(&v).is_ok(),
        }
    }

    /// Does row `row` of `rel` satisfy this atom?
    pub fn matches(&self, rel: &Relation, row: usize) -> bool {
        self.matches_value(rel.value(row, self.attr_index()))
    }

    /// The inclusive `[lo, hi]` interval every satisfying value lies in,
    /// or `None` when the atom is unsatisfiable (`< 0`, `> u64::MAX`).
    ///
    /// For `In` the interval is the envelope of the member set — a sound
    /// over-approximation; [`ResolvedAtom::can_match_range`] is exact.
    pub fn bounds(&self) -> Option<(u64, u64)> {
        match self {
            ResolvedAtom::Eq { value, .. } => Some((*value, *value)),
            ResolvedAtom::Between { lo, hi, .. } => Some((*lo, *hi)),
            ResolvedAtom::Lt { value, .. } => value.checked_sub(1).map(|hi| (0, hi)),
            ResolvedAtom::Gt { value, .. } => value.checked_add(1).map(|lo| (lo, u64::MAX)),
            ResolvedAtom::In { values, .. } => {
                // resolve() guarantees a sorted, non-empty member list
                Some((*values.first()?, *values.last()?))
            }
        }
    }

    /// Could *any* value in the inclusive `[lo, hi]` range satisfy this
    /// atom? Exact (for `In`, checks actual membership in the range) —
    /// the zone-pruning primitive: `false` proves a zone whose attribute
    /// spans `[lo, hi]` holds no matching record.
    pub fn can_match_range(&self, lo: u64, hi: u64) -> bool {
        match self {
            ResolvedAtom::Eq { value, .. } => (lo..=hi).contains(value),
            ResolvedAtom::Between { lo: alo, hi: ahi, .. } => *alo <= hi && *ahi >= lo,
            ResolvedAtom::Lt { value, .. } => lo < *value,
            ResolvedAtom::Gt { value, .. } => hi > *value,
            ResolvedAtom::In { values, .. } => {
                let first_ge = values.partition_point(|v| *v < lo);
                values.get(first_ge).is_some_and(|v| *v <= hi)
            }
        }
    }
}

/// A query conjunction's per-attribute bound intervals, extracted from
/// resolved atoms — the logical side of the physical planner.
///
/// `from_atoms` intersects each attribute's [`ResolvedAtom::bounds`];
/// an empty intersection (or an unsatisfiable atom) marks the whole
/// conjunction unsatisfiable. [`FilterBounds::can_match`] then tests a
/// [`ZoneMap`] zone: only when *every* atom could be satisfied by some
/// value in the zone's range must the zone be scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterBounds {
    atoms: Vec<ResolvedAtom>,
    satisfiable: bool,
}

use crate::zonemap::ZoneMap;

impl FilterBounds {
    /// Extract the bounds of a resolved conjunction.
    pub fn from_atoms(atoms: &[ResolvedAtom]) -> Self {
        let mut per_attr: std::collections::BTreeMap<usize, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut satisfiable = true;
        for atom in atoms {
            let Some((lo, hi)) = atom.bounds() else {
                satisfiable = false;
                break;
            };
            let entry = per_attr.entry(atom.attr_index()).or_insert((lo, hi));
            entry.0 = entry.0.max(lo);
            entry.1 = entry.1.min(hi);
            if entry.0 > entry.1 {
                satisfiable = false;
                break;
            }
        }
        FilterBounds { atoms: atoms.to_vec(), satisfiable }
    }

    /// Extract the bounds of a query's filter against a schema.
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn of_query(query: &Query, schema: &Schema) -> Result<Self, DbError> {
        Ok(Self::from_atoms(&query.resolve_filter(schema)?))
    }

    /// False when the interval analysis proved no value assignment can
    /// satisfy the conjunction (every zone may be pruned).
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The atoms the bounds were extracted from.
    pub fn atoms(&self) -> &[ResolvedAtom] {
        &self.atoms
    }

    /// Could a zone summarised by `zone` hold a record satisfying the
    /// conjunction? `false` is a proof of absence (sound to skip);
    /// `true` means the zone must be scanned.
    pub fn can_match(&self, zone: &ZoneMap) -> bool {
        if !self.satisfiable {
            return false;
        }
        self.atoms.iter().all(|atom| match zone.range(atom.attr_index()) {
            // empty zone: no record can match (nothing to scan either)
            None => false,
            Some((lo, hi)) => atom.can_match_range(lo, hi),
        })
    }
}

/// The aggregate's input expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggExpr {
    /// A single attribute.
    Attr(String),
    /// Product of two attributes (e.g. `lo_extendedprice * lo_discount`).
    Mul(String, String),
    /// Difference of two attributes (e.g. `lo_revenue - lo_supplycost`).
    Sub(String, String),
}

impl AggExpr {
    /// The attribute names the expression reads.
    pub fn attrs(&self) -> Vec<&str> {
        match self {
            AggExpr::Attr(a) => vec![a],
            AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => vec![a, b],
        }
    }

    /// Evaluate on one row (used by oracles and host-side aggregation).
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn eval(&self, rel: &Relation, row: usize) -> Result<u64, DbError> {
        Ok(match self {
            AggExpr::Attr(a) => rel.value_by_name(row, a)?,
            AggExpr::Mul(a, b) => {
                rel.value_by_name(row, a)?.wrapping_mul(rel.value_by_name(row, b)?)
            }
            AggExpr::Sub(a, b) => {
                rel.value_by_name(row, a)?.wrapping_sub(rel.value_by_name(row, b)?)
            }
        })
    }
}

/// The aggregate function (the set the aggregation circuit supports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A complete analytical query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier (e.g. `"Q2.1"`).
    pub id: String,
    /// Conjunctive filter.
    pub filter: Vec<Atom>,
    /// GROUP BY attribute names (empty = single aggregate).
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub agg_func: AggFunc,
    /// Aggregate input expression.
    pub agg_expr: AggExpr,
}

impl Query {
    /// Resolve the filter against a schema.
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn resolve_filter(&self, schema: &Schema) -> Result<Vec<ResolvedAtom>, DbError> {
        self.filter.iter().map(|a| a.resolve(schema)).collect()
    }

    /// Does this query have a GROUP BY?
    pub fn has_group_by(&self) -> bool {
        !self.group_by.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::schema::Attribute;

    fn schema_and_rel() -> Relation {
        let d = Dictionary::from_sorted(vec!["AFRICA".into(), "ASIA".into()]).unwrap();
        let schema =
            Schema::new("t", vec![Attribute::numeric("q", 8), Attribute::dict("region", d)]);
        let mut rel = Relation::new(schema);
        for (q, r) in [(5u64, 0u64), (20, 1), (30, 1), (40, 0)] {
            rel.push_row(&[q, r]).unwrap();
        }
        rel
    }

    #[test]
    fn atom_resolution_encodes_strings() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "ASIA".into() };
        let r = atom.resolve(rel.schema()).unwrap();
        assert!(matches!(r, ResolvedAtom::Eq { idx: 1, value: 1 }));
        assert!(!r.matches(&rel, 0));
        assert!(r.matches(&rel, 1));
    }

    #[test]
    fn between_atom_inclusive() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 20u64.into(), hi: 30u64.into() };
        let r = atom.resolve(rel.schema()).unwrap();
        let hits: Vec<bool> = (0..4).map(|i| r.matches(&rel, i)).collect();
        assert_eq!(hits, vec![false, true, true, false]);
    }

    #[test]
    fn in_atom_sorted_and_deduped() {
        let rel = schema_and_rel();
        let atom =
            Atom::In { attr: "q".into(), values: vec![40u64.into(), 5u64.into(), 40u64.into()] };
        match atom.resolve(rel.schema()).unwrap() {
            ResolvedAtom::In { values, .. } => assert_eq!(values, vec![5, 40]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_in_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::In { attr: "q".into(), values: vec![] };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn inverted_between_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 30u64.into(), hi: 20u64.into() };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn unknown_string_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "MARS".into() };
        assert!(matches!(atom.resolve(rel.schema()), Err(DbError::NotInDictionary { .. })));
    }

    #[test]
    fn agg_expr_eval() {
        let rel = schema_and_rel();
        assert_eq!(AggExpr::Attr("q".into()).eval(&rel, 1).unwrap(), 20);
        assert_eq!(AggExpr::Mul("q".into(), "region".into()).eval(&rel, 2).unwrap(), 30);
        assert_eq!(AggExpr::Sub("q".into(), "region".into()).eval(&rel, 3).unwrap(), 40);
    }

    #[test]
    fn atom_bounds_intervals() {
        assert_eq!(ResolvedAtom::Eq { idx: 0, value: 9 }.bounds(), Some((9, 9)));
        assert_eq!(ResolvedAtom::Between { idx: 0, lo: 2, hi: 5 }.bounds(), Some((2, 5)));
        assert_eq!(ResolvedAtom::Lt { idx: 0, value: 4 }.bounds(), Some((0, 3)));
        assert_eq!(ResolvedAtom::Lt { idx: 0, value: 0 }.bounds(), None);
        assert_eq!(ResolvedAtom::Gt { idx: 0, value: 4 }.bounds(), Some((5, u64::MAX)));
        assert_eq!(ResolvedAtom::Gt { idx: 0, value: u64::MAX }.bounds(), None);
        assert_eq!(ResolvedAtom::In { idx: 0, values: vec![3, 8, 20] }.bounds(), Some((3, 20)));
    }

    #[test]
    fn can_match_range_is_exact_for_in() {
        let a = ResolvedAtom::In { idx: 0, values: vec![5, 40] };
        assert!(a.can_match_range(0, 5));
        assert!(a.can_match_range(30, 50));
        // envelope overlaps but no member inside
        assert!(!a.can_match_range(10, 20));
        assert!(!a.can_match_range(41, u64::MAX));
    }

    #[test]
    fn can_match_range_comparisons() {
        assert!(ResolvedAtom::Lt { idx: 0, value: 10 }.can_match_range(9, 100));
        assert!(!ResolvedAtom::Lt { idx: 0, value: 10 }.can_match_range(10, 100));
        assert!(ResolvedAtom::Gt { idx: 0, value: 10 }.can_match_range(0, 11));
        assert!(!ResolvedAtom::Gt { idx: 0, value: 10 }.can_match_range(0, 10));
        assert!(ResolvedAtom::Between { idx: 0, lo: 3, hi: 6 }.can_match_range(6, 9));
        assert!(!ResolvedAtom::Between { idx: 0, lo: 3, hi: 6 }.can_match_range(7, 9));
    }

    #[test]
    fn filter_bounds_intersection_and_zone_test() {
        use crate::zonemap::ZoneMap;
        let atoms = vec![
            ResolvedAtom::Gt { idx: 0, value: 10 },
            ResolvedAtom::Lt { idx: 0, value: 20 },
            ResolvedAtom::Eq { idx: 1, value: 3 },
        ];
        let b = FilterBounds::from_atoms(&atoms);
        assert!(b.satisfiable());
        let mut zone = ZoneMap::empty(2);
        zone.observe_row(&[15, 3]);
        assert!(b.can_match(&zone));
        // zone outside the idx-0 window
        let mut far = ZoneMap::empty(2);
        far.observe_row(&[25, 3]);
        assert!(!b.can_match(&far));
        // zone missing the idx-1 constant
        let mut off = ZoneMap::empty(2);
        off.observe_row(&[15, 4]);
        assert!(!b.can_match(&off));
        // empty zone never matches a constrained filter
        assert!(!b.can_match(&ZoneMap::empty(2)));
        // the empty conjunction matches any zone
        assert!(FilterBounds::from_atoms(&[]).can_match(&ZoneMap::empty(2)));
    }

    #[test]
    fn contradictory_bounds_are_unsatisfiable() {
        let b = FilterBounds::from_atoms(&[
            ResolvedAtom::Gt { idx: 0, value: 20 },
            ResolvedAtom::Lt { idx: 0, value: 10 },
        ]);
        assert!(!b.satisfiable());
        let mut zone = crate::zonemap::ZoneMap::empty(1);
        zone.observe_row(&[15]);
        assert!(!b.can_match(&zone));
        assert!(!FilterBounds::from_atoms(&[ResolvedAtom::Lt { idx: 0, value: 0 }]).satisfiable());
    }

    #[test]
    fn filter_bounds_of_query_resolves_strings() {
        let rel = schema_and_rel();
        let q = Query {
            id: "t".into(),
            filter: vec![Atom::Eq { attr: "region".into(), value: "ASIA".into() }],
            group_by: vec![],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("q".into()),
        };
        let b = FilterBounds::of_query(&q, rel.schema()).unwrap();
        let zone = crate::zonemap::ZoneMap::of(&rel);
        assert!(b.can_match(&zone));
    }

    #[test]
    fn query_resolution() {
        let rel = schema_and_rel();
        let q = Query {
            id: "t1".into(),
            filter: vec![
                Atom::Gt { attr: "q".into(), value: 10u64.into() },
                Atom::Eq { attr: "region".into(), value: "ASIA".into() },
            ],
            group_by: vec!["region".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("q".into()),
        };
        assert!(q.has_group_by());
        assert_eq!(q.resolve_filter(rel.schema()).unwrap().len(), 2);
    }
}
