//! Logical query plans (v2 surface).
//!
//! The analytical queries this system runs (all 13 SSB queries among
//! them) share the shape `SELECT agg₁(expr₁) [, agg₂(expr₂)…] FROM wide
//! WHERE pred [GROUP BY keys]`, captured by [`Query`]:
//!
//! * a **SELECT list** of named aggregates ([`SelectItem`]) — several
//!   aggregates share one planned filter pass, the crossbar-dominant
//!   stage, instead of re-filtering per aggregate;
//! * a **filter tree** ([`Pred`]): atoms combined with `AND`/`OR`,
//!   normalised to disjunctive normal form for execution and for
//!   zone-map pruning (the bounds of an `OR` are the per-attribute
//!   interval union of its branches);
//! * optional **GROUP BY** attribute names.
//!
//! [`AggFunc::Avg`] is *derived*: the engine computes mergeable
//! sum + count components and divides at the host, so sharded partials
//! still merge bit-exactly. [`Query::physical_plan`] performs that
//! decomposition (and deduplicates shared components — `SUM(x)`,
//! `COUNT(*)` and `AVG(x)` in one SELECT list cost two physical
//! aggregates, not four).
//!
//! String constants are written as strings and resolved to dictionary
//! codes against a concrete schema. Queries are built fluently through
//! [`crate::builder`] (`Query::select(...).filter(col("d_year").eq(1993))…`)
//! or directly as struct literals; the pre-v2 single-aggregate shape
//! survives as the deprecated [`LegacyQuery`] shim.

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::{GroupedResult, MultiGrouped};

/// A query constant: numeric, or a string to be dictionary-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Const {
    /// Plain number.
    Num(u64),
    /// Dictionary string (resolved at plan time).
    Str(String),
}

impl From<u64> for Const {
    fn from(v: u64) -> Self {
        Const::Num(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(v.into())
    }
}

impl std::fmt::Display for Const {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Const::Num(v) => write!(f, "{v}"),
            Const::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// One atomic predicate over a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// `attr = c`
    Eq {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `lo <= attr <= hi` (inclusive)
    Between {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        lo: Const,
        /// Upper bound.
        hi: Const,
    },
    /// `attr < c`
    Lt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr > c`
    Gt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr IN (c…)`
    In {
        /// Attribute name.
        attr: String,
        /// Members.
        values: Vec<Const>,
    },
}

impl Atom {
    /// The attribute this atom constrains.
    pub fn attr(&self) -> &str {
        match self {
            Atom::Eq { attr, .. }
            | Atom::Between { attr, .. }
            | Atom::Lt { attr, .. }
            | Atom::Gt { attr, .. }
            | Atom::In { attr, .. } => attr,
        }
    }

    /// Resolve against a schema: attribute index + encoded constants.
    ///
    /// # Errors
    ///
    /// Unknown attribute, unknown dictionary string, empty `IN`, or
    /// inverted `BETWEEN` bounds.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedAtom, DbError> {
        let idx = schema.index_of(self.attr())?;
        let enc = |c: &Const| -> Result<u64, DbError> {
            match c {
                Const::Num(v) => Ok(*v),
                Const::Str(s) => schema.attrs()[idx].encode_str(s),
            }
        };
        Ok(match self {
            Atom::Eq { value, .. } => ResolvedAtom::Eq { idx, value: enc(value)? },
            Atom::Between { lo, hi, .. } => {
                let (lo, hi) = (enc(lo)?, enc(hi)?);
                if lo > hi {
                    return Err(DbError::InvalidQuery(format!(
                        "BETWEEN bounds inverted on `{}`",
                        self.attr()
                    )));
                }
                ResolvedAtom::Between { idx, lo, hi }
            }
            Atom::Lt { value, .. } => ResolvedAtom::Lt { idx, value: enc(value)? },
            Atom::Gt { value, .. } => ResolvedAtom::Gt { idx, value: enc(value)? },
            Atom::In { values, .. } => {
                if values.is_empty() {
                    return Err(DbError::InvalidQuery(format!("empty IN on `{}`", self.attr())));
                }
                let mut vs = values.iter().map(enc).collect::<Result<Vec<_>, _>>()?;
                vs.sort_unstable();
                vs.dedup();
                ResolvedAtom::In { idx, values: vs }
            }
        })
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Atom::Eq { attr, value } => write!(f, "{attr} = {value}"),
            Atom::Between { attr, lo, hi } => write!(f, "{attr} BETWEEN {lo} AND {hi}"),
            Atom::Lt { attr, value } => write!(f, "{attr} < {value}"),
            Atom::Gt { attr, value } => write!(f, "{attr} > {value}"),
            Atom::In { attr, values } => {
                write!(f, "{attr} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A filter tree: atoms combined with `AND` / `OR`.
///
/// Execution and pruning work on the disjunctive normal form
/// ([`Pred::dnf`]): an OR of conjunctions. `And(vec![])` is the trivial
/// `TRUE` filter; `Or(vec![])` is `FALSE` (matches nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pred {
    /// A single atomic predicate.
    Atom(Atom),
    /// Every child must hold (empty = `TRUE`).
    And(Vec<Pred>),
    /// At least one child must hold (empty = `FALSE`).
    Or(Vec<Pred>),
}

impl From<Atom> for Pred {
    fn from(atom: Atom) -> Self {
        Pred::Atom(atom)
    }
}

impl Pred {
    /// The trivial filter that matches every record.
    pub fn always() -> Pred {
        Pred::And(Vec::new())
    }

    /// A conjunction of atoms — the pre-v2 filter shape.
    pub fn all(atoms: Vec<Atom>) -> Pred {
        Pred::And(atoms.into_iter().map(Pred::Atom).collect())
    }

    /// `self AND other` (flattens nested ANDs).
    pub fn and(self, other: impl Into<Pred>) -> Pred {
        let other = other.into();
        match self {
            Pred::And(mut children) => {
                children.push(other);
                Pred::And(children)
            }
            me => Pred::And(vec![me, other]),
        }
    }

    /// `self OR other` (flattens nested ORs).
    pub fn or(self, other: impl Into<Pred>) -> Pred {
        let other = other.into();
        match self {
            Pred::Or(mut children) => {
                children.push(other);
                Pred::Or(children)
            }
            me => Pred::Or(vec![me, other]),
        }
    }

    /// Is this the trivial always-true filter?
    pub fn is_always(&self) -> bool {
        match self {
            Pred::And(children) => children.iter().all(Pred::is_always),
            _ => false,
        }
    }

    /// Normalise to disjunctive normal form: an OR of conjunctions of
    /// atoms. One empty conjunction means `TRUE`; zero disjuncts means
    /// `FALSE`. Distribution can multiply terms (`(a OR b) AND (c OR
    /// d)` → 4 conjunctions) — fine for analytical filters, which have
    /// a handful of branches.
    pub fn dnf(&self) -> Vec<Vec<Atom>> {
        match self {
            Pred::Atom(atom) => vec![vec![atom.clone()]],
            Pred::And(children) => {
                let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
                for child in children {
                    let child_dnf = child.dnf();
                    let mut next = Vec::with_capacity(acc.len() * child_dnf.len().max(1));
                    for conj in &acc {
                        for extra in &child_dnf {
                            let mut joined = conj.clone();
                            joined.extend(extra.iter().cloned());
                            next.push(joined);
                        }
                    }
                    acc = next; // an unsatisfiable child empties the product
                }
                acc
            }
            Pred::Or(children) => children.iter().flat_map(Pred::dnf).collect(),
        }
    }

    /// Resolve the DNF against a schema (per-disjunct resolved
    /// conjunctions).
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn resolve_dnf(&self, schema: &Schema) -> Result<Vec<Vec<ResolvedAtom>>, DbError> {
        self.dnf().iter().map(|conj| conj.iter().map(|a| a.resolve(schema)).collect()).collect()
    }

    /// Every atom anywhere in the tree (duplicates possible when a DNF
    /// expansion would repeat them).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Pred::Atom(atom) => out.push(atom),
            Pred::And(children) | Pred::Or(children) => {
                for c in children {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Mutable access to every atom in the tree (e.g. for constant
    /// re-picking against a concrete instance).
    pub fn atoms_mut(&mut self) -> Vec<&mut Atom> {
        let mut out = Vec::new();
        self.collect_atoms_mut(&mut out);
        out
    }

    fn collect_atoms_mut<'a>(&'a mut self, out: &mut Vec<&'a mut Atom>) {
        match self {
            Pred::Atom(atom) => out.push(atom),
            Pred::And(children) | Pred::Or(children) => {
                for c in children {
                    c.collect_atoms_mut(out);
                }
            }
        }
    }

    /// The atoms of a pure conjunction (`None` when the tree contains an
    /// `OR`) — the shapes UPDATE statements and the legacy API accept.
    pub fn as_conjunction(&self) -> Option<Vec<&Atom>> {
        match self {
            Pred::Atom(atom) => Some(vec![atom]),
            Pred::And(children) => {
                let mut out = Vec::new();
                for c in children {
                    out.extend(c.as_conjunction()?);
                }
                Some(out)
            }
            Pred::Or(_) => None,
        }
    }

    /// Does `row` of `rel` satisfy the filter? (Oracle semantics.)
    ///
    /// # Errors
    ///
    /// Propagates resolution failures.
    pub fn matches_row(&self, rel: &Relation, row: usize) -> Result<bool, DbError> {
        Ok(match self {
            Pred::Atom(atom) => atom.resolve(rel.schema())?.matches(rel, row),
            Pred::And(children) => {
                for c in children {
                    if !c.matches_row(rel, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Pred::Or(children) => {
                for c in children {
                    if c.matches_row(rel, row)? {
                        return Ok(true);
                    }
                }
                false
            }
        })
    }
}

impl std::fmt::Display for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn join(
            f: &mut std::fmt::Formatter<'_>,
            children: &[Pred],
            sep: &str,
            empty: &str,
        ) -> std::fmt::Result {
            if children.is_empty() {
                return write!(f, "{empty}");
            }
            if children.len() == 1 {
                return write!(f, "{}", children[0]);
            }
            write!(f, "(")?;
            for (i, c) in children.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")
        }
        match self {
            Pred::Atom(atom) => write!(f, "{atom}"),
            Pred::And(children) => join(f, children, "AND", "TRUE"),
            Pred::Or(children) => join(f, children, "OR", "FALSE"),
        }
    }
}

/// An atom with the attribute index and constants resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvedAtom {
    /// `attr = value`
    Eq {
        /// Attribute index in the schema.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `lo <= attr <= hi`
    Between {
        /// Attribute index.
        idx: usize,
        /// Encoded lower bound.
        lo: u64,
        /// Encoded upper bound.
        hi: u64,
    },
    /// `attr < value`
    Lt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr > value`
    Gt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr IN values` (sorted, deduplicated)
    In {
        /// Attribute index.
        idx: usize,
        /// Encoded members.
        values: Vec<u64>,
    },
}

impl ResolvedAtom {
    /// The constrained attribute's index.
    pub fn attr_index(&self) -> usize {
        match self {
            ResolvedAtom::Eq { idx, .. }
            | ResolvedAtom::Between { idx, .. }
            | ResolvedAtom::Lt { idx, .. }
            | ResolvedAtom::Gt { idx, .. }
            | ResolvedAtom::In { idx, .. } => *idx,
        }
    }

    /// Does `value` satisfy this atom?
    pub fn matches_value(&self, v: u64) -> bool {
        match self {
            ResolvedAtom::Eq { value, .. } => v == *value,
            ResolvedAtom::Between { lo, hi, .. } => (*lo..=*hi).contains(&v),
            ResolvedAtom::Lt { value, .. } => v < *value,
            ResolvedAtom::Gt { value, .. } => v > *value,
            ResolvedAtom::In { values, .. } => values.binary_search(&v).is_ok(),
        }
    }

    /// Does row `row` of `rel` satisfy this atom?
    pub fn matches(&self, rel: &Relation, row: usize) -> bool {
        self.matches_value(rel.value(row, self.attr_index()))
    }

    /// The inclusive `[lo, hi]` interval every satisfying value lies in,
    /// or `None` when the atom is unsatisfiable (`< 0`, `> u64::MAX`).
    ///
    /// For `In` the interval is the envelope of the member set — a sound
    /// over-approximation; [`ResolvedAtom::can_match_range`] is exact.
    pub fn bounds(&self) -> Option<(u64, u64)> {
        match self {
            ResolvedAtom::Eq { value, .. } => Some((*value, *value)),
            ResolvedAtom::Between { lo, hi, .. } => Some((*lo, *hi)),
            ResolvedAtom::Lt { value, .. } => value.checked_sub(1).map(|hi| (0, hi)),
            ResolvedAtom::Gt { value, .. } => value.checked_add(1).map(|lo| (lo, u64::MAX)),
            ResolvedAtom::In { values, .. } => {
                // resolve() guarantees a sorted, non-empty member list
                Some((*values.first()?, *values.last()?))
            }
        }
    }

    /// Could *any* value in the inclusive `[lo, hi]` range satisfy this
    /// atom? Exact (for `In`, checks actual membership in the range) —
    /// the zone-pruning primitive: `false` proves a zone whose attribute
    /// spans `[lo, hi]` holds no matching record.
    pub fn can_match_range(&self, lo: u64, hi: u64) -> bool {
        match self {
            ResolvedAtom::Eq { value, .. } => (lo..=hi).contains(value),
            ResolvedAtom::Between { lo: alo, hi: ahi, .. } => *alo <= hi && *ahi >= lo,
            ResolvedAtom::Lt { value, .. } => lo < *value,
            ResolvedAtom::Gt { value, .. } => hi > *value,
            ResolvedAtom::In { values, .. } => {
                let first_ge = values.partition_point(|v| *v < lo);
                values.get(first_ge).is_some_and(|v| *v <= hi)
            }
        }
    }
}

use crate::zonemap::ZoneMap;

/// One DNF disjunct's per-attribute bound intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctBounds {
    atoms: Vec<ResolvedAtom>,
    satisfiable: bool,
}

impl ConjunctBounds {
    /// Extract the bounds of one resolved conjunction.
    pub fn from_atoms(atoms: &[ResolvedAtom]) -> Self {
        let mut per_attr: std::collections::BTreeMap<usize, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut satisfiable = true;
        for atom in atoms {
            let Some((lo, hi)) = atom.bounds() else {
                satisfiable = false;
                break;
            };
            let entry = per_attr.entry(atom.attr_index()).or_insert((lo, hi));
            entry.0 = entry.0.max(lo);
            entry.1 = entry.1.min(hi);
            if entry.0 > entry.1 {
                satisfiable = false;
                break;
            }
        }
        ConjunctBounds { atoms: atoms.to_vec(), satisfiable }
    }

    /// False when the interval analysis proved the conjunction can never
    /// hold.
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The atoms the bounds were extracted from.
    pub fn atoms(&self) -> &[ResolvedAtom] {
        &self.atoms
    }

    /// Could a zone summarised by `zone` hold a record satisfying this
    /// conjunction?
    pub fn can_match(&self, zone: &ZoneMap) -> bool {
        if !self.satisfiable {
            return false;
        }
        self.atoms.iter().all(|atom| match zone.range(atom.attr_index()) {
            // empty zone: no record can match (nothing to scan either)
            None => false,
            Some((lo, hi)) => atom.can_match_range(lo, hi),
        })
    }

    /// Per-attribute intersected `[lo, hi]` intervals (empty when
    /// unsatisfiable).
    pub fn intervals(&self) -> std::collections::BTreeMap<usize, (u64, u64)> {
        let mut per_attr = std::collections::BTreeMap::new();
        if !self.satisfiable {
            return per_attr;
        }
        for atom in &self.atoms {
            if let Some((lo, hi)) = atom.bounds() {
                let entry = per_attr.entry(atom.attr_index()).or_insert((lo, hi));
                entry.0 = entry.0.max(lo);
                entry.1 = entry.1.min(hi);
            }
        }
        per_attr
    }
}

/// A filter's per-attribute bound intervals in DNF — the logical side of
/// the physical planner.
///
/// Each disjunct's atom bounds are intersected
/// ([`ConjunctBounds::from_atoms`]); the whole filter can match a zone
/// when *any* satisfiable disjunct can ([`FilterBounds::can_match`]) —
/// i.e. the bounds of an OR are the per-attribute interval **union** of
/// its branches. `false` remains a proof of absence, so zone-map pruning
/// stays sound under disjunctions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterBounds {
    disjuncts: Vec<ConjunctBounds>,
}

impl FilterBounds {
    /// Bounds of a single resolved conjunction (the pre-v2 shape; also
    /// what UPDATE WHERE clauses use).
    pub fn from_atoms(atoms: &[ResolvedAtom]) -> Self {
        FilterBounds { disjuncts: vec![ConjunctBounds::from_atoms(atoms)] }
    }

    /// Bounds of a resolved DNF (zero disjuncts = `FALSE`).
    pub fn from_dnf(dnf: &[Vec<ResolvedAtom>]) -> Self {
        FilterBounds { disjuncts: dnf.iter().map(|c| ConjunctBounds::from_atoms(c)).collect() }
    }

    /// Extract the bounds of a query's filter against a schema.
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn of_query(query: &Query, schema: &Schema) -> Result<Self, DbError> {
        Ok(Self::from_dnf(&query.resolve_filter(schema)?))
    }

    /// False when the interval analysis proved no value assignment can
    /// satisfy the filter (every zone may be pruned).
    pub fn satisfiable(&self) -> bool {
        self.disjuncts.iter().any(ConjunctBounds::satisfiable)
    }

    /// The per-disjunct bounds.
    pub fn disjuncts(&self) -> &[ConjunctBounds] {
        &self.disjuncts
    }

    /// Could a zone summarised by `zone` hold a matching record?
    /// `false` is a proof of absence (sound to skip); `true` means the
    /// zone must be scanned.
    pub fn can_match(&self, zone: &ZoneMap) -> bool {
        self.disjuncts.iter().any(|d| d.can_match(zone))
    }

    /// Per-attribute interval union across satisfiable disjuncts
    /// (overlapping/adjacent intervals coalesced) — the `EXPLAIN`
    /// rendering of the pruning bounds. Only attributes constrained in
    /// **every** satisfiable disjunct appear: an attribute left free by
    /// some branch admits any value through that branch, so no union
    /// bound on it is actually enforced (reporting one would overstate
    /// the pruning).
    pub fn intervals(&self) -> std::collections::BTreeMap<usize, Vec<(u64, u64)>> {
        let live: Vec<&ConjunctBounds> =
            self.disjuncts.iter().filter(|d| d.satisfiable()).collect();
        let mut union: std::collections::BTreeMap<usize, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for disjunct in &live {
            for (idx, iv) in disjunct.intervals() {
                union.entry(idx).or_default().push(iv);
            }
        }
        // keep attributes every live disjunct constrains
        union.retain(|idx, _| live.iter().all(|d| d.intervals().contains_key(idx)));
        for intervals in union.values_mut() {
            intervals.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
            for &(lo, hi) in intervals.iter() {
                match merged.last_mut() {
                    Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            *intervals = merged;
        }
        union
    }
}

/// The aggregate's input expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggExpr {
    /// A single attribute.
    Attr(String),
    /// Product of two attributes (e.g. `lo_extendedprice * lo_discount`).
    Mul(String, String),
    /// Difference of two attributes (e.g. `lo_revenue - lo_supplycost`).
    Sub(String, String),
}

impl AggExpr {
    /// A single attribute.
    pub fn attr(name: impl Into<String>) -> AggExpr {
        AggExpr::Attr(name.into())
    }

    /// Product of two attributes.
    pub fn mul(a: impl Into<String>, b: impl Into<String>) -> AggExpr {
        AggExpr::Mul(a.into(), b.into())
    }

    /// Difference of two attributes.
    pub fn sub(a: impl Into<String>, b: impl Into<String>) -> AggExpr {
        AggExpr::Sub(a.into(), b.into())
    }

    /// The attribute names the expression reads.
    pub fn attrs(&self) -> Vec<&str> {
        match self {
            AggExpr::Attr(a) => vec![a],
            AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => vec![a, b],
        }
    }

    /// Evaluate on one row (used by oracles and host-side aggregation).
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn eval(&self, rel: &Relation, row: usize) -> Result<u64, DbError> {
        Ok(match self {
            AggExpr::Attr(a) => rel.value_by_name(row, a)?,
            AggExpr::Mul(a, b) => {
                rel.value_by_name(row, a)?.wrapping_mul(rel.value_by_name(row, b)?)
            }
            AggExpr::Sub(a, b) => {
                rel.value_by_name(row, a)?.wrapping_sub(rel.value_by_name(row, b)?)
            }
        })
    }
}

impl std::fmt::Display for AggExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggExpr::Attr(a) => write!(f, "{a}"),
            AggExpr::Mul(a, b) => write!(f, "{a} * {b}"),
            AggExpr::Sub(a, b) => write!(f, "{a} - {b}"),
        }
    }
}

/// The logical aggregate function of one SELECT item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum (wrapping at 64 bits).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of records in the group — needs no input expression (it is
    /// read off the filter mask / aggregation count register).
    Count,
    /// Average = `SUM / COUNT`, integer division at the host; *derived*
    /// from mergeable sum + count components so sharded partials still
    /// merge bit-exactly.
    Avg,
}

impl AggFunc {
    /// SQL-ish label.
    pub fn label(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }
}

/// A *physical*, mergeable aggregate component. `Avg` never appears
/// here — [`Query::physical_plan`] decomposes it into `Sum` + `Count`,
/// and the host derives the quotient after all partials merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysFunc {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Record count (merges by addition, like `Sum`).
    Count,
}

impl PhysFunc {
    /// Merge two partials of this component (commutative and
    /// associative, so shard partials fold in any order bit-exactly).
    pub fn merge(self, a: u64, b: u64) -> u64 {
        match self {
            PhysFunc::Sum | PhysFunc::Count => a.wrapping_add(b),
            PhysFunc::Min => a.min(b),
            PhysFunc::Max => a.max(b),
        }
    }

    /// The merge identity (the value of an empty partial).
    pub fn identity(self) -> u64 {
        match self {
            PhysFunc::Sum | PhysFunc::Count => 0,
            PhysFunc::Min => u64::MAX,
            PhysFunc::Max => 0,
        }
    }
}

/// One physical aggregate the engine actually computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysAgg {
    /// The mergeable component.
    pub func: PhysFunc,
    /// Input expression; `None` for `Count` (it reads only the filter /
    /// group mask).
    pub expr: Option<AggExpr>,
}

impl PhysAgg {
    /// The attribute names this component reads (empty for `Count`).
    pub fn attrs(&self) -> Vec<&str> {
        self.expr.as_ref().map(AggExpr::attrs).unwrap_or_default()
    }
}

/// How one SELECT item's value derives from the physical aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Derivation {
    /// The value of physical aggregate `i`, as computed.
    Direct(usize),
    /// `AVG`: physical sum `i` over physical count `j` (integer
    /// division, performed only after every partial merged).
    Ratio(usize, usize),
}

/// The physical decomposition of a SELECT list: the deduplicated
/// mergeable components plus, per output column, how its value derives
/// from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// Deduplicated physical aggregates, in first-use order.
    pub aggs: Vec<PhysAgg>,
    /// `(output name, derivation)` in SELECT order.
    pub outputs: Vec<(String, Derivation)>,
}

impl PhysicalPlan {
    /// Derive the final per-group output rows from fully merged
    /// per-component grouped values (one [`GroupedResult`] per entry of
    /// [`PhysicalPlan::aggs`], same order). Missing entries take the
    /// component's merge identity — all components run over the same
    /// filtered rows, so in practice every key is present in every
    /// component.
    ///
    /// # Panics
    ///
    /// Panics when `per_agg` has the wrong arity (caller bug).
    pub fn finalize(&self, per_agg: &[GroupedResult]) -> MultiGrouped {
        assert_eq!(per_agg.len(), self.aggs.len(), "one grouped result per physical aggregate");
        let keys: std::collections::BTreeSet<&Vec<u64>> =
            per_agg.iter().flat_map(|g| g.keys()).collect();
        let mut out = MultiGrouped::new();
        for key in keys {
            let row: Vec<u64> = self
                .outputs
                .iter()
                .map(|(_, derivation)| match derivation {
                    Derivation::Direct(i) => {
                        per_agg[*i].get(key).copied().unwrap_or(self.aggs[*i].func.identity())
                    }
                    Derivation::Ratio(sum, count) => {
                        let s = per_agg[*sum].get(key).copied().unwrap_or(0);
                        let c = per_agg[*count].get(key).copied().unwrap_or(0);
                        s.checked_div(c).unwrap_or(0)
                    }
                })
                .collect();
            out.insert(key.clone(), row);
        }
        out
    }

    /// Output column names in SELECT order.
    pub fn column_names(&self) -> Vec<&str> {
        self.outputs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Index of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|(n, _)| n == name)
    }
}

/// One named aggregate of a SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// Output column name (unique within the query).
    pub name: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression; `None` only for [`AggFunc::Count`].
    pub expr: Option<AggExpr>,
}

impl SelectItem {
    /// `SUM(expr) AS name`
    pub fn sum(name: impl Into<String>, expr: AggExpr) -> SelectItem {
        SelectItem { name: name.into(), func: AggFunc::Sum, expr: Some(expr) }
    }

    /// `MIN(expr) AS name`
    pub fn min(name: impl Into<String>, expr: AggExpr) -> SelectItem {
        SelectItem { name: name.into(), func: AggFunc::Min, expr: Some(expr) }
    }

    /// `MAX(expr) AS name`
    pub fn max(name: impl Into<String>, expr: AggExpr) -> SelectItem {
        SelectItem { name: name.into(), func: AggFunc::Max, expr: Some(expr) }
    }

    /// `AVG(expr) AS name` (derived as sum + count, divided at the host).
    pub fn avg(name: impl Into<String>, expr: AggExpr) -> SelectItem {
        SelectItem { name: name.into(), func: AggFunc::Avg, expr: Some(expr) }
    }

    /// `COUNT(*) AS name`
    pub fn count(name: impl Into<String>) -> SelectItem {
        SelectItem { name: name.into(), func: AggFunc::Count, expr: None }
    }
}

/// A complete analytical query (v2): named multi-aggregate SELECT list,
/// `AND`/`OR` filter tree, optional GROUP BY.
///
/// Execution computes the planned filter mask **once** and reuses it
/// across every SELECT item, so extra aggregates cost aggregate
/// passes — not extra filter passes (the crossbar-dominant stage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier (e.g. `"Q2.1"`).
    pub id: String,
    /// Filter tree ([`Pred::always`] for no filter).
    pub filter: Pred,
    /// GROUP BY attribute names (empty = global aggregates).
    pub group_by: Vec<String>,
    /// Named aggregates, in output order (at least one).
    pub select: Vec<SelectItem>,
}

impl Query {
    /// Start a fluent builder from a SELECT list — see
    /// [`crate::builder`].
    pub fn select(items: impl IntoIterator<Item = SelectItem>) -> crate::builder::QueryBuilder {
        crate::builder::QueryBuilder::new(items)
    }

    /// A query in the pre-v2 shape: one aggregate (output column named
    /// `"value"`) over a conjunctive filter.
    pub fn single(
        id: impl Into<String>,
        filter: Vec<Atom>,
        group_by: Vec<String>,
        func: AggFunc,
        expr: AggExpr,
    ) -> Query {
        Query {
            id: id.into(),
            filter: Pred::all(filter),
            group_by,
            select: vec![SelectItem { name: "value".into(), func, expr: Some(expr) }],
        }
    }

    /// Resolve the filter to DNF against a schema.
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn resolve_filter(&self, schema: &Schema) -> Result<Vec<Vec<ResolvedAtom>>, DbError> {
        self.filter.resolve_dnf(schema)
    }

    /// Does this query have a GROUP BY?
    pub fn has_group_by(&self) -> bool {
        !self.group_by.is_empty()
    }

    /// Decompose the SELECT list into deduplicated mergeable physical
    /// aggregates (`AVG` → sum + count; identical components shared).
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidQuery`] on an empty SELECT list, a duplicate
    /// output name, or a non-`COUNT` aggregate without an expression.
    pub fn physical_plan(&self) -> Result<PhysicalPlan, DbError> {
        if self.select.is_empty() {
            return Err(DbError::InvalidQuery(format!(
                "query `{}` has an empty SELECT list",
                self.id
            )));
        }
        let mut aggs: Vec<PhysAgg> = Vec::new();
        let index_of = |aggs: &mut Vec<PhysAgg>, agg: PhysAgg| -> usize {
            aggs.iter().position(|a| *a == agg).unwrap_or_else(|| {
                aggs.push(agg);
                aggs.len() - 1
            })
        };
        let mut outputs: Vec<(String, Derivation)> = Vec::with_capacity(self.select.len());
        for item in &self.select {
            if outputs.iter().any(|(n, _)| *n == item.name) {
                return Err(DbError::InvalidQuery(format!(
                    "duplicate output column `{}` in query `{}`",
                    item.name, self.id
                )));
            }
            let expr = |item: &SelectItem| -> Result<AggExpr, DbError> {
                item.expr.clone().ok_or_else(|| {
                    DbError::InvalidQuery(format!(
                        "aggregate `{}` ({}) needs an input expression",
                        item.name,
                        item.func.label()
                    ))
                })
            };
            let derivation = match item.func {
                AggFunc::Sum => Derivation::Direct(index_of(
                    &mut aggs,
                    PhysAgg { func: PhysFunc::Sum, expr: Some(expr(item)?) },
                )),
                AggFunc::Min => Derivation::Direct(index_of(
                    &mut aggs,
                    PhysAgg { func: PhysFunc::Min, expr: Some(expr(item)?) },
                )),
                AggFunc::Max => Derivation::Direct(index_of(
                    &mut aggs,
                    PhysAgg { func: PhysFunc::Max, expr: Some(expr(item)?) },
                )),
                AggFunc::Count => Derivation::Direct(index_of(
                    &mut aggs,
                    PhysAgg { func: PhysFunc::Count, expr: None },
                )),
                AggFunc::Avg => {
                    let sum = index_of(
                        &mut aggs,
                        PhysAgg { func: PhysFunc::Sum, expr: Some(expr(item)?) },
                    );
                    let count = index_of(&mut aggs, PhysAgg { func: PhysFunc::Count, expr: None });
                    Derivation::Ratio(sum, count)
                }
            };
            outputs.push((item.name.clone(), derivation));
        }
        Ok(PhysicalPlan { aggs, outputs })
    }

    /// Every attribute name the query reads (filter, group keys,
    /// aggregate operands), deduplicated.
    pub fn referenced_attrs(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.filter.atoms().iter().map(|a| a.attr()).collect();
        out.extend(self.group_by.iter().map(String::as_str));
        for item in &self.select {
            if let Some(expr) = &item.expr {
                out.extend(expr.attrs());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Validate the whole query against a schema: filter atoms resolve,
    /// group keys and aggregate operands exist, the SELECT list is
    /// non-empty with unique names and complete expressions.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidQuery`] / resolution errors describing the
    /// first problem found.
    pub fn validate(&self, schema: &Schema) -> Result<(), DbError> {
        self.resolve_filter(schema)?;
        self.physical_plan()?;
        for name in &self.group_by {
            schema.index_of(name)?;
        }
        for item in &self.select {
            if let Some(expr) = &item.expr {
                for attr in expr.attrs() {
                    schema.index_of(attr)?;
                }
            }
        }
        Ok(())
    }
}

/// The original single-aggregate, conjunctive-filter query shape — kept
/// as a thin migration shim.
///
/// # Migration
///
/// ```
/// # use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
/// # use bbpim_db::builder::col;
/// // before (v1):
/// //   LegacyQuery { id, filter: vec![Atom::Eq{..}], group_by,
/// //                 agg_func: AggFunc::Sum, agg_expr: expr }
/// // after (v2), equivalent query via the builder:
/// let q = Query::select([bbpim_db::plan::SelectItem::sum(
///         "value", AggExpr::mul("lo_extendedprice", "lo_discount"))])
///     .id("Q1.1-like")
///     .filter(col("d_year").eq(1993u64))
///     .build_unchecked();
/// # assert_eq!(q.select.len(), 1);
/// ```
///
/// `From<LegacyQuery> for Query` produces a bit-identical plan: the
/// conjunction becomes `Pred::all(filter)` and the aggregate becomes a
/// one-item SELECT list named `"value"`.
#[deprecated(note = "use the v2 `Query` (multi-aggregate SELECT list + `Pred` filter tree); \
                     build it with `Query::select(...)` or `Query::single(...)`")]
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyQuery {
    /// Identifier.
    pub id: String,
    /// Conjunctive filter.
    pub filter: Vec<Atom>,
    /// GROUP BY attribute names.
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub agg_func: AggFunc,
    /// Aggregate input expression.
    pub agg_expr: AggExpr,
}

#[allow(deprecated)]
impl From<LegacyQuery> for Query {
    fn from(q: LegacyQuery) -> Query {
        Query::single(q.id, q.filter, q.group_by, q.agg_func, q.agg_expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::schema::Attribute;

    fn schema_and_rel() -> Relation {
        let d = Dictionary::from_sorted(vec!["AFRICA".into(), "ASIA".into()]).unwrap();
        let schema =
            Schema::new("t", vec![Attribute::numeric("q", 8), Attribute::dict("region", d)]);
        let mut rel = Relation::new(schema);
        for (q, r) in [(5u64, 0u64), (20, 1), (30, 1), (40, 0)] {
            rel.push_row(&[q, r]).unwrap();
        }
        rel
    }

    #[test]
    fn atom_resolution_encodes_strings() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "ASIA".into() };
        let r = atom.resolve(rel.schema()).unwrap();
        assert!(matches!(r, ResolvedAtom::Eq { idx: 1, value: 1 }));
        assert!(!r.matches(&rel, 0));
        assert!(r.matches(&rel, 1));
    }

    #[test]
    fn between_atom_inclusive() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 20u64.into(), hi: 30u64.into() };
        let r = atom.resolve(rel.schema()).unwrap();
        let hits: Vec<bool> = (0..4).map(|i| r.matches(&rel, i)).collect();
        assert_eq!(hits, vec![false, true, true, false]);
    }

    #[test]
    fn in_atom_sorted_and_deduped() {
        let rel = schema_and_rel();
        let atom =
            Atom::In { attr: "q".into(), values: vec![40u64.into(), 5u64.into(), 40u64.into()] };
        match atom.resolve(rel.schema()).unwrap() {
            ResolvedAtom::In { values, .. } => assert_eq!(values, vec![5, 40]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_in_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::In { attr: "q".into(), values: vec![] };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn inverted_between_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 30u64.into(), hi: 20u64.into() };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn unknown_string_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "MARS".into() };
        assert!(matches!(atom.resolve(rel.schema()), Err(DbError::NotInDictionary { .. })));
    }

    #[test]
    fn agg_expr_eval() {
        let rel = schema_and_rel();
        assert_eq!(AggExpr::attr("q").eval(&rel, 1).unwrap(), 20);
        assert_eq!(AggExpr::mul("q", "region").eval(&rel, 2).unwrap(), 30);
        assert_eq!(AggExpr::sub("q", "region").eval(&rel, 3).unwrap(), 40);
    }

    #[test]
    fn atom_bounds_intervals() {
        assert_eq!(ResolvedAtom::Eq { idx: 0, value: 9 }.bounds(), Some((9, 9)));
        assert_eq!(ResolvedAtom::Between { idx: 0, lo: 2, hi: 5 }.bounds(), Some((2, 5)));
        assert_eq!(ResolvedAtom::Lt { idx: 0, value: 4 }.bounds(), Some((0, 3)));
        assert_eq!(ResolvedAtom::Lt { idx: 0, value: 0 }.bounds(), None);
        assert_eq!(ResolvedAtom::Gt { idx: 0, value: 4 }.bounds(), Some((5, u64::MAX)));
        assert_eq!(ResolvedAtom::Gt { idx: 0, value: u64::MAX }.bounds(), None);
        assert_eq!(ResolvedAtom::In { idx: 0, values: vec![3, 8, 20] }.bounds(), Some((3, 20)));
    }

    #[test]
    fn can_match_range_is_exact_for_in() {
        let a = ResolvedAtom::In { idx: 0, values: vec![5, 40] };
        assert!(a.can_match_range(0, 5));
        assert!(a.can_match_range(30, 50));
        // envelope overlaps but no member inside
        assert!(!a.can_match_range(10, 20));
        assert!(!a.can_match_range(41, u64::MAX));
    }

    #[test]
    fn can_match_range_comparisons() {
        assert!(ResolvedAtom::Lt { idx: 0, value: 10 }.can_match_range(9, 100));
        assert!(!ResolvedAtom::Lt { idx: 0, value: 10 }.can_match_range(10, 100));
        assert!(ResolvedAtom::Gt { idx: 0, value: 10 }.can_match_range(0, 11));
        assert!(!ResolvedAtom::Gt { idx: 0, value: 10 }.can_match_range(0, 10));
        assert!(ResolvedAtom::Between { idx: 0, lo: 3, hi: 6 }.can_match_range(6, 9));
        assert!(!ResolvedAtom::Between { idx: 0, lo: 3, hi: 6 }.can_match_range(7, 9));
    }

    #[test]
    fn filter_bounds_intersection_and_zone_test() {
        let atoms = vec![
            ResolvedAtom::Gt { idx: 0, value: 10 },
            ResolvedAtom::Lt { idx: 0, value: 20 },
            ResolvedAtom::Eq { idx: 1, value: 3 },
        ];
        let b = FilterBounds::from_atoms(&atoms);
        assert!(b.satisfiable());
        let mut zone = ZoneMap::empty(2);
        zone.observe_row(&[15, 3]);
        assert!(b.can_match(&zone));
        // zone outside the idx-0 window
        let mut far = ZoneMap::empty(2);
        far.observe_row(&[25, 3]);
        assert!(!b.can_match(&far));
        // zone missing the idx-1 constant
        let mut off = ZoneMap::empty(2);
        off.observe_row(&[15, 4]);
        assert!(!b.can_match(&off));
        // empty zone never matches a constrained filter
        assert!(!b.can_match(&ZoneMap::empty(2)));
        // the empty conjunction matches any zone
        assert!(FilterBounds::from_atoms(&[]).can_match(&ZoneMap::empty(2)));
    }

    #[test]
    fn contradictory_bounds_are_unsatisfiable() {
        let b = FilterBounds::from_atoms(&[
            ResolvedAtom::Gt { idx: 0, value: 20 },
            ResolvedAtom::Lt { idx: 0, value: 10 },
        ]);
        assert!(!b.satisfiable());
        let mut zone = ZoneMap::empty(1);
        zone.observe_row(&[15]);
        assert!(!b.can_match(&zone));
        assert!(!FilterBounds::from_atoms(&[ResolvedAtom::Lt { idx: 0, value: 0 }]).satisfiable());
    }

    #[test]
    fn or_bounds_are_the_interval_union() {
        // (x BETWEEN 0..10) OR (x BETWEEN 100..110): a zone in the gap is
        // pruned, zones overlapping either branch are kept.
        let dnf = vec![
            vec![ResolvedAtom::Between { idx: 0, lo: 0, hi: 10 }],
            vec![ResolvedAtom::Between { idx: 0, lo: 100, hi: 110 }],
        ];
        let b = FilterBounds::from_dnf(&dnf);
        assert!(b.satisfiable());
        let zone_at = |v: u64| {
            let mut z = ZoneMap::empty(1);
            z.observe_row(&[v]);
            z
        };
        assert!(b.can_match(&zone_at(5)));
        assert!(b.can_match(&zone_at(105)));
        assert!(!b.can_match(&zone_at(50)), "the gap between the branches must prune");
        let intervals = b.intervals();
        assert_eq!(intervals[&0], vec![(0, 10), (100, 110)]);
        // a disjunction with one unsatisfiable branch keeps the other
        let half = FilterBounds::from_dnf(&[
            vec![ResolvedAtom::Lt { idx: 0, value: 0 }],
            vec![ResolvedAtom::Eq { idx: 0, value: 7 }],
        ]);
        assert!(half.satisfiable());
        assert!(half.can_match(&zone_at(7)));
        assert!(!half.can_match(&zone_at(8)));
        // zero disjuncts = FALSE
        assert!(!FilterBounds::from_dnf(&[]).satisfiable());
    }

    #[test]
    fn adjacent_intervals_coalesce() {
        let dnf = vec![
            vec![ResolvedAtom::Between { idx: 0, lo: 0, hi: 10 }],
            vec![ResolvedAtom::Between { idx: 0, lo: 11, hi: 20 }],
        ];
        assert_eq!(FilterBounds::from_dnf(&dnf).intervals()[&0], vec![(0, 20)]);
    }

    #[test]
    fn intervals_drop_attrs_a_branch_leaves_free() {
        // (a = 1 AND b = 2) OR (a = 5): b is unconstrained through the
        // second branch, so no union bound on b is enforced — and none
        // may be reported.
        let dnf = vec![
            vec![ResolvedAtom::Eq { idx: 0, value: 1 }, ResolvedAtom::Eq { idx: 1, value: 2 }],
            vec![ResolvedAtom::Eq { idx: 0, value: 5 }],
        ];
        let b = FilterBounds::from_dnf(&dnf);
        let intervals = b.intervals();
        assert_eq!(intervals.get(&0), Some(&vec![(1, 1), (5, 5)]));
        assert!(!intervals.contains_key(&1), "b admits any value via the second branch");
        // an unsatisfiable branch does not suppress the others' attrs
        let with_dead = FilterBounds::from_dnf(&[
            vec![ResolvedAtom::Eq { idx: 1, value: 2 }],
            vec![ResolvedAtom::Lt { idx: 0, value: 0 }], // FALSE
        ]);
        assert_eq!(with_dead.intervals().get(&1), Some(&vec![(2, 2)]));
    }

    #[test]
    fn pred_dnf_distributes() {
        let a = || Atom::Eq { attr: "a".into(), value: 1u64.into() };
        let b = || Atom::Eq { attr: "b".into(), value: 2u64.into() };
        let c = || Atom::Eq { attr: "c".into(), value: 3u64.into() };
        // a AND (b OR c) → [a,b] | [a,c]
        let p = Pred::Atom(a()).and(Pred::Atom(b()).or(Pred::Atom(c())));
        let dnf = p.dnf();
        assert_eq!(dnf, vec![vec![a(), b()], vec![a(), c()]]);
        // TRUE and FALSE corner cases
        assert_eq!(Pred::always().dnf(), vec![Vec::<Atom>::new()]);
        assert!(Pred::Or(vec![]).dnf().is_empty());
        assert!(Pred::always().is_always());
        assert!(!p.is_always());
        assert_eq!(p.atoms().len(), 3);
        assert!(p.as_conjunction().is_none());
        assert_eq!(Pred::all(vec![a(), b()]).as_conjunction().unwrap().len(), 2);
    }

    #[test]
    fn pred_matches_row_follows_dnf() {
        let rel = schema_and_rel();
        let p = Pred::Atom(Atom::Lt { attr: "q".into(), value: 10u64.into() })
            .or(Pred::Atom(Atom::Gt { attr: "q".into(), value: 35u64.into() }));
        let hits: Vec<bool> = (0..4).map(|r| p.matches_row(&rel, r).unwrap()).collect();
        assert_eq!(hits, vec![true, false, false, true]);
        // matches_row must agree with evaluating the DNF per disjunct
        let dnf = p.resolve_dnf(rel.schema()).unwrap();
        for (row, hit) in hits.iter().enumerate() {
            let via_dnf = dnf.iter().any(|conj| conj.iter().all(|a| a.matches(&rel, row)));
            assert_eq!(via_dnf, *hit);
        }
    }

    #[test]
    fn pred_pretty_prints() {
        let p = Pred::Atom(Atom::Eq { attr: "d_year".into(), value: 1993u64.into() }).and(
            Pred::Atom(Atom::Between {
                attr: "lo_discount".into(),
                lo: 1u64.into(),
                hi: 3u64.into(),
            })
            .or(Pred::Atom(Atom::Eq { attr: "region".into(), value: "ASIA".into() })),
        );
        assert_eq!(
            p.to_string(),
            "(d_year = 1993 AND (lo_discount BETWEEN 1 AND 3 OR region = 'ASIA'))"
        );
        assert_eq!(Pred::always().to_string(), "TRUE");
        assert_eq!(Pred::Or(vec![]).to_string(), "FALSE");
    }

    #[test]
    fn filter_bounds_of_query_resolves_strings() {
        let rel = schema_and_rel();
        let q = Query::single(
            "t",
            vec![Atom::Eq { attr: "region".into(), value: "ASIA".into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("q"),
        );
        let b = FilterBounds::of_query(&q, rel.schema()).unwrap();
        let zone = ZoneMap::of(&rel);
        assert!(b.can_match(&zone));
    }

    #[test]
    fn query_resolution() {
        let rel = schema_and_rel();
        let q = Query::single(
            "t1",
            vec![
                Atom::Gt { attr: "q".into(), value: 10u64.into() },
                Atom::Eq { attr: "region".into(), value: "ASIA".into() },
            ],
            vec!["region".into()],
            AggFunc::Sum,
            AggExpr::attr("q"),
        );
        assert!(q.has_group_by());
        let dnf = q.resolve_filter(rel.schema()).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);
        q.validate(rel.schema()).unwrap();
    }

    #[test]
    fn physical_plan_dedups_shared_components() {
        // SUM(x), COUNT, AVG(x) → two physical aggregates.
        let q = Query {
            id: "t".into(),
            filter: Pred::always(),
            group_by: vec![],
            select: vec![
                SelectItem::sum("total", AggExpr::attr("q")),
                SelectItem::count("n"),
                SelectItem::avg("mean", AggExpr::attr("q")),
            ],
        };
        let plan = q.physical_plan().unwrap();
        assert_eq!(plan.aggs.len(), 2);
        assert_eq!(plan.aggs[0], PhysAgg { func: PhysFunc::Sum, expr: Some(AggExpr::attr("q")) });
        assert_eq!(plan.aggs[1], PhysAgg { func: PhysFunc::Count, expr: None });
        assert_eq!(
            plan.outputs,
            vec![
                ("total".into(), Derivation::Direct(0)),
                ("n".into(), Derivation::Direct(1)),
                ("mean".into(), Derivation::Ratio(0, 1)),
            ]
        );
        assert_eq!(plan.column_names(), vec!["total", "n", "mean"]);
        assert_eq!(plan.column_index("mean"), Some(2));
    }

    #[test]
    fn physical_plan_rejects_bad_select_lists() {
        let empty =
            Query { id: "t".into(), filter: Pred::always(), group_by: vec![], select: vec![] };
        assert!(empty.physical_plan().is_err());
        let dup = Query {
            id: "t".into(),
            filter: Pred::always(),
            group_by: vec![],
            select: vec![SelectItem::count("n"), SelectItem::count("n")],
        };
        assert!(dup.physical_plan().is_err());
        let missing_expr = Query {
            id: "t".into(),
            filter: Pred::always(),
            group_by: vec![],
            select: vec![SelectItem { name: "x".into(), func: AggFunc::Sum, expr: None }],
        };
        assert!(missing_expr.physical_plan().is_err());
    }

    #[test]
    fn finalize_derives_avg_after_merge() {
        let q = Query {
            id: "t".into(),
            filter: Pred::always(),
            group_by: vec![],
            select: vec![
                SelectItem::sum("s", AggExpr::attr("q")),
                SelectItem::count("n"),
                SelectItem::avg("a", AggExpr::attr("q")),
            ],
        };
        let plan = q.physical_plan().unwrap();
        let mut sums = GroupedResult::new();
        sums.insert(vec![1], 10);
        let mut counts = GroupedResult::new();
        counts.insert(vec![1], 4);
        let out = plan.finalize(&[sums, counts]);
        assert_eq!(out[&vec![1u64]], vec![10, 4, 2]);
    }

    #[test]
    fn phys_func_merge_and_identity() {
        assert_eq!(PhysFunc::Sum.merge(u64::MAX, 1), 0, "sums wrap");
        assert_eq!(PhysFunc::Count.merge(2, 3), 5);
        assert_eq!(PhysFunc::Min.merge(4, 9), 4);
        assert_eq!(PhysFunc::Max.merge(4, 9), 9);
        for f in [PhysFunc::Sum, PhysFunc::Min, PhysFunc::Max, PhysFunc::Count] {
            assert_eq!(f.merge(f.identity(), 7), 7, "{f:?}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_query_converts_bit_identically() {
        let legacy = LegacyQuery {
            id: "q".into(),
            filter: vec![Atom::Gt { attr: "q".into(), value: 10u64.into() }],
            group_by: vec!["region".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::attr("q"),
        };
        let v2: Query = legacy.clone().into();
        assert_eq!(
            v2,
            Query::single(
                "q",
                legacy.filter.clone(),
                vec!["region".into()],
                AggFunc::Sum,
                AggExpr::attr("q")
            )
        );
        assert_eq!(v2.select[0].name, "value");
    }

    #[test]
    fn referenced_attrs_deduplicates() {
        let q = Query::single(
            "t",
            vec![
                Atom::Gt { attr: "q".into(), value: 1u64.into() },
                Atom::Eq { attr: "region".into(), value: 0u64.into() },
            ],
            vec!["region".into()],
            AggFunc::Sum,
            AggExpr::attr("q"),
        );
        assert_eq!(q.referenced_attrs(), vec!["q", "region"]);
    }
}
