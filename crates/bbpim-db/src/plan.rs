//! Logical query plans.
//!
//! The analytical queries this system runs (all 13 SSB queries among
//! them) share one shape — `SELECT agg(expr) FROM wide WHERE conj
//! [GROUP BY keys]` — captured by [`Query`]. Filters are conjunctions of
//! per-attribute atoms; the aggregate input is an attribute or a
//! two-attribute expression (`extendedprice · discount`,
//! `revenue − supplycost`). String constants are written as strings and
//! resolved to dictionary codes against a concrete schema.

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::Schema;

/// A query constant: numeric, or a string to be dictionary-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Const {
    /// Plain number.
    Num(u64),
    /// Dictionary string (resolved at plan time).
    Str(String),
}

impl From<u64> for Const {
    fn from(v: u64) -> Self {
        Const::Num(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(v.into())
    }
}

/// One conjunct of a filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// `attr = c`
    Eq {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `lo <= attr <= hi` (inclusive)
    Between {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        lo: Const,
        /// Upper bound.
        hi: Const,
    },
    /// `attr < c`
    Lt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr > c`
    Gt {
        /// Attribute name.
        attr: String,
        /// Constant.
        value: Const,
    },
    /// `attr IN (c…)`
    In {
        /// Attribute name.
        attr: String,
        /// Members.
        values: Vec<Const>,
    },
}

impl Atom {
    /// The attribute this atom constrains.
    pub fn attr(&self) -> &str {
        match self {
            Atom::Eq { attr, .. }
            | Atom::Between { attr, .. }
            | Atom::Lt { attr, .. }
            | Atom::Gt { attr, .. }
            | Atom::In { attr, .. } => attr,
        }
    }

    /// Resolve against a schema: attribute index + encoded constants.
    ///
    /// # Errors
    ///
    /// Unknown attribute, unknown dictionary string, empty `IN`, or
    /// inverted `BETWEEN` bounds.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedAtom, DbError> {
        let idx = schema.index_of(self.attr())?;
        let enc = |c: &Const| -> Result<u64, DbError> {
            match c {
                Const::Num(v) => Ok(*v),
                Const::Str(s) => schema.attrs()[idx].encode_str(s),
            }
        };
        Ok(match self {
            Atom::Eq { value, .. } => ResolvedAtom::Eq { idx, value: enc(value)? },
            Atom::Between { lo, hi, .. } => {
                let (lo, hi) = (enc(lo)?, enc(hi)?);
                if lo > hi {
                    return Err(DbError::InvalidQuery(format!(
                        "BETWEEN bounds inverted on `{}`",
                        self.attr()
                    )));
                }
                ResolvedAtom::Between { idx, lo, hi }
            }
            Atom::Lt { value, .. } => ResolvedAtom::Lt { idx, value: enc(value)? },
            Atom::Gt { value, .. } => ResolvedAtom::Gt { idx, value: enc(value)? },
            Atom::In { values, .. } => {
                if values.is_empty() {
                    return Err(DbError::InvalidQuery(format!("empty IN on `{}`", self.attr())));
                }
                let mut vs = values.iter().map(enc).collect::<Result<Vec<_>, _>>()?;
                vs.sort_unstable();
                vs.dedup();
                ResolvedAtom::In { idx, values: vs }
            }
        })
    }
}

/// An atom with the attribute index and constants resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvedAtom {
    /// `attr = value`
    Eq {
        /// Attribute index in the schema.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `lo <= attr <= hi`
    Between {
        /// Attribute index.
        idx: usize,
        /// Encoded lower bound.
        lo: u64,
        /// Encoded upper bound.
        hi: u64,
    },
    /// `attr < value`
    Lt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr > value`
    Gt {
        /// Attribute index.
        idx: usize,
        /// Encoded constant.
        value: u64,
    },
    /// `attr IN values` (sorted, deduplicated)
    In {
        /// Attribute index.
        idx: usize,
        /// Encoded members.
        values: Vec<u64>,
    },
}

impl ResolvedAtom {
    /// The constrained attribute's index.
    pub fn attr_index(&self) -> usize {
        match self {
            ResolvedAtom::Eq { idx, .. }
            | ResolvedAtom::Between { idx, .. }
            | ResolvedAtom::Lt { idx, .. }
            | ResolvedAtom::Gt { idx, .. }
            | ResolvedAtom::In { idx, .. } => *idx,
        }
    }

    /// Does `value` satisfy this atom?
    pub fn matches_value(&self, v: u64) -> bool {
        match self {
            ResolvedAtom::Eq { value, .. } => v == *value,
            ResolvedAtom::Between { lo, hi, .. } => (*lo..=*hi).contains(&v),
            ResolvedAtom::Lt { value, .. } => v < *value,
            ResolvedAtom::Gt { value, .. } => v > *value,
            ResolvedAtom::In { values, .. } => values.binary_search(&v).is_ok(),
        }
    }

    /// Does row `row` of `rel` satisfy this atom?
    pub fn matches(&self, rel: &Relation, row: usize) -> bool {
        self.matches_value(rel.value(row, self.attr_index()))
    }
}

/// The aggregate's input expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggExpr {
    /// A single attribute.
    Attr(String),
    /// Product of two attributes (e.g. `lo_extendedprice * lo_discount`).
    Mul(String, String),
    /// Difference of two attributes (e.g. `lo_revenue - lo_supplycost`).
    Sub(String, String),
}

impl AggExpr {
    /// The attribute names the expression reads.
    pub fn attrs(&self) -> Vec<&str> {
        match self {
            AggExpr::Attr(a) => vec![a],
            AggExpr::Mul(a, b) | AggExpr::Sub(a, b) => vec![a, b],
        }
    }

    /// Evaluate on one row (used by oracles and host-side aggregation).
    ///
    /// # Errors
    ///
    /// Unknown attribute names.
    pub fn eval(&self, rel: &Relation, row: usize) -> Result<u64, DbError> {
        Ok(match self {
            AggExpr::Attr(a) => rel.value_by_name(row, a)?,
            AggExpr::Mul(a, b) => {
                rel.value_by_name(row, a)?.wrapping_mul(rel.value_by_name(row, b)?)
            }
            AggExpr::Sub(a, b) => {
                rel.value_by_name(row, a)?.wrapping_sub(rel.value_by_name(row, b)?)
            }
        })
    }
}

/// The aggregate function (the set the aggregation circuit supports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A complete analytical query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier (e.g. `"Q2.1"`).
    pub id: String,
    /// Conjunctive filter.
    pub filter: Vec<Atom>,
    /// GROUP BY attribute names (empty = single aggregate).
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub agg_func: AggFunc,
    /// Aggregate input expression.
    pub agg_expr: AggExpr,
}

impl Query {
    /// Resolve the filter against a schema.
    ///
    /// # Errors
    ///
    /// Propagates atom resolution failures.
    pub fn resolve_filter(&self, schema: &Schema) -> Result<Vec<ResolvedAtom>, DbError> {
        self.filter.iter().map(|a| a.resolve(schema)).collect()
    }

    /// Does this query have a GROUP BY?
    pub fn has_group_by(&self) -> bool {
        !self.group_by.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::schema::Attribute;

    fn schema_and_rel() -> Relation {
        let d = Dictionary::from_sorted(vec!["AFRICA".into(), "ASIA".into()]).unwrap();
        let schema =
            Schema::new("t", vec![Attribute::numeric("q", 8), Attribute::dict("region", d)]);
        let mut rel = Relation::new(schema);
        for (q, r) in [(5u64, 0u64), (20, 1), (30, 1), (40, 0)] {
            rel.push_row(&[q, r]).unwrap();
        }
        rel
    }

    #[test]
    fn atom_resolution_encodes_strings() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "ASIA".into() };
        let r = atom.resolve(rel.schema()).unwrap();
        assert!(matches!(r, ResolvedAtom::Eq { idx: 1, value: 1 }));
        assert!(!r.matches(&rel, 0));
        assert!(r.matches(&rel, 1));
    }

    #[test]
    fn between_atom_inclusive() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 20u64.into(), hi: 30u64.into() };
        let r = atom.resolve(rel.schema()).unwrap();
        let hits: Vec<bool> = (0..4).map(|i| r.matches(&rel, i)).collect();
        assert_eq!(hits, vec![false, true, true, false]);
    }

    #[test]
    fn in_atom_sorted_and_deduped() {
        let rel = schema_and_rel();
        let atom =
            Atom::In { attr: "q".into(), values: vec![40u64.into(), 5u64.into(), 40u64.into()] };
        match atom.resolve(rel.schema()).unwrap() {
            ResolvedAtom::In { values, .. } => assert_eq!(values, vec![5, 40]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_in_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::In { attr: "q".into(), values: vec![] };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn inverted_between_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Between { attr: "q".into(), lo: 30u64.into(), hi: 20u64.into() };
        assert!(atom.resolve(rel.schema()).is_err());
    }

    #[test]
    fn unknown_string_rejected() {
        let rel = schema_and_rel();
        let atom = Atom::Eq { attr: "region".into(), value: "MARS".into() };
        assert!(matches!(atom.resolve(rel.schema()), Err(DbError::NotInDictionary { .. })));
    }

    #[test]
    fn agg_expr_eval() {
        let rel = schema_and_rel();
        assert_eq!(AggExpr::Attr("q".into()).eval(&rel, 1).unwrap(), 20);
        assert_eq!(AggExpr::Mul("q".into(), "region".into()).eval(&rel, 2).unwrap(), 30);
        assert_eq!(AggExpr::Sub("q".into(), "region".into()).eval(&rel, 3).unwrap(), 40);
    }

    #[test]
    fn query_resolution() {
        let rel = schema_and_rel();
        let q = Query {
            id: "t1".into(),
            filter: vec![
                Atom::Gt { attr: "q".into(), value: 10u64.into() },
                Atom::Eq { attr: "region".into(), value: "ASIA".into() },
            ],
            group_by: vec!["region".into()],
            agg_func: AggFunc::Sum,
            agg_expr: AggExpr::Attr("q".into()),
        };
        assert!(q.has_group_by());
        assert_eq!(q.resolve_filter(rel.schema()).unwrap().len(), 2);
    }
}
