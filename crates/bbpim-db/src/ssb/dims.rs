//! Dimension relation generators: CUSTOMER, SUPPLIER, PART, DATE.
//!
//! Per the paper, the long-text NAME and ADDRESS attributes of CUSTOMER
//! and SUPPLIER are never stored (SSB queries do not read them); every
//! other attribute is generated. Keys are dense and 1-based, so a key
//! `k` lives at row `k − 1` — the property the pre-join relies on.

use rand::rngs::StdRng;
use rand::Rng;

use crate::dict::bits_for;
use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::ssb::calendar;
use crate::ssb::names;

/// Bits used for the synthetic phone numbers (9 decimal digits).
pub const PHONE_BITS: usize = 30;

/// Deterministic "retail price" of a part (not an SSB attribute; used by
/// the lineorder generator for `lo_extendedprice = quantity × price`).
pub fn part_price(partkey: u64) -> u64 {
    1000 + (partkey.wrapping_mul(2_606_007) % 9000)
}

fn random_phone(rng: &mut StdRng) -> u64 {
    rng.gen_range(100_000_000u64..1_000_000_000)
}

/// Generate the CUSTOMER relation with `n` rows.
///
/// # Errors
///
/// Propagates dictionary/width failures (none for valid built-ins).
pub fn customer(n: usize, rng: &mut StdRng) -> Result<Relation, DbError> {
    let city_d = names::city_dict()?;
    let nation_d = names::nation_dict()?;
    let region_d = names::region_dict()?;
    let seg_d = names::list_dict(&names::MKTSEGMENTS)?;
    let schema = Schema::new(
        "customer",
        vec![
            Attribute::numeric("c_custkey", bits_for(n as u64)),
            Attribute::dict("c_city", city_d),
            Attribute::dict("c_nation", nation_d),
            Attribute::dict("c_region", region_d),
            Attribute::numeric("c_phone", PHONE_BITS),
            Attribute::dict("c_mktsegment", seg_d),
        ],
    );
    let mut rel = Relation::with_capacity(schema, n);
    for key in 1..=n as u64 {
        let nation = rng.gen_range(0..25u64);
        let digit = rng.gen_range(0..10u64);
        let city = nation * 10 + digit;
        let region = names::nation_region(nation as usize) as u64;
        let seg = rng.gen_range(0..names::MKTSEGMENTS.len() as u64);
        rel.push_row(&[key, city, nation, region, random_phone(rng), seg])?;
    }
    Ok(rel)
}

/// Generate the SUPPLIER relation with `n` rows.
///
/// # Errors
///
/// Propagates dictionary/width failures.
pub fn supplier(n: usize, rng: &mut StdRng) -> Result<Relation, DbError> {
    let city_d = names::city_dict()?;
    let nation_d = names::nation_dict()?;
    let region_d = names::region_dict()?;
    let schema = Schema::new(
        "supplier",
        vec![
            Attribute::numeric("s_suppkey", bits_for(n as u64)),
            Attribute::dict("s_city", city_d),
            Attribute::dict("s_nation", nation_d),
            Attribute::dict("s_region", region_d),
            Attribute::numeric("s_phone", PHONE_BITS),
        ],
    );
    let mut rel = Relation::with_capacity(schema, n);
    for key in 1..=n as u64 {
        let nation = rng.gen_range(0..25u64);
        let digit = rng.gen_range(0..10u64);
        let city = nation * 10 + digit;
        let region = names::nation_region(nation as usize) as u64;
        rel.push_row(&[key, city, nation, region, random_phone(rng)])?;
    }
    Ok(rel)
}

/// Generate the PART relation with `n` rows.
///
/// # Errors
///
/// Propagates dictionary/width failures.
pub fn part(n: usize, rng: &mut StdRng) -> Result<Relation, DbError> {
    let name_d = names::part_name_dict()?;
    let mfgr_d = names::mfgr_dict()?;
    let cat_d = names::category_dict()?;
    let brand_d = names::brand_dict()?;
    let color_d = names::list_dict(&names::COLORS)?;
    let type_d = names::part_type_dict()?;
    let cont_d = names::container_dict()?;
    let schema = Schema::new(
        "part",
        vec![
            Attribute::numeric("p_partkey", bits_for(n as u64)),
            Attribute::dict("p_name", name_d.clone()),
            Attribute::dict("p_mfgr", mfgr_d),
            Attribute::dict("p_category", cat_d),
            Attribute::dict("p_brand1", brand_d),
            Attribute::dict("p_color", color_d),
            Attribute::dict("p_type", type_d),
            Attribute::numeric("p_size", 6),
            Attribute::dict("p_container", cont_d),
        ],
    );
    let mut rel = Relation::with_capacity(schema, n);
    for key in 1..=n as u64 {
        let mfgr = rng.gen_range(0..5u64);
        let category = mfgr * 5 + rng.gen_range(0..5u64);
        let brand = category * 40 + rng.gen_range(0..40u64);
        let name = rng.gen_range(0..name_d.len() as u64);
        let color = rng.gen_range(0..names::COLORS.len() as u64);
        let ptype = rng.gen_range(0..150u64);
        let size = rng.gen_range(1..=50u64);
        let container = rng.gen_range(0..40u64);
        rel.push_row(&[key, name, mfgr, category, brand, color, ptype, size, container])?;
    }
    Ok(rel)
}

/// Generate the DATE relation (always 2,556 rows; `d_datekey` is the
/// 0-based day index, which is also the join key used by
/// `lo_orderdate`).
///
/// # Errors
///
/// Propagates dictionary/width failures.
pub fn date() -> Result<Relation, DbError> {
    let dow_d = names::list_dict(&names::WEEKDAYS)?;
    let month_d = names::list_dict(&names::MONTHS)?;
    let season_d = names::list_dict(&names::SEASONS)?;
    // chronological order: Jan1992, Feb1992, … Dec1998
    let mut ym_names = Vec::with_capacity(84);
    for y in calendar::FIRST_YEAR..=calendar::LAST_YEAR {
        for m in 0..12 {
            ym_names.push(format!("{}{}", names::MONTHS_SHORT[m], y));
        }
    }
    let ym_d = crate::dict::Dictionary::from_sorted(ym_names)?;

    let schema = Schema::new(
        "date",
        vec![
            Attribute::numeric("d_datekey", bits_for(calendar::TOTAL_DAYS as u64 - 1)),
            Attribute::dict("d_dayofweek", dow_d),
            Attribute::dict("d_month", month_d),
            Attribute::numeric("d_year", bits_for(calendar::LAST_YEAR)),
            Attribute::numeric("d_yearmonthnum", bits_for(199_812)),
            Attribute::dict("d_yearmonth", ym_d),
            Attribute::numeric("d_daynuminweek", 3),
            Attribute::numeric("d_daynuminmonth", 5),
            Attribute::numeric("d_daynuminyear", 9),
            Attribute::numeric("d_monthnuminyear", 4),
            Attribute::numeric("d_weeknuminyear", 6),
            Attribute::dict("d_sellingseason", season_d),
            Attribute::numeric("d_lastdayinweekfl", 1),
            Attribute::numeric("d_lastdayinmonthfl", 1),
            Attribute::numeric("d_holidayfl", 1),
            Attribute::numeric("d_weekdayfl", 1),
        ],
    );
    let mut rel = Relation::with_capacity(schema, calendar::TOTAL_DAYS);
    for day in 0..calendar::TOTAL_DAYS {
        let (y, m, dom) = calendar::day_to_ymd(day);
        let dow = calendar::day_of_week(day);
        let yearmonthnum = y * 100 + m;
        let ym_code = (y - calendar::FIRST_YEAR) * 12 + (m - 1);
        let last_in_week = (dow == 6) as u64;
        let last_in_month = (dom == calendar::days_in_month(y, m)) as u64;
        let holiday = calendar::is_holiday(m, dom) as u64;
        let weekday = (1..=5).contains(&dow) as u64;
        rel.push_row(&[
            day as u64,
            dow,
            m - 1,
            y,
            yearmonthnum,
            ym_code,
            dow + 1,
            dom,
            calendar::day_num_in_year(day),
            m,
            calendar::week_num_in_year(day),
            calendar::season_index(m),
            last_in_week,
            last_in_month,
            holiday,
            weekday,
        ])?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn customer_keys_dense_and_one_based() {
        let c = customer(100, &mut rng()).unwrap();
        assert_eq!(c.len(), 100);
        for row in 0..100 {
            assert_eq!(c.value_by_name(row, "c_custkey").unwrap(), row as u64 + 1);
        }
    }

    #[test]
    fn customer_city_consistent_with_nation_and_region() {
        let c = customer(500, &mut rng()).unwrap();
        let city_dict = c.schema().attr("c_city").unwrap().dictionary().unwrap().clone();
        let nation_dict = c.schema().attr("c_nation").unwrap().dictionary().unwrap().clone();
        for row in 0..c.len() {
            let city = c.value_by_name(row, "c_city").unwrap();
            let nation = c.value_by_name(row, "c_nation").unwrap();
            let region = c.value_by_name(row, "c_region").unwrap();
            assert_eq!(city / 10, nation, "city belongs to its nation");
            assert_eq!(names::nation_region(nation as usize) as u64, region);
            // city name starts with the truncated nation name
            let cn = city_dict.decode(city).unwrap();
            let nn = nation_dict.decode(nation).unwrap();
            assert!(cn
                .trim_end_matches(|c: char| c.is_ascii_digit())
                .trim_end()
                .starts_with(nn.chars().take(9).collect::<String>().trim_end()));
        }
    }

    #[test]
    fn part_brand_category_mfgr_hierarchy() {
        let p = part(1000, &mut rng()).unwrap();
        for row in 0..p.len() {
            let mfgr = p.value_by_name(row, "p_mfgr").unwrap();
            let cat = p.value_by_name(row, "p_category").unwrap();
            let brand = p.value_by_name(row, "p_brand1").unwrap();
            assert_eq!(cat / 5, mfgr);
            assert_eq!(brand / 40, cat);
        }
    }

    #[test]
    fn part_sizes_in_range() {
        let p = part(300, &mut rng()).unwrap();
        for row in 0..p.len() {
            let s = p.value_by_name(row, "p_size").unwrap();
            assert!((1..=50).contains(&s));
        }
    }

    #[test]
    fn date_dimension_has_2556_days_and_7_years() {
        let d = date().unwrap();
        assert_eq!(d.len(), 2556);
        let years = d.column_by_name("d_year").unwrap().distinct_sorted();
        assert_eq!(years, (1992..=1998).collect::<Vec<u64>>());
    }

    #[test]
    fn date_yearmonth_consistent() {
        let d = date().unwrap();
        for row in [0usize, 100, 1000, 2555] {
            let y = d.value_by_name(row, "d_year").unwrap();
            let ymn = d.value_by_name(row, "d_yearmonthnum").unwrap();
            let m = d.value_by_name(row, "d_monthnuminyear").unwrap();
            assert_eq!(ymn, y * 100 + m);
            let ym = d.value_by_name(row, "d_yearmonth").unwrap();
            assert_eq!(ym, (y - 1992) * 12 + m - 1);
        }
    }

    #[test]
    fn dec1997_exists_for_q34() {
        let d = date().unwrap();
        let dict = d.schema().attr("d_yearmonth").unwrap().dictionary().unwrap().clone();
        let code = dict.encode("Dec1997").unwrap();
        assert_eq!(code, 5 * 12 + 11);
    }

    #[test]
    fn weekday_flags_consistent() {
        let d = date().unwrap();
        for row in 0..50 {
            let dow = d.value_by_name(row, "d_daynuminweek").unwrap(); // 1..=7, 1=Sunday
            let weekday = d.value_by_name(row, "d_weekdayfl").unwrap();
            assert_eq!(weekday == 1, (2..=6).contains(&dow), "row {row}");
        }
    }

    #[test]
    fn part_price_deterministic_and_bounded() {
        for k in [1u64, 7, 500_000] {
            let p = part_price(k);
            assert!((1000..10_000).contains(&p));
            assert_eq!(p, part_price(k));
        }
    }
}
