//! Zipf sampling — the data-skew variant of Rabl et al. the paper uses.
//!
//! The skewed SSB draws lineorder foreign keys (customer, supplier,
//! part, date) from a Zipf distribution instead of uniformly, which
//! makes every dimension attribute of the pre-joined relation
//! non-uniform — a few cities/brands/days dominate, matching the
//! paper's observation that "database data is not uniformly distributed
//! and the GROUP-BY subgroups have non-uniform sizes".

use rand::Rng;

/// A Zipf(θ) sampler over `1..=n` using inverse-CDF lookup.
///
/// θ = 0 degenerates to uniform; θ around 0.5–1.0 is the range Rabl et
/// al. study.
///
/// ```
/// use bbpim_db::ssb::skew::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
/// let z = Zipf::new(100, 0.8);
/// let mut rng = StdRng::seed_from_u64(1);
/// let v = z.sample(&mut rng);
/// assert!((1..=100).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler covers no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // first index with cdf >= u
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }

    /// Probability mass of item `i` (1-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!(i >= 1 && i <= self.cdf.len());
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 1..=4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 0.9);
        let total: f64 = (1..=50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn head_is_heavier_with_larger_theta() {
        let z_low = Zipf::new(100, 0.3);
        let z_high = Zipf::new(100, 1.0);
        assert!(z_high.pmf(1) > z_low.pmf(1));
        assert!(z_high.pmf(100) < z_low.pmf(100));
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let v = z.sample(&mut rng) as usize;
            assert!((1..=10).contains(&v));
            counts[v - 1] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "item 1 should dominate: {counts:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let z = Zipf::new(1000, 0.8);
        let a: Vec<u64> = (0..100).map(|_| z.sample(&mut StdRng::seed_from_u64(7))).collect();
        let b: Vec<u64> = (0..100).map(|_| z.sample(&mut StdRng::seed_from_u64(7))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
