//! Domain value tables for the Star Schema Benchmark (TPC-H heritage).
//!
//! Nations/regions follow the TPC-H assignment; SSB cities are the
//! nation name truncated to nine characters plus a digit 0–9 (so
//! `UNITED KINGDOM` yields `UNITED KI0`…`UNITED KI9` — the cities SSB
//! Q3.3/Q3.4 name). Brand strings zero-pad the brand number
//! (`MFGR#2201`…`MFGR#2240`) so lexicographic order equals code order,
//! which the order-preserving dictionaries require; the paper's query
//! constants (`MFGR#2221`…) are unaffected.

use std::sync::Arc;

use crate::dict::Dictionary;
use crate::error::DbError;

/// The five TPC-H regions, alphabetical.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index into [`REGIONS`].
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("CHINA", 2),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
];

/// Customer market segments.
pub const MKTSEGMENTS: [&str; 5] =
    ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];

/// Order priorities.
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

/// Part colors (TPC-H color list head; 92 entries as in dbgen).
pub const COLORS: [&str; 92] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// Part type syllables (6 × 5 × 5 = 150 combinations, as in TPC-H).
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container size words.
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container kind words (5 × 8 = 40 containers).
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Selling seasons of the SSB date dimension.
pub const SEASONS: [&str; 5] = ["Christmas", "Fall", "Spring", "Summer", "Winter"];

/// Weekday names (d_dayofweek).
pub const WEEKDAYS: [&str; 7] =
    ["Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"];

/// Month names (d_month).
pub const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Short month names used in d_yearmonth ("Jan1992").
pub const MONTHS_SHORT: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

/// SSB city name: nation truncated/padded to 9 chars + digit.
pub fn city_name(nation: &str, digit: usize) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{digit}")
}

/// Dictionary of the five regions.
///
/// # Errors
///
/// Never fails for the built-in tables; the `Result` mirrors
/// [`Dictionary::from_sorted`].
pub fn region_dict() -> Result<Arc<Dictionary>, DbError> {
    Dictionary::from_sorted(REGIONS.iter().map(|s| s.to_string()).collect())
}

/// Dictionary of the 25 nations (alphabetical, as listed).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn nation_dict() -> Result<Arc<Dictionary>, DbError> {
    Dictionary::from_sorted(NATIONS.iter().map(|(n, _)| n.to_string()).collect())
}

/// Dictionary of the 250 cities, ordered by (nation index, digit) —
/// which is also lexicographic because nation names are sorted.
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn city_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut cities = Vec::with_capacity(250);
    for (nation, _) in NATIONS.iter() {
        for d in 0..10 {
            cities.push(city_name(nation, d));
        }
    }
    Dictionary::from_sorted(cities)
}

/// Region index of a nation index.
pub fn nation_region(nation_idx: usize) -> usize {
    NATIONS[nation_idx].1
}

/// Manufacturer dictionary: `MFGR#1`…`MFGR#5`.
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn mfgr_dict() -> Result<Arc<Dictionary>, DbError> {
    Dictionary::from_sorted((1..=5).map(|i| format!("MFGR#{i}")).collect())
}

/// Category dictionary: `MFGR#11`…`MFGR#55` (25 entries; code =
/// (mfgr−1)·5 + (cat−1)).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn category_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut v = Vec::with_capacity(25);
    for m in 1..=5 {
        for c in 1..=5 {
            v.push(format!("MFGR#{m}{c}"));
        }
    }
    Dictionary::from_sorted(v)
}

/// Brand dictionary: `MFGR#CC` + zero-padded brand number `01`…`40`
/// (1000 entries; code = category·40 + (brand−1), lexicographic).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn brand_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut v = Vec::with_capacity(1000);
    for m in 1..=5 {
        for c in 1..=5 {
            for b in 1..=40 {
                v.push(format!("MFGR#{m}{c}{b:02}"));
            }
        }
    }
    Dictionary::from_sorted(v)
}

/// Part-name dictionary: two color words (ordered pairs of distinct
/// colors would be 92×91; SSB uses "color color" — we use the 92×92
/// ordered pairs with repetition excluded when equal → keep it simple
/// and allow repetition-free pairs ordered by code).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn part_name_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut v = Vec::with_capacity(92 * 91);
    for a in COLORS.iter() {
        for b in COLORS.iter() {
            if a != b {
                v.push(format!("{a} {b}"));
            }
        }
    }
    Dictionary::from_sorted(v)
}

/// Part-type dictionary (150 entries).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn part_type_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut v = Vec::with_capacity(150);
    for a in TYPE_S1.iter() {
        for b in TYPE_S2.iter() {
            for c in TYPE_S3.iter() {
                v.push(format!("{a} {b} {c}"));
            }
        }
    }
    v.sort();
    Dictionary::from_sorted(v)
}

/// Container dictionary (40 entries).
///
/// # Errors
///
/// Never fails for the built-in tables.
pub fn container_dict() -> Result<Arc<Dictionary>, DbError> {
    let mut v = Vec::with_capacity(40);
    for a in CONTAINER_S1.iter() {
        for b in CONTAINER_S2.iter() {
            v.push(format!("{a} {b}"));
        }
    }
    v.sort();
    Dictionary::from_sorted(v)
}

/// Simple-list dictionary helper.
///
/// # Errors
///
/// Never fails for deduplicated inputs.
pub fn list_dict(values: &[&str]) -> Result<Arc<Dictionary>, DbError> {
    Dictionary::from_sorted(values.iter().map(|s| s.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nations_are_sorted_and_complete() {
        let names: Vec<&str> = NATIONS.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 25);
        assert!(NATIONS.iter().all(|(_, r)| *r < 5));
    }

    #[test]
    fn city_names_match_ssb_queries() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("UNITED STATES", 5), "UNITED ST5");
        assert_eq!(city_name("PERU", 0), "PERU     0");
    }

    #[test]
    fn city_dict_has_250_entries_and_knows_q3_cities() {
        let d = city_dict().unwrap();
        assert_eq!(d.len(), 250);
        assert!(d.encode("UNITED KI1").is_some());
        assert!(d.encode("UNITED KI5").is_some());
    }

    #[test]
    fn us_has_exactly_ten_cities() {
        let d = city_dict().unwrap();
        let count = d.iter().filter(|(_, name)| name.starts_with("UNITED ST")).count();
        assert_eq!(count, 10);
    }

    #[test]
    fn brand_dict_lexicographic_equals_code_order() {
        let d = brand_dict().unwrap();
        assert_eq!(d.len(), 1000);
        let lo = d.encode("MFGR#2221").unwrap();
        let hi = d.encode("MFGR#2228").unwrap();
        assert_eq!(hi - lo, 7);
        // all 8 brands in the lexicographic range are in the code range
        let in_range = d.iter().filter(|(_, n)| ("MFGR#2221"..="MFGR#2228").contains(n)).count();
        assert_eq!(in_range, 8);
        // MFGR#2239 (Q2.3) exists
        assert!(d.encode("MFGR#2239").is_some());
    }

    #[test]
    fn brand_code_embeds_category() {
        let d = brand_dict().unwrap();
        let cat = category_dict().unwrap();
        // every brand of category MFGR#12 has code in [cat_code*40, +40)
        let c = cat.encode("MFGR#12").unwrap();
        for b in 1..=40 {
            let code = d.encode(&format!("MFGR#12{b:02}")).unwrap();
            assert_eq!(code / 40, c);
        }
    }

    #[test]
    fn category_dict_25_entries() {
        assert_eq!(category_dict().unwrap().len(), 25);
    }

    #[test]
    fn type_and_container_cardinalities() {
        assert_eq!(part_type_dict().unwrap().len(), 150);
        assert_eq!(container_dict().unwrap().len(), 40);
    }

    #[test]
    fn nation_region_mapping() {
        let idx = NATIONS.iter().position(|(n, _)| *n == "UNITED STATES").unwrap();
        assert_eq!(REGIONS[nation_region(idx)], "AMERICA");
        let idx = NATIONS.iter().position(|(n, _)| *n == "CHINA").unwrap();
        assert_eq!(REGIONS[nation_region(idx)], "ASIA");
    }
}
