//! Normalized star-schema catalog: the fact table plus the four
//! dimension tables as *separate* relations, with the foreign-key
//! metadata a join executor needs.
//!
//! This is the storage model the pre-join ([`crate::ssb::prejoin`])
//! deliberately avoids: the paper denormalises SSB into one wide
//! relation so queries never join. The normalized catalog keeps each
//! table at its own cardinality instead — dimension attributes are
//! stored once per dimension row, not once per fact row — and records
//! which fact column carries each dimension's key so joins can run as
//! semijoin bitmaps (dimension filter → key bitmap → fact FK probe).
//!
//! Attribute names are globally unique across the five tables (`lo_*`,
//! `c_*`, `s_*`, `p_*`, `d_*`), so the same logical [`crate::plan::Query`]
//! text runs unmodified on either storage model.

use std::collections::BTreeSet;

use crate::error::DbError;
use crate::plan::Query;
use crate::relation::Relation;
use crate::ssb::SsbDb;
use crate::zonemap::ZoneMap;

/// Static metadata of one dimension of the SSB star schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimMeta {
    /// Relation name (`"customer"`, …).
    pub name: &'static str,
    /// Attribute-name prefix owned by this dimension (`"c_"`, …).
    pub prefix: &'static str,
    /// Fact attribute holding this dimension's key.
    pub fk: &'static str,
    /// The dimension's key attribute.
    pub key: &'static str,
    /// Smallest key value: keys are dense in `key_base..key_base+len`
    /// (1-based except the date dimension's 0-based day index), so key
    /// `k` lives at row `k - key_base`.
    pub key_base: u64,
}

/// The four SSB dimensions, in catalog order (customer, supplier,
/// part, date) — the same order [`crate::ssb::SsbDb::prejoin`] joins
/// them in.
pub const DIMENSIONS: [DimMeta; 4] = [
    DimMeta { name: "customer", prefix: "c_", fk: "lo_custkey", key: "c_custkey", key_base: 1 },
    DimMeta { name: "supplier", prefix: "s_", fk: "lo_suppkey", key: "s_suppkey", key_base: 1 },
    DimMeta { name: "part", prefix: "p_", fk: "lo_partkey", key: "p_partkey", key_base: 1 },
    DimMeta { name: "date", prefix: "d_", fk: "lo_orderdate", key: "d_datekey", key_base: 0 },
];

/// Fact attributes no SSB query (standard or combined) ever reads —
/// filter, GROUP BY or aggregate. A PIM layout for the normalized fact
/// table may leave them host-resident (they stay in the catalog copy),
/// shrinking the PIM-resident record the same way the engine already
/// drops `*_phone`. Matches [`cold_attrs`] derived from the SSB
/// workload with the four foreign keys kept (tested below).
pub const COLD_FACT_ATTRS: [&str; 8] = [
    "lo_orderkey",
    "lo_linenumber",
    "lo_orderpriority",
    "lo_shippriority",
    "lo_ordtotalprice",
    "lo_tax",
    "lo_commitdate",
    "lo_shipmode",
];

/// Every attribute some query of `workload` touches (filter, GROUP BY
/// or aggregate input).
pub fn workload_attrs(workload: &[Query]) -> BTreeSet<String> {
    workload.iter().flat_map(|q| q.referenced_attrs().into_iter().map(str::to_string)).collect()
}

/// Attributes of `rel` a PIM layout can leave host-resident for a
/// given workload: everything not in `hot`, not in `keep`, and not a
/// `*_phone` column (the layout already excludes those on its own).
///
/// `keep` pins attributes the executor needs on-module even though no
/// query names them — the fact table's foreign keys, which semijoin
/// probes read. Dimension *keys* need no pin: keys are dense
/// (`row = key − key_base`), so the record's position already encodes
/// the key and the stored column is redundant on-module.
pub fn cold_attrs(rel: &Relation, hot: &BTreeSet<String>, keep: &[&str]) -> Vec<String> {
    rel.schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .filter(|n| !hot.contains(n) && !keep.contains(&n.as_str()) && !n.ends_with("_phone"))
        .collect()
}

/// The full SSB workload (standard + combined queries) the catalog's
/// residency decisions are derived from.
pub fn ssb_workload() -> Vec<Query> {
    let mut qs = crate::ssb::queries::standard_queries();
    qs.extend(crate::ssb::queries::combined_queries());
    qs
}

/// PIM-resident storage footprint of one table under a given layout
/// exclusion set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFootprint {
    /// Relation name.
    pub table: String,
    /// Row count.
    pub records: usize,
    /// Bits of one record that actually reside in PIM.
    pub resident_bits: usize,
    /// Total resident data bytes (`records × resident_bits / 8`,
    /// rounded up).
    pub data_bytes: u64,
}

/// Resident data bytes of `rel` when `excluded` attributes (plus the
/// engine's always-excluded `*_phone` columns) stay host-side.
///
/// The byte count is *data* footprint — what the stored records cost in
/// crossbar cells — which is the quantity the normalized/pre-joined
/// comparison is about: page counts depend on a config's
/// records-per-page and hide the width difference entirely.
pub fn table_footprint(rel: &Relation, excluded: &[String]) -> TableFootprint {
    let resident_bits: usize = rel
        .schema()
        .attrs()
        .iter()
        .filter(|a| !a.name.ends_with("_phone") && !excluded.iter().any(|e| e == &a.name))
        .map(|a| a.bits)
        .sum();
    TableFootprint {
        table: rel.schema().name.clone(),
        records: rel.len(),
        resident_bits,
        data_bytes: ((rel.len() * resident_bits) as u64).div_ceil(8),
    }
}

/// The normalized star-schema catalog: one fact relation and the four
/// dimension relations, each with its own zone map.
#[derive(Debug, Clone)]
pub struct StarSchema {
    fact: Relation,
    dims: [Relation; 4],
}

impl StarSchema {
    /// Build the catalog from a generated SSB instance (clones the
    /// tables — the catalog owns mutable copies so UPDATEs can patch
    /// them).
    pub fn of_db(db: &SsbDb) -> StarSchema {
        StarSchema {
            fact: db.lineorder.clone(),
            dims: [db.customer.clone(), db.supplier.clone(), db.part.clone(), db.date.clone()],
        }
    }

    /// The fact relation (`lineorder`).
    pub fn fact(&self) -> &Relation {
        &self.fact
    }

    /// Mutable fact relation (UPDATE maintenance).
    pub fn fact_mut(&mut self) -> &mut Relation {
        &mut self.fact
    }

    /// One dimension relation by catalog index (see [`DIMENSIONS`]).
    ///
    /// # Panics
    ///
    /// Panics when `d >= 4`.
    pub fn dim(&self, d: usize) -> &Relation {
        &self.dims[d]
    }

    /// Mutable dimension relation (UPDATE maintenance).
    ///
    /// # Panics
    ///
    /// Panics when `d >= 4`.
    pub fn dim_mut(&mut self, d: usize) -> &mut Relation {
        &mut self.dims[d]
    }

    /// All four dimensions in catalog order.
    pub fn dims(&self) -> &[Relation; 4] {
        &self.dims
    }

    /// Which dimension owns an attribute name (`None` = the fact
    /// table). Resolution is purely by prefix, exploiting SSB's
    /// globally unique attribute names.
    pub fn dim_of_attr(attr: &str) -> Option<usize> {
        if attr.starts_with("lo_") {
            return None;
        }
        DIMENSIONS.iter().position(|m| attr.starts_with(m.prefix))
    }

    /// The table an attribute belongs to: `None` for fact, `Some(d)`
    /// for dimension `d` — erroring on names no table has.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchAttribute`] when neither the fact schema nor
    /// the owning dimension resolves the name.
    pub fn resolve_attr(&self, attr: &str) -> Result<Option<usize>, DbError> {
        match Self::dim_of_attr(attr) {
            None => {
                self.fact.schema().index_of(attr)?;
                Ok(None)
            }
            Some(d) => {
                self.dims[d].schema().index_of(attr)?;
                Ok(Some(d))
            }
        }
    }

    /// Zone map of the fact table.
    pub fn fact_zone(&self) -> ZoneMap {
        self.fact.zone_map()
    }

    /// Zone map of one dimension.
    ///
    /// # Panics
    ///
    /// Panics when `d >= 4`.
    pub fn dim_zone(&self, d: usize) -> ZoneMap {
        self.dims[d].zone_map()
    }

    /// Positional lookup of a dimension attribute through a fact
    /// foreign-key value (dense keys: the "hash" probe is an array
    /// index).
    ///
    /// # Panics
    ///
    /// Panics on a dangling key or out-of-range indices.
    pub fn dim_value(&self, d: usize, fk_value: u64, col: usize) -> u64 {
        self.dims[d].value((fk_value - DIMENSIONS[d].key_base) as usize, col)
    }

    /// Cold (host-resident) attribute lists for the five tables under
    /// the SSB workload: index 0 is the fact table (foreign keys
    /// pinned on-module), indices 1–4 the dimensions in catalog order
    /// (keys cold — dense keys make the stored column redundant).
    pub fn ssb_cold_attrs(&self) -> [Vec<String>; 5] {
        let hot = workload_attrs(&ssb_workload());
        let fks: Vec<&str> = DIMENSIONS.iter().map(|m| m.fk).collect();
        [
            cold_attrs(&self.fact, &hot, &fks),
            cold_attrs(&self.dims[0], &hot, &[]),
            cold_attrs(&self.dims[1], &hot, &[]),
            cold_attrs(&self.dims[2], &hot, &[]),
            cold_attrs(&self.dims[3], &hot, &[]),
        ]
    }

    /// Per-table PIM-resident footprints: the fact table first, then
    /// the four dimensions, each with the matching entry of `excluded`
    /// (see [`StarSchema::ssb_cold_attrs`]) host-resident.
    pub fn footprints(&self, excluded: &[Vec<String>; 5]) -> Vec<TableFootprint> {
        let mut out = Vec::with_capacity(5);
        out.push(table_footprint(&self.fact, &excluded[0]));
        for (d, dim) in self.dims.iter().enumerate() {
            out.push(table_footprint(dim, &excluded[d + 1]));
        }
        out
    }

    /// Total resident data bytes across the five tables.
    pub fn total_data_bytes(&self, excluded: &[Vec<String>; 5]) -> u64 {
        self.footprints(excluded).iter().map(|f| f.data_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::SsbParams;

    fn star() -> StarSchema {
        StarSchema::of_db(&SsbDb::generate(&SsbParams::tiny_for_tests()))
    }

    #[test]
    fn attr_resolution_routes_by_prefix() {
        let s = star();
        assert_eq!(s.resolve_attr("lo_revenue").unwrap(), None);
        assert_eq!(s.resolve_attr("c_region").unwrap(), Some(0));
        assert_eq!(s.resolve_attr("s_city").unwrap(), Some(1));
        assert_eq!(s.resolve_attr("p_brand1").unwrap(), Some(2));
        assert_eq!(s.resolve_attr("d_year").unwrap(), Some(3));
        assert!(s.resolve_attr("x_unknown").is_err());
        assert!(s.resolve_attr("lo_nonexistent").is_err());
    }

    #[test]
    fn fk_metadata_matches_prejoin_wiring() {
        let s = star();
        for (d, meta) in DIMENSIONS.iter().enumerate() {
            assert!(s.fact().schema().index_of(meta.fk).is_ok(), "{}", meta.fk);
            let key_idx = s.dim(d).schema().index_of(meta.key).unwrap();
            // dense, key_base-based: key k at row k - key_base
            for row in [0usize, s.dim(d).len() - 1] {
                assert_eq!(s.dim(d).value(row, key_idx), row as u64 + meta.key_base);
            }
        }
    }

    #[test]
    fn dim_value_agrees_with_prejoined_row() {
        let db = SsbDb::generate(&SsbParams::tiny_for_tests());
        let wide = db.prejoin();
        let s = StarSchema::of_db(&db);
        let city_col = s.dim(0).schema().index_of("c_city").unwrap();
        let year_col = s.dim(3).schema().index_of("d_year").unwrap();
        for row in (0..wide.len()).step_by(131) {
            let ck = wide.value_by_name(row, "lo_custkey").unwrap();
            assert_eq!(s.dim_value(0, ck, city_col), wide.value_by_name(row, "c_city").unwrap());
            let day = wide.value_by_name(row, "lo_orderdate").unwrap();
            assert_eq!(s.dim_value(3, day, year_col), wide.value_by_name(row, "d_year").unwrap());
        }
    }

    #[test]
    fn cold_fact_attrs_unreferenced_by_all_queries() {
        for q in crate::ssb::queries::standard_queries()
            .iter()
            .chain(&crate::ssb::queries::combined_queries())
        {
            for attr in q.referenced_attrs() {
                assert!(!COLD_FACT_ATTRS.contains(&attr), "{} reads cold attr {attr}", q.id);
            }
        }
    }

    #[test]
    fn cold_fact_attrs_match_workload_derivation() {
        let s = star();
        assert_eq!(
            s.ssb_cold_attrs()[0],
            COLD_FACT_ATTRS.iter().map(|a| a.to_string()).collect::<Vec<_>>()
        );
        // dim keys go cold (positional), referenced dim attrs stay hot
        let c_cold = &s.ssb_cold_attrs()[1];
        assert!(c_cold.contains(&"c_custkey".to_string()));
        assert!(c_cold.contains(&"c_mktsegment".to_string()));
        assert!(!c_cold.contains(&"c_region".to_string()));
    }

    #[test]
    fn normalized_footprint_is_under_a_third_of_prejoin_at_ci_scale() {
        // CI bench scale factor (the fixed 2556-row date dimension makes
        // the ratio scale-sensitive below ~10 K fact rows)
        let db = SsbDb::generate(&SsbParams::uniform(0.002));
        let wide = db.prejoin();
        let s = StarSchema::of_db(&db);
        let normalized = s.total_data_bytes(&s.ssb_cold_attrs());
        let prejoined = table_footprint(&wide, &[]).data_bytes;
        assert!(
            normalized * 3 <= prejoined,
            "normalized {normalized} B vs pre-joined {prejoined} B"
        );
    }

    #[test]
    fn footprints_cover_all_five_tables() {
        let s = star();
        let none: [Vec<String>; 5] = Default::default();
        let fps = s.footprints(&none);
        assert_eq!(fps.len(), 5);
        assert_eq!(fps[0].table, "lineorder");
        assert_eq!(fps[1].table, "customer");
        assert_eq!(fps[4].table, "date");
        for f in &fps {
            assert!(f.resident_bits > 0 && f.data_bytes > 0, "{}", f.table);
        }
        // phones never count as resident
        let with_phones: usize = s.dim(0).schema().attrs().iter().map(|a| a.bits).sum();
        assert!(fps[1].resident_bits < with_phones);
    }

    #[test]
    fn zone_maps_reflect_table_contents() {
        let s = star();
        let year_idx = s.dim(3).schema().index_of("d_year").unwrap();
        assert_eq!(s.dim_zone(3).range(year_idx), Some((1992, 1998)));
        assert_eq!(s.fact_zone(), s.fact().zone_map());
    }
}
