//! Calendar arithmetic for the SSB date dimension.
//!
//! SSB specifies 2,556 rows for "7 years of days". The literal span
//! 1992-01-01..1998-12-31 is 2,557 days (1992 and 1996 are leap years);
//! we keep the benchmark's 2,556 count, so the last covered day is
//! 1998-12-30. No SSB query touches that final day.

/// First year covered by the date dimension.
pub const FIRST_YEAR: u64 = 1992;
/// Last year covered.
pub const LAST_YEAR: u64 = 1998;
/// Total days in the dimension.
pub const TOTAL_DAYS: usize = 2556;
/// 1992-01-01 was a Wednesday (day-of-week index 3 with Sunday = 0).
const FIRST_DOW: u64 = 3;

/// Gregorian leap year test (the range contains 1992 and 1996).
pub fn is_leap(year: u64) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Days in a month (1-based month).
pub fn days_in_month(year: u64, month: u64) -> u64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month} out of range"),
    }
}

/// Days in a year.
pub fn days_in_year(year: u64) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

/// Calendar date of a day index (0 = 1992-01-01).
///
/// Returns `(year, month 1..=12, day 1..=31)`.
///
/// # Panics
///
/// Panics if `day_index >= TOTAL_DAYS`.
pub fn day_to_ymd(day_index: usize) -> (u64, u64, u64) {
    assert!(day_index < TOTAL_DAYS, "day index {day_index} out of dimension");
    let mut remaining = day_index as u64;
    let mut year = FIRST_YEAR;
    while remaining >= days_in_year(year) {
        remaining -= days_in_year(year);
        year += 1;
    }
    let mut month = 1;
    while remaining >= days_in_month(year, month) {
        remaining -= days_in_month(year, month);
        month += 1;
    }
    (year, month, remaining + 1)
}

/// Day-of-week index of a day index (0 = Sunday).
pub fn day_of_week(day_index: usize) -> u64 {
    (FIRST_DOW + day_index as u64) % 7
}

/// 1-based day number within its year.
pub fn day_num_in_year(day_index: usize) -> u64 {
    let (year, _, _) = day_to_ymd(day_index);
    let mut idx = day_index as u64;
    let mut y = FIRST_YEAR;
    while y < year {
        idx -= days_in_year(y);
        y += 1;
    }
    idx + 1
}

/// 1-based week number within the year (`(daynum−1)/7 + 1`, 1..=53).
pub fn week_num_in_year(day_index: usize) -> u64 {
    (day_num_in_year(day_index) - 1) / 7 + 1
}

/// Selling-season index into [`super::names::SEASONS`]
/// (Christmas, Fall, Spring, Summer, Winter).
pub fn season_index(month: u64) -> u64 {
    match month {
        11 | 12 => 0, // Christmas
        9 | 10 => 1,  // Fall
        3..=5 => 2,   // Spring
        6..=8 => 3,   // Summer
        _ => 4,       // Winter (Jan, Feb)
    }
}

/// Fixed-date holiday flag (ten holidays a year, as in SSB dbgen's
/// spirit: enough days to make `d_holidayfl` selective but non-trivial).
pub fn is_holiday(month: u64, day: u64) -> bool {
    matches!(
        (month, day),
        (1, 1)
            | (2, 14)
            | (3, 17)
            | (5, 1)
            | (7, 4)
            | (9, 2)
            | (10, 31)
            | (11, 28)
            | (12, 25)
            | (12, 31)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years_in_range() {
        assert!(is_leap(1992));
        assert!(is_leap(1996));
        assert!(!is_leap(1993));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
    }

    #[test]
    fn total_days_is_ssb_count() {
        // The literal 7-year span has 2557 days; SSB says 2556.
        let sum: u64 = (FIRST_YEAR..=LAST_YEAR).map(days_in_year).sum();
        assert_eq!(sum as usize, TOTAL_DAYS + 1);
    }

    #[test]
    fn first_and_last_day() {
        assert_eq!(day_to_ymd(0), (1992, 1, 1));
        assert_eq!(day_to_ymd(TOTAL_DAYS - 1), (1998, 12, 30));
    }

    #[test]
    fn leap_day_exists() {
        // 1992-02-29 is day 31 + 28 = 59
        assert_eq!(day_to_ymd(59), (1992, 2, 29));
        assert_eq!(day_to_ymd(60), (1992, 3, 1));
    }

    #[test]
    fn day_of_week_anchored() {
        assert_eq!(day_of_week(0), 3); // Wednesday
        assert_eq!(day_of_week(4), 0); // Sunday 1992-01-05
        assert_eq!(day_of_week(7), 3);
    }

    #[test]
    fn day_and_week_numbers() {
        assert_eq!(day_num_in_year(0), 1);
        assert_eq!(week_num_in_year(0), 1);
        assert_eq!(day_num_in_year(366), 1); // 1993-01-01 after leap 1992
        assert_eq!(day_to_ymd(366), (1993, 1, 1));
        assert_eq!(week_num_in_year(365), 53); // 1992-12-31, day 366
    }

    #[test]
    fn seasons_cover_all_months() {
        for m in 1..=12 {
            assert!(season_index(m) < 5);
        }
        assert_eq!(season_index(12), 0);
        assert_eq!(season_index(7), 3);
    }

    #[test]
    fn holidays() {
        assert!(is_holiday(12, 25));
        assert!(!is_holiday(12, 26));
    }

    #[test]
    #[should_panic(expected = "out of dimension")]
    fn day_index_bound_checked() {
        let _ = day_to_ymd(TOTAL_DAYS);
    }
}
