//! Pre-joining (denormalisation) of the star schema.
//!
//! Section III of the paper: the fact relation is equi-joined with every
//! dimension on the dimension keys. Keys are unique, so each lineorder
//! matches exactly one row per dimension — the wide relation has exactly
//! as many records as the fact relation (no fan-out), and only grows in
//! record *width*, which bulk-bitwise PIM absorbs in the unused crossbar
//! row space.
//!
//! The duplicate key columns of the dimensions are dropped (their values
//! equal `lo_custkey` / `lo_suppkey` / `lo_partkey` / `lo_orderdate`).

use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::Schema;

/// Dimension key columns omitted from the wide schema.
const DROPPED_KEYS: [&str; 4] = ["c_custkey", "s_suppkey", "p_partkey", "d_datekey"];

/// Build the pre-joined (denormalised) relation.
///
/// `dims` pairs each dimension with the fact attribute holding its key:
/// customer via `lo_custkey`, supplier via `lo_suppkey`, part via
/// `lo_partkey`, date via `lo_orderdate`. Dimension keys are dense and
/// 1-based except the date dimension, whose key is the 0-based day
/// index.
///
/// # Errors
///
/// [`DbError::DanglingKey`] if a fact row references a missing
/// dimension row; attribute errors if schemas do not line up.
pub fn prejoin(fact: &Relation, dims: &[(&Relation, &str)]) -> Result<Relation, DbError> {
    // Wide schema: all fact attributes, then each dimension's attributes
    // minus its key column.
    let mut attrs = fact.schema().attrs().to_vec();
    for (dim, _) in dims {
        for a in dim.schema().attrs() {
            if !DROPPED_KEYS.contains(&a.name.as_str()) {
                attrs.push(a.clone());
            }
        }
    }
    let wide_schema = Schema::new(format!("{}_prejoined", fact.schema().name), attrs);

    // Resolve indices once.
    let fact_arity = fact.schema().arity();
    struct DimPlan<'a> {
        rel: &'a Relation,
        fk_idx: usize,
        kept_cols: Vec<usize>,
        key_idx: usize,
        one_based: bool,
    }
    let mut plans = Vec::with_capacity(dims.len());
    for (dim, fk_name) in dims {
        let fk_idx = fact.schema().index_of(fk_name)?;
        let key_name = dim
            .schema()
            .attrs()
            .iter()
            .find(|a| DROPPED_KEYS.contains(&a.name.as_str()))
            .map(|a| a.name.clone())
            .ok_or_else(|| {
                DbError::InvalidQuery(format!(
                    "dimension `{}` has no recognised key column",
                    dim.schema().name
                ))
            })?;
        let key_idx = dim.schema().index_of(&key_name)?;
        let kept_cols: Vec<usize> = (0..dim.schema().arity()).filter(|i| *i != key_idx).collect();
        // The date dimension keys rows by 0-based day index.
        let one_based = key_name != "d_datekey";
        plans.push(DimPlan { rel: dim, fk_idx, kept_cols, key_idx, one_based });
    }

    let mut wide = Relation::with_capacity(wide_schema, fact.len());
    let mut row_buf: Vec<u64> = Vec::with_capacity(fact.schema().arity() + 32);
    for row in 0..fact.len() {
        row_buf.clear();
        for c in 0..fact_arity {
            row_buf.push(fact.value(row, c));
        }
        for plan in &plans {
            let key = fact.value(row, plan.fk_idx);
            let dim_row = if plan.one_based { key.checked_sub(1) } else { Some(key) }
                .map(|k| k as usize)
                .filter(|k| *k < plan.rel.len())
                .ok_or_else(|| DbError::DanglingKey {
                    relation: plan.rel.schema().name.clone(),
                    key,
                })?;
            // dense keys: verify the row really holds this key
            debug_assert_eq!(
                plan.rel.value(dim_row, plan.key_idx),
                key,
                "dimension rows must be key-ordered"
            );
            for &c in &plan.kept_cols {
                row_buf.push(plan.rel.value(dim_row, c));
            }
        }
        wide.push_row(&row_buf)?;
    }
    Ok(wide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::{SsbDb, SsbParams};

    fn db() -> SsbDb {
        SsbDb::generate(&SsbParams::tiny_for_tests())
    }

    #[test]
    fn wide_has_fact_cardinality() {
        let db = db();
        let wide = db.prejoin();
        assert_eq!(wide.len(), db.lineorder.len());
    }

    #[test]
    fn wide_arity_is_union_minus_keys() {
        let db = db();
        let wide = db.prejoin();
        let expected = db.lineorder.schema().arity()
            + (db.customer.schema().arity() - 1)
            + (db.supplier.schema().arity() - 1)
            + (db.part.schema().arity() - 1)
            + (db.date.schema().arity() - 1);
        assert_eq!(wide.schema().arity(), expected);
    }

    #[test]
    fn joined_values_match_dimension_lookup() {
        let db = db();
        let wide = db.prejoin();
        for row in (0..wide.len()).step_by(97) {
            let custkey = wide.value_by_name(row, "lo_custkey").unwrap();
            let expect_city = db.customer.value_by_name(custkey as usize - 1, "c_city").unwrap();
            assert_eq!(wide.value_by_name(row, "c_city").unwrap(), expect_city);

            let day = wide.value_by_name(row, "lo_orderdate").unwrap();
            let expect_year = db.date.value_by_name(day as usize, "d_year").unwrap();
            assert_eq!(wide.value_by_name(row, "d_year").unwrap(), expect_year);

            let partkey = wide.value_by_name(row, "lo_partkey").unwrap();
            let expect_brand = db.part.value_by_name(partkey as usize - 1, "p_brand1").unwrap();
            assert_eq!(wide.value_by_name(row, "p_brand1").unwrap(), expect_brand);
        }
    }

    #[test]
    fn dimension_key_columns_dropped() {
        let db = db();
        let wide = db.prejoin();
        for key in DROPPED_KEYS {
            assert!(wide.schema().index_of(key).is_err(), "{key} should be dropped");
        }
    }

    #[test]
    fn record_width_fits_one_crossbar_row_budget() {
        // The paper's claim: the pre-joined record (without NAME/ADDRESS)
        // fits a 512-bit crossbar row. Phones are excluded from the PIM
        // layout (see bbpim-core), so check the budget without them.
        let db = db();
        let wide = db.prejoin();
        let phone_bits: usize = wide
            .schema()
            .attrs()
            .iter()
            .filter(|a| a.name.ends_with("_phone"))
            .map(|a| a.bits)
            .sum();
        let bits = wide.schema().record_bits() - phone_bits;
        assert!(bits <= 440, "pre-joined record is {bits} bits; must leave scratch room");
    }
}
