//! The 13 SSB queries as logical plans over the pre-joined relation,
//! written through the fluent v2 builder, plus multi-aggregate
//! "combined" reporting variants.
//!
//! [`standard_queries`] uses the benchmark's published constants.
//! [`adjusted_queries`] re-picks filter constants against a concrete
//! (skewed) instance so each query retains a selectivity similar to the
//! uniform benchmark — the paper: "When required, we change the
//! parameters of the queries to retain similar query selectivity … as
//! in the original uniform data".
//!
//! Q1.x aggregate `extendedprice · discount` and Q4.x aggregate
//! `revenue − supplycost`; both are computed *inside* the crossbars by
//! the PIM engine ([`crate::plan::AggExpr`]).
//!
//! [`combined_queries`] are the SSB reporting patterns the single-
//! aggregate surface could not express: several named aggregates over
//! one filter (`Q1.1-combined`: revenue + order count + average
//! discount) and an OR-of-ranges filter (`Q1.hol`). One planned filter
//! mask feeds every aggregate, so these cost one filter pass, not one
//! per aggregate.

use std::collections::HashMap;

use crate::builder::col;
use crate::error::DbError;
use crate::plan::{AggExpr, Atom, Const, Pred, Query, SelectItem};
use crate::relation::Relation;

fn revenue() -> AggExpr {
    AggExpr::attr("lo_revenue")
}

fn price_disc() -> AggExpr {
    AggExpr::mul("lo_extendedprice", "lo_discount")
}

fn profit() -> AggExpr {
    AggExpr::sub("lo_revenue", "lo_supplycost")
}

/// The 13 SSB queries with the benchmark's standard constants.
pub fn standard_queries() -> Vec<Query> {
    vec![
        Query::select([SelectItem::sum("value", price_disc())])
            .id("Q1.1")
            .filter(
                col("d_year")
                    .eq(1993u64)
                    .and(col("lo_discount").between(1u64, 3u64))
                    .and(col("lo_quantity").lt(25u64)),
            )
            .build_unchecked(),
        Query::select([SelectItem::sum("value", price_disc())])
            .id("Q1.2")
            .filter(
                col("d_yearmonthnum")
                    .eq(199_401u64)
                    .and(col("lo_discount").between(4u64, 6u64))
                    .and(col("lo_quantity").between(26u64, 35u64)),
            )
            .build_unchecked(),
        Query::select([SelectItem::sum("value", price_disc())])
            .id("Q1.3")
            .filter(
                col("d_weeknuminyear")
                    .eq(6u64)
                    .and(col("d_year").eq(1994u64))
                    .and(col("lo_discount").between(5u64, 7u64))
                    .and(col("lo_quantity").between(26u64, 35u64)),
            )
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q2.1")
            .filter(col("p_category").eq("MFGR#12").and(col("s_region").eq("AMERICA")))
            .group_by(["d_year", "p_brand1"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q2.2")
            .filter(
                col("p_brand1").between("MFGR#2221", "MFGR#2228").and(col("s_region").eq("ASIA")),
            )
            .group_by(["d_year", "p_brand1"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q2.3")
            .filter(col("p_brand1").eq("MFGR#2239").and(col("s_region").eq("EUROPE")))
            .group_by(["d_year", "p_brand1"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q3.1")
            .filter(
                col("c_region")
                    .eq("ASIA")
                    .and(col("s_region").eq("ASIA"))
                    .and(col("d_year").between(1992u64, 1997u64)),
            )
            .group_by(["c_nation", "s_nation", "d_year"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q3.2")
            .filter(
                col("c_nation")
                    .eq("UNITED STATES")
                    .and(col("s_nation").eq("UNITED STATES"))
                    .and(col("d_year").between(1992u64, 1997u64)),
            )
            .group_by(["c_city", "s_city", "d_year"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q3.3")
            .filter(
                col("c_city")
                    .is_in(["UNITED KI1", "UNITED KI5"])
                    .and(col("s_city").is_in(["UNITED KI1", "UNITED KI5"]))
                    .and(col("d_year").between(1992u64, 1997u64)),
            )
            .group_by(["c_city", "s_city", "d_year"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", revenue())])
            .id("Q3.4")
            .filter(
                col("c_city")
                    .is_in(["UNITED KI1", "UNITED KI5"])
                    .and(col("s_city").is_in(["UNITED KI1", "UNITED KI5"]))
                    .and(col("d_yearmonth").eq("Dec1997"))
                    // implied by Dec1997; spelled out so the potential-
                    // subgroup count matches the paper's 2 × 2 × 1
                    .and(col("d_year").eq(1997u64)),
            )
            .group_by(["c_city", "s_city", "d_year"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", profit())])
            .id("Q4.1")
            .filter(
                col("c_region")
                    .eq("AMERICA")
                    .and(col("s_region").eq("AMERICA"))
                    .and(col("p_mfgr").is_in(["MFGR#1", "MFGR#2"])),
            )
            .group_by(["d_year", "c_nation"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", profit())])
            .id("Q4.2")
            .filter(
                col("d_year")
                    .is_in([1997u64, 1998u64])
                    .and(col("c_region").eq("AMERICA"))
                    .and(col("s_region").eq("AMERICA"))
                    .and(col("p_mfgr").is_in(["MFGR#1", "MFGR#2"])),
            )
            .group_by(["d_year", "s_nation", "p_category"])
            .build_unchecked(),
        Query::select([SelectItem::sum("value", profit())])
            .id("Q4.3")
            .filter(
                col("d_year")
                    .is_in([1997u64, 1998u64])
                    .and(col("c_region").eq("AMERICA"))
                    .and(col("s_nation").eq("UNITED STATES"))
                    .and(col("p_category").eq("MFGR#14")),
            )
            .group_by(["d_year", "s_city", "p_brand1"])
            .build_unchecked(),
    ]
}

/// Multi-aggregate / disjunctive reporting variants of the Q1.x pattern
/// — the query shapes the v2 surface adds:
///
/// * `Q1.x-combined` — the Q1.x filter feeding three named aggregates
///   (revenue, matching-order count, average discount) off **one**
///   planned filter mask.
/// * `Q1.hol` — an OR-of-ranges filter (two discount windows in two
///   different years), exercising DNF execution and interval-union
///   zone pruning.
/// * `Q2.1-stats` — a GROUP BY with sum + count + avg per group,
///   merged per named column across shards.
pub fn combined_queries() -> Vec<Query> {
    let q1_combined = |id: &str, base: &str| {
        let filter = standard_query(base).expect("base query exists").filter;
        Query::select([
            SelectItem::sum("revenue", price_disc()),
            SelectItem::count("orders"),
            SelectItem::avg("avg_discount", AggExpr::attr("lo_discount")),
        ])
        .id(id)
        .filter(filter)
        .build_unchecked()
    };
    vec![
        q1_combined("Q1.1-combined", "Q1.1"),
        q1_combined("Q1.2-combined", "Q1.2"),
        q1_combined("Q1.3-combined", "Q1.3"),
        Query::select([SelectItem::sum("revenue", price_disc()), SelectItem::count("orders")])
            .id("Q1.hol")
            .filter(
                col("lo_quantity").lt(25u64).and(
                    col("d_year").eq(1993u64).and(col("lo_discount").between(1u64, 3u64)).or(col(
                        "d_year",
                    )
                    .eq(1994u64)
                    .and(col("lo_discount").between(5u64, 7u64))),
                ),
            )
            .build_unchecked(),
        Query::select([
            SelectItem::sum("revenue", AggExpr::attr("lo_revenue")),
            SelectItem::count("orders"),
            SelectItem::avg("avg_revenue", AggExpr::attr("lo_revenue")),
        ])
        .id("Q2.1-stats")
        .filter(col("p_category").eq("MFGR#12").and(col("s_region").eq("AMERICA")))
        .group_by(["d_year"])
        .build_unchecked(),
    ]
}

/// Look up one standard query by id (`"Q2.1"`…).
pub fn standard_query(id: &str) -> Option<Query> {
    standard_queries().into_iter().find(|q| q.id == id)
}

/// Look up one combined variant by id (`"Q1.1-combined"`…).
pub fn combined_query(id: &str) -> Option<Query> {
    combined_queries().into_iter().find(|q| q.id == id)
}

/// Attributes whose equality constants [`adjusted_queries`] may re-pick.
const ADJUSTABLE: [&str; 9] = [
    "c_region",
    "s_region",
    "c_nation",
    "s_nation",
    "c_city",
    "s_city",
    "p_category",
    "p_brand1",
    "p_mfgr",
];

/// Re-pick filter constants against a concrete instance so selectivity
/// stays near the uniform benchmark's.
///
/// * `Eq` on an adjustable dimension attribute → the domain value whose
///   observed frequency is closest to `1 / |distinct values|`.
/// * `In` over adjustable attributes → the k distinct values closest to
///   the uniform share.
/// * `Between` on `p_brand1` → the window of equal width whose total
///   frequency is closest to uniform.
///
/// Other atoms (dates, discounts, quantities) are left untouched.
///
/// # Errors
///
/// Propagates schema resolution failures.
pub fn adjusted_queries(rel: &Relation) -> Result<Vec<Query>, DbError> {
    standard_queries().into_iter().map(|query| adjust_query(query, rel)).collect()
}

fn adjust_query(mut query: Query, rel: &Relation) -> Result<Query, DbError> {
    adjust_pred(&mut query.filter, rel)?;
    Ok(query)
}

/// Re-pick the adjustable constants of every atom in a filter tree (the
/// tree shape — including any `OR` branches — is preserved).
pub fn adjust_pred(pred: &mut Pred, rel: &Relation) -> Result<(), DbError> {
    for atom in pred.atoms_mut() {
        if !ADJUSTABLE.contains(&atom.attr()) {
            continue;
        }
        let idx = rel.schema().index_of(atom.attr())?;
        let freqs = frequency_map(rel, idx);
        let distinct = freqs.len().max(1);
        let target = 1.0 / distinct as f64;
        match atom {
            Atom::Eq { value, .. } => {
                if let Some(best) = closest_values(&freqs, target, 1).first() {
                    *value = recode(rel, idx, *best)?;
                }
            }
            Atom::In { values, .. } => {
                let k = values.len();
                let picks = closest_values(&freqs, target, k);
                if picks.len() == k {
                    *values = picks
                        .into_iter()
                        .map(|v| recode(rel, idx, v))
                        .collect::<Result<Vec<_>, _>>()?;
                }
            }
            Atom::Between { lo, hi, .. } => {
                let (lo_code, hi_code) = resolve_bounds(rel, idx, lo, hi)?;
                let width = (hi_code - lo_code + 1) as usize;
                if let Some((new_lo, new_hi)) = best_window(&freqs, width, target) {
                    *lo = recode(rel, idx, new_lo)?;
                    *hi = recode(rel, idx, new_hi)?;
                }
            }
            Atom::Lt { .. } | Atom::Gt { .. } => {}
        }
    }
    Ok(())
}

fn frequency_map(rel: &Relation, idx: usize) -> HashMap<u64, f64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &v in rel.column(idx).values() {
        *counts.entry(v).or_default() += 1;
    }
    let n = rel.len().max(1) as f64;
    counts.into_iter().map(|(v, c)| (v, c as f64 / n)).collect()
}

/// The k codes whose frequency is closest to `target`, deterministic
/// tie-break by code.
fn closest_values(freqs: &HashMap<u64, f64>, target: f64, k: usize) -> Vec<u64> {
    let mut items: Vec<(u64, f64)> = freqs.iter().map(|(v, f)| (*v, *f)).collect();
    items.sort_by(|a, b| {
        let da = (a.1 - target).abs();
        let db = (b.1 - target).abs();
        da.total_cmp(&db).then(a.0.cmp(&b.0))
    });
    items.into_iter().take(k).map(|(v, _)| v).collect()
}

/// Best `width`-code window `[lo, lo+width)` by total frequency vs
/// `width × target`.
fn best_window(freqs: &HashMap<u64, f64>, width: usize, target: f64) -> Option<(u64, u64)> {
    let max_code = *freqs.keys().max()?;
    let goal = width as f64 * target;
    let mut best: Option<(u64, f64)> = None;
    for lo in 0..=max_code.saturating_sub(width as u64 - 1) {
        let total: f64 =
            (lo..lo + width as u64).map(|c| freqs.get(&c).copied().unwrap_or(0.0)).sum();
        let d = (total - goal).abs();
        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
            best = Some((lo, d));
        }
    }
    best.map(|(lo, _)| (lo, lo + width as u64 - 1))
}

fn resolve_bounds(
    rel: &Relation,
    idx: usize,
    lo: &Const,
    hi: &Const,
) -> Result<(u64, u64), DbError> {
    let attr = &rel.schema().attrs()[idx];
    let enc = |c: &Const| match c {
        Const::Num(v) => Ok(*v),
        Const::Str(s) => attr.encode_str(s),
    };
    Ok((enc(lo)?, enc(hi)?))
}

/// Turn a code back into the constant form the attribute expects.
fn recode(rel: &Relation, idx: usize, code: u64) -> Result<Const, DbError> {
    let attr = &rel.schema().attrs()[idx];
    Ok(match attr.dictionary() {
        Some(d) => Const::Str(
            d.decode(code)
                .ok_or_else(|| {
                    DbError::InvalidQuery(format!(
                        "code {code} outside dictionary of `{}`",
                        attr.name
                    ))
                })?
                .to_owned(),
        ),
        None => Const::Num(code),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::{SsbDb, SsbParams};
    use crate::stats;

    #[test]
    fn thirteen_queries_with_paper_ids() {
        let qs = standard_queries();
        assert_eq!(qs.len(), 13);
        let ids: Vec<&str> = qs.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q3.2", "Q3.3", "Q3.4",
                "Q4.1", "Q4.2", "Q4.3"
            ]
        );
    }

    #[test]
    fn q1_queries_have_no_group_by() {
        for id in ["Q1.1", "Q1.2", "Q1.3"] {
            assert!(!standard_query(id).unwrap().has_group_by(), "{id}");
        }
    }

    #[test]
    fn all_queries_resolve_against_prejoined_schema() {
        let db = SsbDb::generate(&SsbParams::tiny_for_tests());
        let wide = db.prejoin();
        for query in standard_queries().into_iter().chain(combined_queries()) {
            query.validate(wide.schema()).unwrap_or_else(|e| {
                panic!("{} failed to validate: {e}", query.id);
            });
        }
    }

    #[test]
    fn combined_variants_share_the_base_filters() {
        let base = standard_query("Q1.1").unwrap();
        let combined = combined_query("Q1.1-combined").unwrap();
        assert_eq!(base.filter, combined.filter);
        assert_eq!(combined.select.len(), 3);
        // the physical plan shares the sum component the avg needs…
        let plan = combined.physical_plan().unwrap();
        assert!(plan.aggs.len() <= 4, "shared components must deduplicate");
        // …and the holiday variant really is disjunctive
        let hol = combined_query("Q1.hol").unwrap();
        assert!(hol.filter.as_conjunction().is_none());
        assert_eq!(hol.filter.dnf().len(), 2);
    }

    #[test]
    fn potential_subgroups_match_paper_table2() {
        // Paper values (Table II) require the dimension value space to be
        // covered by the generated data; at SF 0.1 the nation/brand
        // hierarchies are fully covered, the 250-city space is not (the
        // paper runs SF 10 with 20 K suppliers — 80 per city).
        let db = SsbDb::generate(&SsbParams::uniform(0.1));
        let wide = db.prejoin();
        let exact: &[(&str, u64)] = &[
            ("Q2.1", 280), // 7 years × 40 brands of the category
            ("Q2.2", 56),  // 7 × 8 brands
            ("Q2.3", 7),   // 7 × 1 brand
            ("Q3.1", 150), // 5 × 5 nations × 6 years
            ("Q4.1", 35),  // 7 years × 5 nations
        ];
        for (id, want) in exact {
            let query = standard_query(id).unwrap();
            let got = stats::potential_subgroups(&query, &wide).unwrap();
            assert_eq!(got, *want, "{id}");
        }
        // City-level queries: bounded by the paper value, scaled-down
        // coverage allows fewer.
        let bounded: &[(&str, u64)] = &[("Q3.2", 600), ("Q3.3", 24), ("Q3.4", 4), ("Q4.3", 800)];
        for (id, cap) in bounded {
            let query = standard_query(id).unwrap();
            let got = stats::potential_subgroups(&query, &wide).unwrap();
            assert!(got >= 1 && got <= *cap, "{id}: {got} not in 1..={cap}");
        }
    }

    #[test]
    fn adjustment_improves_selectivity_on_skewed_data() {
        let db = SsbDb::generate(&SsbParams::skewed(0.01));
        let wide = db.prejoin();
        let standard = standard_query("Q2.1").unwrap();
        let adjusted = adjust_query(standard.clone(), &wide).unwrap();
        let uniform_expectation = 1.0 / 25.0 / 5.0; // category × region
        let sel_std = stats::selectivity(&standard, &wide).unwrap();
        let sel_adj = stats::selectivity(&adjusted, &wide).unwrap();
        let err_std = (sel_std - uniform_expectation).abs();
        let err_adj = (sel_adj - uniform_expectation).abs();
        assert!(
            err_adj <= err_std + 1e-9,
            "adjusted {sel_adj} should be at least as close to {uniform_expectation} as {sel_std}"
        );
    }

    #[test]
    fn adjustment_keeps_query_shape() {
        let db = SsbDb::generate(&SsbParams::skewed(0.01));
        let wide = db.prejoin();
        for (std_q, adj_q) in standard_queries().into_iter().zip(adjusted_queries(&wide).unwrap()) {
            assert_eq!(std_q.id, adj_q.id);
            assert_eq!(std_q.filter.atoms().len(), adj_q.filter.atoms().len());
            assert_eq!(std_q.group_by, adj_q.group_by);
            adj_q.validate(wide.schema()).unwrap();
        }
    }

    #[test]
    fn uniform_selectivities_in_paper_ballpark() {
        // Table II: Q1.1 ≈ 2.3e-2, Q2.1 ≈ 1.2e-2 (skewed); on uniform
        // data the analytic expectations are 1/7·3/11·24/50 ≈ 1.9e-2 and
        // 1/25·1/5 = 8e-3. Accept the right order of magnitude.
        let db = SsbDb::generate(&SsbParams::uniform(0.02));
        let wide = db.prejoin();
        let s11 = stats::selectivity(&standard_query("Q1.1").unwrap(), &wide).unwrap();
        assert!((0.005..0.06).contains(&s11), "Q1.1 selectivity {s11}");
        let s21 = stats::selectivity(&standard_query("Q2.1").unwrap(), &wide).unwrap();
        assert!((0.002..0.03).contains(&s21), "Q2.1 selectivity {s21}");
    }
}
