//! The LINEORDER fact relation generator.
//!
//! Orders have 1–7 lines (≈4 on average, so a scale factor `sf` yields
//! ≈ 6,000,000 × sf lineorders from 1,500,000 × sf orders). Foreign keys
//! are drawn uniformly, or Zipf-distributed when a skew θ is configured
//! (the Rabl et al. variant the paper evaluates). `lo_supplycost` is
//! generated at 8–12 % of the extended price so that SSB Q4's
//! `revenue − supplycost` is always positive — documented substitution
//! for dbgen's formula, which preserves the profit-query behaviour.

use rand::rngs::StdRng;
use rand::Rng;

use crate::dict::bits_for;
use crate::error::DbError;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::ssb::calendar;
use crate::ssb::dims::part_price;
use crate::ssb::names;
use crate::ssb::skew::Zipf;

/// Key-space sampler: uniform or Zipf over `1..=n`.
#[derive(Debug)]
pub enum KeySampler {
    /// Uniform over `1..=n`.
    Uniform(u64),
    /// Zipf over `1..=n`.
    Zipf(Zipf),
}

impl KeySampler {
    /// Build for `n` keys with optional Zipf θ.
    pub fn new(n: usize, theta: Option<f64>) -> Self {
        match theta {
            Some(t) if t > 0.0 => KeySampler::Zipf(Zipf::new(n, t)),
            _ => KeySampler::Uniform(n as u64),
        }
    }

    /// Draw a key in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            KeySampler::Uniform(n) => rng.gen_range(1..=*n),
            KeySampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Inputs for [`generate`].
#[derive(Debug)]
pub struct LineorderSpec {
    /// Number of orders (lineorders ≈ 4 × orders).
    pub orders: usize,
    /// Customer count (key space).
    pub customers: usize,
    /// Supplier count.
    pub suppliers: usize,
    /// Part count.
    pub parts: usize,
    /// Zipf θ for foreign keys (None = uniform).
    pub skew_theta: Option<f64>,
}

/// Generate the LINEORDER relation.
///
/// # Errors
///
/// Propagates dictionary/width failures.
pub fn generate(spec: &LineorderSpec, rng: &mut StdRng) -> Result<Relation, DbError> {
    let prio_d = names::list_dict(&names::ORDER_PRIORITIES)?;
    let ship_d = names::list_dict(&names::SHIP_MODES)?;
    let max_ext = 50 * 9999u64;
    let schema = Schema::new(
        "lineorder",
        vec![
            Attribute::numeric("lo_orderkey", bits_for(spec.orders as u64)),
            Attribute::numeric("lo_linenumber", 3),
            Attribute::numeric("lo_custkey", bits_for(spec.customers as u64)),
            Attribute::numeric("lo_partkey", bits_for(spec.parts as u64)),
            Attribute::numeric("lo_suppkey", bits_for(spec.suppliers as u64)),
            Attribute::numeric("lo_orderdate", bits_for(calendar::TOTAL_DAYS as u64 - 1)),
            Attribute::dict("lo_orderpriority", prio_d),
            Attribute::numeric("lo_shippriority", 1),
            Attribute::numeric("lo_quantity", 6),
            Attribute::numeric("lo_extendedprice", bits_for(max_ext)),
            Attribute::numeric("lo_ordtotalprice", bits_for(7 * max_ext)),
            Attribute::numeric("lo_discount", 4),
            Attribute::numeric("lo_revenue", bits_for(max_ext)),
            Attribute::numeric("lo_supplycost", bits_for(max_ext * 12 / 100)),
            Attribute::numeric("lo_tax", 4),
            Attribute::numeric("lo_commitdate", bits_for(calendar::TOTAL_DAYS as u64 - 1)),
            Attribute::dict("lo_shipmode", ship_d),
        ],
    );

    let cust = KeySampler::new(spec.customers, spec.skew_theta);
    let part = KeySampler::new(spec.parts, spec.skew_theta);
    let supp = KeySampler::new(spec.suppliers, spec.skew_theta);
    let day = KeySampler::new(calendar::TOTAL_DAYS, spec.skew_theta);

    let mut rel = Relation::with_capacity(schema, spec.orders * 4);
    let mut line_buf: Vec<[u64; 17]> = Vec::with_capacity(7);
    for orderkey in 1..=spec.orders as u64 {
        let custkey = cust.sample(rng);
        let orderdate = day.sample(rng) - 1; // day index 0-based
        let priority = rng.gen_range(0..names::ORDER_PRIORITIES.len() as u64);
        let lines = rng.gen_range(1..=7u64);
        line_buf.clear();
        let mut ordtotal = 0u64;
        for line in 1..=lines {
            let partkey = part.sample(rng);
            let suppkey = supp.sample(rng);
            let quantity = rng.gen_range(1..=50u64);
            let discount = rng.gen_range(0..=10u64);
            let tax = rng.gen_range(0..=8u64);
            let extended = quantity * part_price(partkey);
            let revenue = extended * (100 - discount) / 100;
            let supplycost = extended * rng.gen_range(8..=12u64) / 100;
            let commit =
                (orderdate + rng.gen_range(30..=90u64)).min(calendar::TOTAL_DAYS as u64 - 1);
            let shipmode = rng.gen_range(0..names::SHIP_MODES.len() as u64);
            ordtotal += extended;
            line_buf.push([
                orderkey, line, custkey, partkey, suppkey, orderdate, priority, 0, quantity,
                extended, 0, discount, revenue, supplycost, tax, commit, shipmode,
            ]);
        }
        for row in line_buf.iter_mut() {
            row[10] = ordtotal;
            rel.push_row(row.as_slice())?;
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> LineorderSpec {
        LineorderSpec { orders: 500, customers: 100, suppliers: 10, parts: 400, skew_theta: None }
    }

    fn gen_with(theta: Option<f64>) -> Relation {
        let mut s = spec();
        s.skew_theta = theta;
        generate(&s, &mut StdRng::seed_from_u64(5)).unwrap()
    }

    #[test]
    fn line_count_near_four_per_order() {
        let lo = gen_with(None);
        let per_order = lo.len() as f64 / 500.0;
        assert!((3.0..5.0).contains(&per_order), "avg lines {per_order}");
    }

    #[test]
    fn revenue_formula_holds() {
        let lo = gen_with(None);
        for row in 0..lo.len().min(500) {
            let ext = lo.value_by_name(row, "lo_extendedprice").unwrap();
            let disc = lo.value_by_name(row, "lo_discount").unwrap();
            let rev = lo.value_by_name(row, "lo_revenue").unwrap();
            assert_eq!(rev, ext * (100 - disc) / 100);
        }
    }

    #[test]
    fn profit_always_positive() {
        let lo = gen_with(None);
        for row in 0..lo.len() {
            let rev = lo.value_by_name(row, "lo_revenue").unwrap();
            let cost = lo.value_by_name(row, "lo_supplycost").unwrap();
            assert!(rev >= cost, "row {row}: revenue {rev} < supplycost {cost}");
        }
    }

    #[test]
    fn ordtotalprice_sums_order_lines() {
        let lo = gen_with(None);
        // collect per order
        use std::collections::HashMap;
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for row in 0..lo.len() {
            let ok = lo.value_by_name(row, "lo_orderkey").unwrap();
            let ext = lo.value_by_name(row, "lo_extendedprice").unwrap();
            *sums.entry(ok).or_default() += ext;
        }
        for row in 0..lo.len() {
            let ok = lo.value_by_name(row, "lo_orderkey").unwrap();
            let tot = lo.value_by_name(row, "lo_ordtotalprice").unwrap();
            assert_eq!(tot, sums[&ok]);
        }
    }

    #[test]
    fn foreign_keys_in_range() {
        let lo = gen_with(None);
        for row in 0..lo.len() {
            assert!((1..=100).contains(&lo.value_by_name(row, "lo_custkey").unwrap()));
            assert!((1..=400).contains(&lo.value_by_name(row, "lo_partkey").unwrap()));
            assert!((1..=10).contains(&lo.value_by_name(row, "lo_suppkey").unwrap()));
            assert!(lo.value_by_name(row, "lo_orderdate").unwrap() < 2556);
        }
    }

    #[test]
    fn commitdate_after_orderdate() {
        let lo = gen_with(None);
        for row in 0..lo.len() {
            let od = lo.value_by_name(row, "lo_orderdate").unwrap();
            let cd = lo.value_by_name(row, "lo_commitdate").unwrap();
            assert!(cd >= od);
        }
    }

    #[test]
    fn skew_concentrates_customers() {
        let uniform = gen_with(None);
        let skewed = gen_with(Some(1.0));
        let share = |rel: &Relation| {
            let col = rel.column_by_name("lo_custkey").unwrap();
            let top = col.values().iter().filter(|v| **v == 1).count();
            top as f64 / rel.len() as f64
        };
        assert!(share(&skewed) > 4.0 * share(&uniform), "zipf head should dominate");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&spec(), &mut StdRng::seed_from_u64(11)).unwrap();
        let b = generate(&spec(), &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a.row(100), b.row(100));
    }
}
