//! The Star Schema Benchmark: schemas, generator, pre-join, queries.
//!
//! [`SsbDb::generate`] produces the four dimensions and the LINEORDER
//! fact relation at a configurable scale factor, uniformly or with the
//! Zipf skew of Rabl et al. (the variant the paper evaluates);
//! [`SsbDb::prejoin`] denormalises them into the wide relation the PIM
//! engine stores; [`queries`] provides the 13 SSB queries as logical
//! plans.

pub mod calendar;
pub mod dims;
pub mod lineorder;
pub mod names;
pub mod prejoin;
pub mod queries;
pub mod skew;
pub mod star;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::relation::Relation;

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsbParams {
    /// Scale factor: SF = 1 ≈ 6 M lineorders (the paper uses SF = 10;
    /// any positive value works, fractional included).
    pub sf: f64,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
    /// Zipf θ for the skewed variant (None = uniform SSB).
    pub skew_theta: Option<f64>,
}

impl SsbParams {
    /// Uniform SSB at a scale factor.
    pub fn uniform(sf: f64) -> Self {
        SsbParams { sf, seed: 0xB1_7B17, skew_theta: None }
    }

    /// Skewed SSB (Rabl et al.) at a scale factor, θ = 0.8 — the paper's
    /// "non-uniform data" setting.
    pub fn skewed(sf: f64) -> Self {
        SsbParams { sf, seed: 0xB1_7B17, skew_theta: Some(0.8) }
    }

    /// A ~6 K-lineorder instance for unit tests.
    pub fn tiny_for_tests() -> Self {
        SsbParams { sf: 0.001, seed: 7, skew_theta: None }
    }

    /// Orders to generate.
    pub fn orders(&self) -> usize {
        ((1_500_000.0 * self.sf).round() as usize).max(8)
    }

    /// Customers to generate.
    pub fn customers(&self) -> usize {
        ((30_000.0 * self.sf).round() as usize).max(16)
    }

    /// Suppliers to generate.
    pub fn suppliers(&self) -> usize {
        ((2_000.0 * self.sf).round() as usize).max(8)
    }

    /// Parts to generate (SSB: 200,000 × (1 + ⌊log₂ SF⌋) for SF ≥ 1;
    /// scaled linearly below 1).
    pub fn parts(&self) -> usize {
        if self.sf >= 1.0 {
            200_000 * (1 + self.sf.log2().floor() as usize)
        } else {
            ((200_000.0 * self.sf).round() as usize).max(64)
        }
    }
}

/// A generated SSB database.
#[derive(Debug, Clone)]
pub struct SsbDb {
    /// Parameters used.
    pub params: SsbParams,
    /// CUSTOMER dimension.
    pub customer: Relation,
    /// SUPPLIER dimension.
    pub supplier: Relation,
    /// PART dimension.
    pub part: Relation,
    /// DATE dimension.
    pub date: Relation,
    /// LINEORDER fact relation.
    pub lineorder: Relation,
}

impl SsbDb {
    /// Generate a database.
    ///
    /// # Panics
    ///
    /// Panics only on internal generator bugs (width violations are
    /// impossible by construction for valid parameters).
    pub fn generate(params: &SsbParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let customer = dims::customer(params.customers(), &mut rng).expect("customer generation");
        let supplier = dims::supplier(params.suppliers(), &mut rng).expect("supplier generation");
        let part = dims::part(params.parts(), &mut rng).expect("part generation");
        let date = dims::date().expect("date generation");
        let spec = lineorder::LineorderSpec {
            orders: params.orders(),
            customers: params.customers(),
            suppliers: params.suppliers(),
            parts: params.parts(),
            skew_theta: params.skew_theta,
        };
        let lineorder = lineorder::generate(&spec, &mut rng).expect("lineorder generation");
        SsbDb { params: params.clone(), customer, supplier, part, date, lineorder }
    }

    /// Pre-join the fact relation with all four dimensions (Section III).
    ///
    /// # Panics
    ///
    /// Panics on dangling keys, which the generator cannot produce.
    pub fn prejoin(&self) -> Relation {
        prejoin::prejoin(
            &self.lineorder,
            &[
                (&self.customer, "lo_custkey"),
                (&self.supplier, "lo_suppkey"),
                (&self.part, "lo_partkey"),
                (&self.date, "lo_orderdate"),
            ],
        )
        .expect("pre-join over generated data")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_db_generates_consistently() {
        let a = SsbDb::generate(&SsbParams::tiny_for_tests());
        let b = SsbDb::generate(&SsbParams::tiny_for_tests());
        assert_eq!(a.lineorder.len(), b.lineorder.len());
        assert_eq!(a.lineorder.row(42), b.lineorder.row(42));
        assert!(a.lineorder.len() > 4_000);
    }

    #[test]
    fn cardinalities_scale() {
        let p = SsbParams::uniform(0.01);
        assert_eq!(p.customers(), 300);
        assert_eq!(p.suppliers(), 20);
        assert_eq!(p.orders(), 15_000);
        let p1 = SsbParams::uniform(1.0);
        assert_eq!(p1.parts(), 200_000);
        let p4 = SsbParams::uniform(4.0);
        assert_eq!(p4.parts(), 600_000);
    }

    #[test]
    fn skewed_params_set_theta() {
        assert!(SsbParams::skewed(0.1).skew_theta.is_some());
        assert!(SsbParams::uniform(0.1).skew_theta.is_none());
    }
}
