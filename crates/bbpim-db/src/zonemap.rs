//! Zone maps: per-attribute `[min, max]` summaries used for pruning.
//!
//! A [`ZoneMap`] summarises a *zone* — a horizontal slice of a relation
//! (a shard, a PIM page worth of records) — by the inclusive value range
//! every attribute takes inside it. The physical planner compares a
//! query's per-attribute bound intervals (see
//! [`crate::plan::FilterBounds`]) against these ranges: when no value in
//! a zone's range can satisfy some conjunct, the whole zone cannot
//! contribute a matching record and is skipped without being touched.
//!
//! Zone maps only ever *widen* under maintenance (an UPDATE adds the new
//! value to the range but cannot cheaply remove the old one), so they
//! stay sound over-approximations of the live contents.

use serde::{Deserialize, Serialize};

use crate::relation::Relation;

/// Per-attribute `[min, max]` (inclusive) over one zone of records.
///
/// `None` means the zone holds no observed value for that attribute —
/// i.e. the zone is empty (all attributes of a zone are observed
/// together, row by row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMap {
    ranges: Vec<Option<(u64, u64)>>,
}

impl ZoneMap {
    /// A zone map for `arity` attributes with nothing observed yet.
    pub fn empty(arity: usize) -> Self {
        ZoneMap { ranges: vec![None; arity] }
    }

    /// Build the zone map of a whole relation.
    pub fn of(rel: &Relation) -> Self {
        let mut zm = ZoneMap::empty(rel.schema().arity());
        for row in 0..rel.len() {
            for (idx, range) in zm.ranges.iter_mut().enumerate() {
                let v = rel.value(row, idx);
                *range = match *range {
                    None => Some((v, v)),
                    Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
                };
            }
        }
        zm
    }

    /// Number of attributes this map summarises.
    pub fn arity(&self) -> usize {
        self.ranges.len()
    }

    /// True when no row has been observed.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().all(Option::is_none)
    }

    /// The `[min, max]` range of one attribute (`None`: empty zone).
    ///
    /// # Panics
    ///
    /// Panics when `attr` is out of range.
    pub fn range(&self, attr: usize) -> Option<(u64, u64)> {
        self.ranges[attr]
    }

    /// Widen one attribute's range to include `value`.
    ///
    /// # Panics
    ///
    /// Panics when `attr` is out of range.
    pub fn widen(&mut self, attr: usize, value: u64) {
        let r = &mut self.ranges[attr];
        *r = match *r {
            None => Some((value, value)),
            Some((lo, hi)) => Some((lo.min(value), hi.max(value))),
        };
    }

    /// Observe one full row (values in schema order).
    ///
    /// # Panics
    ///
    /// Panics when `values` is longer than the map's arity.
    pub fn observe_row(&mut self, values: &[u64]) {
        for (idx, &v) in values.iter().enumerate() {
            self.widen(idx, v);
        }
    }

    /// Widen this map to cover everything `other` covers.
    ///
    /// # Panics
    ///
    /// Panics when arities differ — merging maps of different schemas is
    /// always a caller bug.
    pub fn merge(&mut self, other: &ZoneMap) {
        assert_eq!(self.arity(), other.arity(), "cannot merge zone maps of different arity");
        for (idx, range) in other.ranges.iter().enumerate() {
            if let Some((lo, hi)) = range {
                self.widen(idx, *lo);
                self.widen(idx, *hi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn rel(rows: &[[u64; 2]]) -> Relation {
        let schema = Schema::new("t", vec![Attribute::numeric("a", 8), Attribute::numeric("b", 8)]);
        let mut r = Relation::new(schema);
        for row in rows {
            r.push_row(row).unwrap();
        }
        r
    }

    #[test]
    fn of_relation_covers_min_max() {
        let zm = ZoneMap::of(&rel(&[[5, 200], [9, 3], [7, 100]]));
        assert_eq!(zm.range(0), Some((5, 9)));
        assert_eq!(zm.range(1), Some((3, 200)));
        assert!(!zm.is_empty());
    }

    #[test]
    fn empty_relation_gives_empty_zone() {
        let zm = ZoneMap::of(&rel(&[]));
        assert!(zm.is_empty());
        assert_eq!(zm.range(0), None);
    }

    #[test]
    fn widen_only_grows() {
        let mut zm = ZoneMap::empty(1);
        zm.widen(0, 10);
        assert_eq!(zm.range(0), Some((10, 10)));
        zm.widen(0, 4);
        zm.widen(0, 7); // inside: no change
        assert_eq!(zm.range(0), Some((4, 10)));
    }

    #[test]
    fn observe_row_widens_every_attribute() {
        let mut zm = ZoneMap::empty(2);
        zm.observe_row(&[3, 30]);
        zm.observe_row(&[1, 50]);
        assert_eq!(zm.range(0), Some((1, 3)));
        assert_eq!(zm.range(1), Some((30, 50)));
    }

    #[test]
    fn merge_is_union_of_ranges() {
        let mut a = ZoneMap::of(&rel(&[[1, 10]]));
        let b = ZoneMap::of(&rel(&[[5, 2]]));
        a.merge(&b);
        assert_eq!(a.range(0), Some((1, 5)));
        assert_eq!(a.range(1), Some((2, 10)));
        // merging an empty map changes nothing
        let before = a.clone();
        a.merge(&ZoneMap::empty(2));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn merge_rejects_arity_mismatch() {
        ZoneMap::empty(2).merge(&ZoneMap::empty(3));
    }
}
