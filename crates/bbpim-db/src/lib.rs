//! # bbpim-db — relational substrate for bulk-bitwise PIM OLAP
//!
//! This crate supplies everything the PIM engine and the column-store
//! baseline consume:
//!
//! * [`schema`] / [`relation`] / [`column`](mod@column) / [`dict`] — a minimal
//!   columnar relational model. Every attribute is a bit-width-minimal
//!   unsigned integer; strings are dictionary-encoded with order
//!   chosen so that lexicographic predicates (`BETWEEN 'MFGR#2221' AND
//!   'MFGR#2228'`) become integer range predicates.
//! * [`ssb`] — a deterministic, scale-factor-parameterised Star Schema
//!   Benchmark generator (O'Neil et al.), with the data-skew variant of
//!   Rabl et al. the paper evaluates, pre-joining (denormalisation) of
//!   the fact relation with all four dimensions, and the 13 SSB queries
//!   as logical plans.
//! * [`plan`] — the logical query form shared by both engines: a named
//!   multi-aggregate SELECT list (`SUM`/`MIN`/`MAX`/`COUNT`/derived
//!   `AVG`), an `AND`/`OR` filter tree normalised to DNF, and GROUP BY
//!   keys — plus [`plan::FilterBounds`], the per-attribute bound
//!   intervals (interval *union* across OR branches) the physical
//!   planner extracts from a resolved filter.
//! * [`builder`] — the fluent surface:
//!   `Query::select(...).filter(col("d_year").eq(1993)).build(&schema)`.
//! * [`zonemap`] — per-zone (shard / page) min-max summaries; together
//!   with [`plan::FilterBounds`] they let the execution layers prove a
//!   zone holds no matching record and skip it untouched.
//! * [`stats`] — oracles for selectivity and subgroup counts (Table II).
//!
//! ## Quick start
//!
//! ```
//! use bbpim_db::ssb::{SsbDb, SsbParams};
//!
//! let db = SsbDb::generate(&SsbParams::tiny_for_tests());
//! assert!(db.lineorder.len() > 0);
//! let wide = db.prejoin();
//! assert_eq!(wide.len(), db.lineorder.len()); // keys are unique: no fan-out
//! ```

pub mod builder;
pub mod column;
pub mod dict;
pub mod error;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod ssb;
pub mod stats;
pub mod zonemap;

pub use builder::{col, QueryBuilder};
pub use error::DbError;
pub use plan::{AggExpr, AggFunc, Pred, Query, SelectItem};
pub use relation::Relation;
pub use schema::{Attribute, Schema};
pub use zonemap::ZoneMap;
