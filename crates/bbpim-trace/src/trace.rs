//! The structured trace recorder.
//!
//! A [`TraceRecorder`] collects [`TraceEvent`]s — spans (with a
//! duration), instants, and counter samples — on named *tracks*
//! (lanes). Timestamps are simulated-clock nanoseconds supplied by the
//! caller; the recorder never reads a wall clock, so a deterministic
//! simulation produces a deterministic trace.
//!
//! A disabled recorder ([`TraceRecorder::disabled`]) drops everything
//! at the cost of one branch per call, which keeps tracing free for
//! the oracle-equivalence suites that must see identical answers and
//! identical simulated time with tracing on or off.

/// Index into the recorder's track table.
pub type TrackId = usize;

/// One attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (ids, byte counts).
    U64(u64),
    /// Floating point (durations, ratios).
    F64(f64),
    /// Free-form string (query ids, labels).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// The shape of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventShape {
    /// A window on a track: `[ts_ns, ts_ns + dur_ns]`.
    Span {
        /// Duration, simulated nanoseconds.
        dur_ns: f64,
    },
    /// A point on a track.
    Instant,
    /// A sampled counter value (queue depth, in-flight count…).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Which track (lane) the event belongs to.
    pub track: TrackId,
    /// Event name (phase-kind label, `"admit"`, counter name…).
    pub name: String,
    /// Start / sample time, simulated nanoseconds.
    pub ts_ns: f64,
    /// Span / instant / counter.
    pub shape: EventShape,
    /// Attributes (query id, shard, wait, bytes…), in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Collects events on named tracks; free when disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    enabled: bool,
    tracks: Vec<String>,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An enabled recorder with no tracks yet.
    pub fn enabled() -> Self {
        TraceRecorder { enabled: true, tracks: Vec::new(), events: Vec::new() }
    }

    /// A recorder that drops everything (the default for untraced
    /// runs: every recording call is one branch).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// Is this recorder collecting?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or find) a track by name and return its id. Track ids
    /// are dense and assigned in first-registration order, which keeps
    /// exports deterministic. On a disabled recorder this returns 0
    /// without registering anything.
    pub fn track(&mut self, name: &str) -> TrackId {
        if !self.enabled {
            return 0;
        }
        if let Some(id) = self.tracks.iter().position(|t| t == name) {
            return id;
        }
        self.tracks.push(name.to_string());
        self.tracks.len() - 1
    }

    /// Record a span of `dur_ns` starting at `ts_ns`.
    pub fn span(
        &mut self,
        track: TrackId,
        name: &str,
        ts_ns: f64,
        dur_ns: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            track,
            name: name.to_string(),
            ts_ns,
            shape: EventShape::Span { dur_ns },
            args,
        });
    }

    /// Record an instantaneous event.
    pub fn instant(
        &mut self,
        track: TrackId,
        name: &str,
        ts_ns: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            track,
            name: name.to_string(),
            ts_ns,
            shape: EventShape::Instant,
            args,
        });
    }

    /// Record a counter sample.
    pub fn counter(&mut self, track: TrackId, name: &str, ts_ns: f64, value: f64) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            track,
            name: name.to_string(),
            ts_ns,
            shape: EventShape::Counter { value },
            args: Vec::new(),
        });
    }

    /// Registered track names, in id order.
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// Recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events recorded yet (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut t = TraceRecorder::disabled();
        assert!(!t.is_enabled());
        let tr = t.track("host-bus");
        assert_eq!(tr, 0);
        t.span(tr, "dispatch", 0.0, 10.0, vec![("q", ArgValue::U64(1))]);
        t.instant(tr, "admit", 1.0, vec![]);
        t.counter(tr, "queue", 2.0, 3.0);
        assert!(t.is_empty());
        assert!(t.tracks().is_empty());
    }

    #[test]
    fn tracks_dedup_by_name_in_registration_order() {
        let mut t = TraceRecorder::enabled();
        let a = t.track("scheduler");
        let b = t.track("host-bus");
        let a2 = t.track("scheduler");
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(t.tracks(), ["scheduler", "host-bus"]);
    }

    #[test]
    fn events_record_in_order_with_args() {
        let mut t = TraceRecorder::enabled();
        let tr = t.track("module-0");
        t.span(tr, "pim-logic", 5.0, 100.0, vec![("query", ArgValue::Str("Q1.1".into()))]);
        t.instant(tr, "complete", 105.0, vec![("arrival", ArgValue::U64(3))]);
        t.counter(tr, "in-flight", 105.0, 2.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].shape, EventShape::Span { dur_ns: 100.0 });
        assert_eq!(t.events()[1].shape, EventShape::Instant);
        assert_eq!(t.events()[2].shape, EventShape::Counter { value: 2.0 });
        assert_eq!(t.events()[0].args[0].0, "query");
    }
}
