//! The metrics registry: counters, gauges and histograms keyed by
//! name + sorted labels, with Prometheus-text and flat-JSON snapshot
//! exporters.
//!
//! Everything is deterministic: metrics live in `BTreeMap`s, labels
//! are sorted at insertion, and floats render through the same
//! deterministic formatter the trace exporters use — so a snapshot of
//! a deterministic simulation is byte-identical across runs.
//!
//! The JSON snapshot is deliberately flat
//! (`{"metrics": {"name{label=value}": number, …}}`) so the bench
//! gate's purpose-built flat scanner can read headline numbers
//! straight out of it without a JSON parser.

use std::collections::BTreeMap;

use crate::export::fmt_num;

/// A metric identity: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`bbpim_host_bytes_total`…).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// Flat rendering: `name` or `name{k=v,k2=v2}` (no quotes — the
    /// snapshot keys stay greppable and flat-scanner friendly).
    pub fn flat(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    /// Prometheus rendering: `name` or `name{k="v",k2="v2"}`.
    pub fn prometheus(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// Fixed-bucket histogram (cumulative-bucket export, Prometheus
/// style). `counts[i]` counts observations `<= bounds[i]`; the last
/// slot is the +Inf overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram { bounds, counts: vec![0; n + 1], sum: 0.0, count: 0 }
    }

    fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|b| v <= *b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Bucket upper bounds (the +Inf bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) observation counts, +Inf last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Default histogram bounds: three-per-decade from 1 µs to 10 s (in
/// nanoseconds) — wide enough for per-query latencies at every scale
/// factor the bench bins sweep.
pub fn default_bounds() -> Vec<f64> {
    let mut out = Vec::with_capacity(22);
    let mut decade = 1e3;
    while decade < 1e10 {
        out.push(decade);
        out.push(2.5 * decade);
        out.push(5.0 * decade);
        decade *= 10.0;
    }
    out.push(1e10);
    out
}

/// Counters, gauges and histograms in one deterministic registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `v` to a (monotonic) counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        *self.counters.entry(MetricKey::new(name, labels)).or_insert(0.0) += v;
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Raise a gauge to `v` if `v` exceeds its current value (used for
    /// maxima like per-module required endurance).
    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let slot = self.gauges.entry(MetricKey::new(name, labels)).or_insert(f64::NEG_INFINITY);
        if v > *slot {
            *slot = v;
        }
    }

    /// Observe `v` into a histogram with the [`default_bounds`].
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram::new(default_bounds()))
            .observe(v);
    }

    /// Read a counter (`None` if never touched).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.counters.get(&MetricKey::new(name, labels)).copied()
    }

    /// Read a gauge (`None` if never set).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Read a histogram (`None` if never observed).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus text exposition: `# TYPE` headers, one sample per
    /// line, histograms expanded into cumulative `_bucket` / `_sum` /
    /// `_count` series.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (k, v) in &self.counters {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", k.name));
                last_name.clone_from(&k.name);
            }
            out.push_str(&format!("{} {}\n", k.prometheus(), fmt_num(*v)));
        }
        last_name.clear();
        for (k, v) in &self.gauges {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", k.name));
                last_name.clone_from(&k.name);
            }
            out.push_str(&format!("{} {}\n", k.prometheus(), fmt_num(*v)));
        }
        last_name.clear();
        for (k, h) in &self.histograms {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} histogram\n", k.name));
                last_name.clone_from(&k.name);
            }
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = if i < h.bounds.len() { fmt_num(h.bounds[i]) } else { "+Inf".into() };
                let mut labels = k.labels.clone();
                labels.push(("le".into(), le));
                let bucket_key = MetricKey { name: format!("{}_bucket", k.name), labels };
                out.push_str(&format!("{} {}\n", bucket_key.prometheus(), cumulative));
            }
            let sum_key = MetricKey { name: format!("{}_sum", k.name), labels: k.labels.clone() };
            let cnt_key = MetricKey { name: format!("{}_count", k.name), labels: k.labels.clone() };
            out.push_str(&format!("{} {}\n", sum_key.prometheus(), fmt_num(h.sum)));
            out.push_str(&format!("{} {}\n", cnt_key.prometheus(), h.count));
        }
        out
    }

    /// Flat JSON snapshot: `{"metrics": {"flat-key": number, …}}`,
    /// sorted by key. Histograms contribute their `_sum` and `_count`
    /// (per-bucket detail stays in the Prometheus export). The shape
    /// matches the bench bins' snapshot files, so the bench gate's
    /// flat scanner reads it unmodified.
    pub fn snapshot_json(&self) -> String {
        let mut flat: BTreeMap<String, String> = BTreeMap::new();
        for (k, v) in &self.counters {
            flat.insert(k.flat(), fmt_num(*v));
        }
        for (k, v) in &self.gauges {
            flat.insert(k.flat(), fmt_num(*v));
        }
        for (k, h) in &self.histograms {
            let sum_key = MetricKey { name: format!("{}_sum", k.name), labels: k.labels.clone() };
            let cnt_key = MetricKey { name: format!("{}_count", k.name), labels: k.labels.clone() };
            flat.insert(sum_key.flat(), fmt_num(h.sum));
            flat.insert(cnt_key.flat(), h.count.to_string());
        }
        let mut out = String::from("{\n  \"metrics\": {\n");
        let n = flat.len();
        for (i, (k, v)) in flat.iter().enumerate() {
            let mut key = String::new();
            crate::export::escape_json(k, &mut key);
            out.push_str(&format!("    \"{}\": {}{}\n", key, v, if i + 1 < n { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_labels_sort() {
        let mut r = MetricsRegistry::new();
        r.counter_add("bytes", &[("kind", "read"), ("run", "a")], 10.0);
        r.counter_add("bytes", &[("run", "a"), ("kind", "read")], 5.0);
        assert_eq!(r.counter("bytes", &[("kind", "read"), ("run", "a")]), Some(15.0));
        assert_eq!(r.counter("bytes", &[("kind", "write"), ("run", "a")]), None);
    }

    #[test]
    fn gauge_max_keeps_the_maximum() {
        let mut r = MetricsRegistry::new();
        r.gauge_max("wear", &[], 3.0);
        r.gauge_max("wear", &[], 1.0);
        r.gauge_max("wear", &[], 7.0);
        assert_eq!(r.gauge("wear", &[]), Some(7.0));
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[], 2e3); // <= 2.5e3
        r.observe("lat", &[], 1e12); // overflow
        let h = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - (2e3 + 1e12)).abs() < 1.0);
        assert_eq!(*h.bucket_counts().last().unwrap(), 1);
    }

    #[test]
    fn prometheus_text_renders_all_types() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c_total", &[("k", "v")], 2.0);
        r.gauge_set("g", &[], 0.5);
        r.observe("h_ns", &[], 3e3);
        let p = r.prometheus_text();
        assert!(p.contains("# TYPE c_total counter\nc_total{k=\"v\"} 2\n"));
        assert!(p.contains("# TYPE g gauge\ng 0.5\n"));
        assert!(p.contains("# TYPE h_ns histogram\n"));
        assert!(p.contains("h_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(p.contains("h_ns_count 1\n"));
    }

    #[test]
    fn snapshot_is_flat_sorted_and_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.gauge_set("z", &[], 1.0);
            r.counter_add("a", &[("run", "x")], 2.0);
            r.observe("m", &[], 4e3);
            r
        };
        let s = build().snapshot_json();
        assert!(s.starts_with("{\n  \"metrics\": {\n"));
        let a = s.find("\"a{run=x}\": 2").unwrap();
        let m = s.find("\"m_count\": 1").unwrap();
        let z = s.find("\"z\": 1").unwrap();
        assert!(a < m && m < z, "keys are sorted");
        assert_eq!(s, build().snapshot_json());
    }
}
