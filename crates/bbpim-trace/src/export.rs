//! Trace exporters: Chrome/Perfetto `trace_event` JSON and flat JSONL.
//!
//! Both exports are hand-rolled (the vendored `serde` is an offline
//! no-op stub) and byte-deterministic: event order is recording order,
//! track ids are registration order, and floats print through Rust's
//! shortest-roundtrip `Display`, which is itself deterministic.

use crate::trace::{ArgValue, EventShape, TraceRecorder};

/// JSON-escape a string into `out` (quotes, backslashes, control
/// characters; everything else passes through verbatim as UTF-8).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Deterministic JSON number rendering: integral values print without
/// a fractional part, everything else through `f64`'s
/// shortest-roundtrip `Display`. Non-finite values (which a
/// well-formed simulation never produces) degrade to 0.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_args_object(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(f) => out.push_str(&fmt_num(*f)),
            ArgValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Render the trace as Chrome/Perfetto `trace_event` JSON
/// (`chrome://tracing` / <https://ui.perfetto.dev> both load it).
///
/// One metadata event names each track (pid 1, tid = track id), then
/// every recorded event follows in recording order: spans as `ph:"X"`
/// complete events, instants as `ph:"i"`, counters as `ph:"C"`.
/// Timestamps and durations are microseconds (the format's unit),
/// converted from the recorder's simulated nanoseconds.
pub fn perfetto_json(trace: &TraceRecorder) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in trace.tracks().iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for ev in trace.events() {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = ev.ts_ns / 1e3;
        match ev.shape {
            EventShape::Span { dur_ns } => {
                out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
                out.push_str(&ev.track.to_string());
                out.push_str(",\"name\":\"");
                escape_json(&ev.name, &mut out);
                out.push_str("\",\"cat\":\"bbpim\",\"ts\":");
                out.push_str(&fmt_num(ts_us));
                out.push_str(",\"dur\":");
                out.push_str(&fmt_num(dur_ns / 1e3));
                out.push_str(",\"args\":");
                push_args_object(&ev.args, &mut out);
                out.push('}');
            }
            EventShape::Instant => {
                out.push_str("{\"ph\":\"i\",\"pid\":1,\"tid\":");
                out.push_str(&ev.track.to_string());
                out.push_str(",\"name\":\"");
                escape_json(&ev.name, &mut out);
                out.push_str("\",\"cat\":\"bbpim\",\"s\":\"t\",\"ts\":");
                out.push_str(&fmt_num(ts_us));
                out.push_str(",\"args\":");
                push_args_object(&ev.args, &mut out);
                out.push('}');
            }
            EventShape::Counter { value } => {
                out.push_str("{\"ph\":\"C\",\"pid\":1,\"tid\":");
                out.push_str(&ev.track.to_string());
                out.push_str(",\"name\":\"");
                escape_json(&ev.name, &mut out);
                out.push_str("\",\"ts\":");
                out.push_str(&fmt_num(ts_us));
                out.push_str(",\"args\":{\"value\":");
                out.push_str(&fmt_num(value));
                out.push_str("}}");
            }
        }
    }
    out.push_str("]}\n");
    out
}

/// Render the trace as flat JSONL: one self-describing JSON object per
/// line, timestamps in simulated nanoseconds — the machine-queryable
/// twin of the Perfetto view.
pub fn jsonl(trace: &TraceRecorder) -> String {
    let mut out = String::with_capacity(trace.len() * 112);
    for ev in trace.events() {
        out.push_str("{\"t_ns\":");
        out.push_str(&fmt_num(ev.ts_ns));
        out.push_str(",\"track\":\"");
        escape_json(&trace.tracks()[ev.track], &mut out);
        out.push_str("\",\"kind\":\"");
        match ev.shape {
            EventShape::Span { .. } => out.push_str("span"),
            EventShape::Instant => out.push_str("instant"),
            EventShape::Counter { .. } => out.push_str("counter"),
        }
        out.push_str("\",\"name\":\"");
        escape_json(&ev.name, &mut out);
        out.push('"');
        match ev.shape {
            EventShape::Span { dur_ns } => {
                out.push_str(",\"dur_ns\":");
                out.push_str(&fmt_num(dur_ns));
            }
            EventShape::Counter { value } => {
                out.push_str(",\"value\":");
                out.push_str(&fmt_num(value));
            }
            EventShape::Instant => {}
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":");
            push_args_object(&ev.args, &mut out);
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::enabled();
        let host = t.track("host-bus");
        let m0 = t.track("module-0");
        t.span(
            host,
            "host-dispatch",
            0.0,
            600.0,
            vec![("query", "Q1.1".into()), ("shard", 0usize.into())],
        );
        t.span(m0, "pim-logic", 600.0, 3000.0, vec![("wait_ns", 0.0.into())]);
        t.instant(host, "complete", 3600.5, vec![("arrival", 7usize.into())]);
        t.counter(host, "in-flight", 3600.5, 1.0);
        t
    }

    #[test]
    fn perfetto_has_thread_names_and_all_shapes() {
        let j = perfetto_json(&sample());
        assert!(j.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(j.contains("\"thread_name\",\"args\":{\"name\":\"host-bus\"}"));
        assert!(j.contains("\"thread_name\",\"args\":{\"name\":\"module-0\"}"));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"ph\":\"C\""));
        // 600 ns span → 0.6 µs duration
        assert!(j.contains("\"dur\":0.6"));
        assert!(j.ends_with("]}\n"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let l = jsonl(&sample());
        let lines: Vec<&str> = l.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"track\":\"host-bus\""));
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[0].contains("\"dur_ns\":600"));
        assert!(lines[2].contains("\"kind\":\"instant\""));
        assert!(lines[3].contains("\"value\":1"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(perfetto_json(&a), perfetto_json(&b));
        assert_eq!(jsonl(&a), jsonl(&b));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn fmt_num_integral_values_drop_fraction() {
        assert_eq!(fmt_num(600.0), "600");
        assert_eq!(fmt_num(0.6), "0.6");
        assert_eq!(fmt_num(-3.0), "-3");
        assert_eq!(fmt_num(f64::NAN), "0");
    }
}
