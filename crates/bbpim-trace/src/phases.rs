//! Fold simulator phase logs into the metrics registry.
//!
//! One call per [`RunLog`] turns the per-phase accounting the
//! simulator already keeps into the three per-kind series the paper's
//! breakdown figures need: time (Fig. 6), energy (Fig. 7) and
//! host-channel bytes (the journal extension's byte diet).

use bbpim_sim::timeline::{PhaseKind, RunLog};

use crate::metrics::MetricsRegistry;

/// Per-phase-kind time counter, nanoseconds.
pub const PHASE_TIME_NS: &str = "bbpim_phase_time_ns_total";
/// Per-phase-kind PIM energy counter, picojoules.
pub const PHASE_ENERGY_PJ: &str = "bbpim_phase_energy_pj_total";
/// Per-phase-kind host-channel byte counter.
pub const HOST_BYTES: &str = "bbpim_host_bytes_total";
/// Accumulated worst-row cell writes, counter (the endurance model's
/// input — shared across layers so per-query and per-module wear land
/// in the same series family).
pub const CELL_WRITES: &str = "bbpim_cell_writes_total";
/// Required cell endurance (write cycles over the paper's ten-year
/// horizon), gauge.
pub const REQUIRED_ENDURANCE: &str = "bbpim_required_endurance_cycles";

/// Accumulate a phase log's per-kind time / energy / host bytes into
/// `reg`, labelled `kind=<phase label>` plus the caller's `labels`.
/// Kinds the log never entered contribute nothing (no zero-valued
/// series clutter).
pub fn record_run_log(reg: &mut MetricsRegistry, log: &RunLog, labels: &[(&str, &str)]) {
    for kind in PhaseKind::ALL {
        let time = log.time_in(kind);
        let energy = log.energy_in(kind);
        let bytes = log.host_bytes_in(kind);
        if time == 0.0 && energy == 0.0 && bytes == 0 {
            continue;
        }
        let mut with_kind: Vec<(&str, &str)> = labels.to_vec();
        with_kind.push(("kind", kind.label()));
        if time != 0.0 {
            reg.counter_add(PHASE_TIME_NS, &with_kind, time);
        }
        if energy != 0.0 {
            reg.counter_add(PHASE_ENERGY_PJ, &with_kind, energy);
        }
        if bytes != 0 {
            reg.counter_add(HOST_BYTES, &with_kind, bytes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_sim::timeline::Phase;

    #[test]
    fn run_log_folds_into_per_kind_counters() {
        let mut log = RunLog::new();
        log.push(Phase {
            kind: PhaseKind::PimLogic,
            time_ns: 100.0,
            energy_pj: 7.0,
            chip_power_w: 0.0,
            host_bytes: 0,
        });
        log.push(Phase {
            kind: PhaseKind::HostRead,
            time_ns: 50.0,
            energy_pj: 0.0,
            chip_power_w: 0.0,
            host_bytes: 4096,
        });
        log.push(Phase::host_dispatch(10.0));
        let mut reg = MetricsRegistry::new();
        record_run_log(&mut reg, &log, &[("run", "t")]);
        let labels = |k: &'static str| [("run", "t"), ("kind", k)];
        assert_eq!(reg.counter(PHASE_TIME_NS, &labels("pim-logic")), Some(100.0));
        assert_eq!(reg.counter(PHASE_ENERGY_PJ, &labels("pim-logic")), Some(7.0));
        assert_eq!(reg.counter(HOST_BYTES, &labels("host-read")), Some(4096.0));
        assert_eq!(reg.counter(PHASE_TIME_NS, &labels("host-dispatch")), Some(10.0));
        // untouched kinds create no series
        assert_eq!(reg.counter(PHASE_TIME_NS, &labels("pim-reduce")), None);
        // a second log accumulates into the same counters
        record_run_log(&mut reg, &log, &[("run", "t")]);
        assert_eq!(reg.counter(PHASE_TIME_NS, &labels("pim-logic")), Some(200.0));
    }
}
