//! Observability substrate for the bulk-bitwise PIM stack.
//!
//! The paper's evaluation attributes end-to-end time and energy to
//! phases (Figs. 6–9), and the journal extension shows host
//! orchestration and channel occupancy dominating selective queries —
//! quantities the simulator models but, before this crate, reported
//! through four disconnected surfaces (per-shard phase logs, scheduler
//! timelines, planner byte ledgers, ad-hoc bench printouts). This crate
//! is the single substrate the rest of the workspace threads those
//! observations through:
//!
//! * [`TraceRecorder`] — a zero-cost-when-disabled structured span /
//!   instant / counter recorder on the *simulated* clock. Tracks are
//!   named lanes (one per PIM module, one for the host bus, one for
//!   the scheduler) so bus serialisation vs module overlap is visible.
//! * [`export`] — Chrome/Perfetto `trace_event` JSON and a flat JSONL
//!   event stream, both byte-deterministic for a deterministic input.
//! * [`MetricsRegistry`] — counters / gauges / histograms keyed by
//!   name + sorted labels, with Prometheus-text and flat JSON snapshot
//!   exporters (the JSON shape is readable by the bench gate's flat
//!   scanner).
//! * [`phases`] — glue that folds a [`bbpim_sim::timeline::RunLog`]
//!   into per-phase-kind time / energy / host-byte metrics.
//!
//! Everything here is pure data: no I/O, no wall clock, no threads —
//! recording the same simulation twice yields byte-identical exports.

pub mod export;
pub mod metrics;
pub mod phases;
pub mod trace;

pub use metrics::MetricsRegistry;
pub use trace::{ArgValue, EventShape, TraceEvent, TraceRecorder, TrackId};
