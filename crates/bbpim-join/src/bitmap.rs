//! The dimension key bitmap and its wire format.
//!
//! A dimension filter leaves one bit per dimension row in the module's
//! mask column. Dimension keys are dense (`row = key − key_base`), so
//! that mask *is* the key bitmap of the semijoin. It crosses the host
//! channel exactly once per (disjunct, dimension) — the module streams
//! the mask column through its row buffer bit-packed, and the host
//! re-broadcasts it to every fact shard in one grant — so the wire
//! format matters: selective filters (the Q1.x class) set long runs of
//! zeros with a few short runs of ones, which a gap/length run-length
//! code collapses to a handful of bytes. The transfer is charged at
//! whichever of the two encodings is smaller:
//!
//! * **bit-packed** — `⌈len/8⌉` bytes, the dense fallback scattered
//!   bitmaps degrade to;
//! * **run-length** — per run of set bits, the zero-gap before it and
//!   its length, both LEB128 varints.
//!
//! plus a fixed 8-byte header (key base, length, encoding tag).
//!
//! The codec itself is [`bbpim_sim::maskwire`] — shared with the
//! pre-joined engine's two-crossbar mask transfers so the two wire
//! accountings cannot drift; `KeyBitmap` adds the dense-key view
//! (base offset, runs as key ranges, the FK hull).

use bbpim_sim::maskwire;

/// A bitmap over a dimension's dense key space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBitmap {
    base: u64,
    bits: Vec<bool>,
}

/// Fixed per-transfer header bytes (key base + length + encoding tag).
pub const WIRE_HEADER_BYTES: u64 = maskwire::WIRE_HEADER_BYTES;

impl KeyBitmap {
    /// Wrap a mask over keys `base..base + bits.len()`.
    pub fn new(base: u64, bits: Vec<bool>) -> Self {
        KeyBitmap { base, bits }
    }

    /// Key value of bit 0.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The raw bits (indexed by `key − base`).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Size of the key space (bitmap length).
    pub fn key_space(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Selected key count.
    pub fn keys_selected(&self) -> u64 {
        self.bits.iter().filter(|b| **b).count() as u64
    }

    /// Maximal runs of consecutive selected keys, as inclusive
    /// `[lo, hi]` key-value ranges, ascending.
    pub fn runs(&self) -> Vec<(u64, u64)> {
        maskwire::bit_runs(&self.bits)
            .into_iter()
            .map(|(lo, hi)| (self.base + lo, self.base + hi))
            .collect()
    }

    /// Convex hull `[lo, hi]` of the selected keys (`None` when empty)
    /// — the BETWEEN bound shard pruning tests against the FK zone.
    pub fn hull(&self) -> Option<(u64, u64)> {
        let first = self.bits.iter().position(|b| *b)?;
        let last = self.bits.iter().rposition(|b| *b)?;
        Some((self.base + first as u64, self.base + last as u64))
    }

    /// Bit-packed payload size, bytes.
    pub fn raw_bytes(&self) -> u64 {
        maskwire::raw_bytes(self.bits.len() as u64)
    }

    /// Run-length payload: per run, (gap since previous run's end,
    /// run length) as varints.
    pub fn encode_rle(&self) -> Vec<u8> {
        maskwire::encode_rle(&self.bits)
    }

    /// Rebuild a bitmap from its run-length payload; `None` on corrupt
    /// input (truncated varint, runs past `key_space`).
    pub fn decode_rle(base: u64, key_space: u64, payload: &[u8]) -> Option<KeyBitmap> {
        Some(KeyBitmap { base, bits: maskwire::decode_rle(key_space, payload)? })
    }

    /// Bytes actually sent: the header plus the smaller encoding.
    pub fn wire_bytes(&self) -> u64 {
        maskwire::wire_bytes(&self.bits)
    }

    /// Host-channel lines the transfer occupies at `line_bytes` per
    /// line.
    pub fn wire_lines(&self, line_bytes: u64) -> u64 {
        maskwire::wire_lines(&self.bits, line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap(base: u64, set: &[usize], len: usize) -> KeyBitmap {
        let mut bits = vec![false; len];
        for &i in set {
            bits[i] = true;
        }
        KeyBitmap::new(base, bits)
    }

    #[test]
    fn runs_hull_and_counts() {
        let b = bitmap(10, &[0, 1, 3, 6, 7], 9);
        assert_eq!(b.runs(), vec![(10, 11), (13, 13), (16, 17)]);
        assert_eq!(b.hull(), Some((10, 17)));
        assert_eq!(b.keys_selected(), 5);
        assert_eq!(b.key_space(), 9);
        let empty = bitmap(0, &[], 4);
        assert!(empty.runs().is_empty());
        assert_eq!(empty.hull(), None);
    }

    #[test]
    fn rle_roundtrips() {
        for set in [
            vec![],
            vec![0],
            vec![2555],
            (0..2556).collect::<Vec<_>>(),
            vec![0, 1, 2, 100, 101, 900],
            (0..2556).filter(|i| i % 3 == 0).collect(),
        ] {
            let b = bitmap(0, &set, 2556);
            let payload = b.encode_rle();
            let back = KeyBitmap::decode_rle(0, 2556, &payload).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn selective_filters_compress_far_below_bitpacked() {
        // one year of the date dimension: a single 365-day run
        let b = bitmap(0, &(365..730).collect::<Vec<_>>(), 2556);
        assert_eq!(b.raw_bytes(), 320);
        assert!(b.encode_rle().len() <= 4, "{} B", b.encode_rle().len());
        assert!(b.wire_bytes() <= WIRE_HEADER_BYTES + 4);
        assert_eq!(b.wire_lines(64), 1);
    }

    #[test]
    fn scattered_bitmaps_fall_back_to_bitpacked() {
        let b = bitmap(1, &(0..3000).step_by(2).collect::<Vec<_>>(), 3000);
        // 1500 runs of length 1 cost ~2 B each in RLE — packed wins
        assert!(b.encode_rle().len() as u64 > b.raw_bytes());
        assert_eq!(b.wire_bytes(), WIRE_HEADER_BYTES + b.raw_bytes());
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(KeyBitmap::decode_rle(0, 10, &[0x80]).is_none()); // truncated
        assert!(KeyBitmap::decode_rle(0, 10, &[0, 11]).is_none()); // past end
        assert!(KeyBitmap::decode_rle(0, 10, &[0, 0]).is_none()); // zero run
    }

    /// Deterministic xorshift so the adversarial sweep needs no RNG dep.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn adversarial_masks_roundtrip_and_never_beat_raw_lines() {
        // Every adversarial shape must (a) round-trip bit-identically
        // through the wire codec and (b) cost no more channel lines
        // than the uncompressed line-per-row transfer it replaces.
        let len = 4096usize;
        let mut shapes: Vec<Vec<usize>> = vec![
            vec![],                                    // empty
            (0..len).collect(),                        // full
            (0..len).step_by(2).collect(),             // alternating
            (1..len).step_by(2).collect(),             // anti-phase alternating
            vec![0],                                   // lone head
            vec![len - 1],                             // lone tail
            (7..len - 9).collect(),                    // one long run
            (0..len).step_by(8).collect(),             // every byte boundary
            (0..len).filter(|i| i % 37 < 3).collect(), // short periodic runs
        ];
        let mut state = 0x2545F4914F6CDD1Du64;
        for density_shift in [1u64, 3, 6] {
            shapes.push(
                (0..len)
                    .filter(|_| xorshift(&mut state).is_multiple_of(1 << density_shift))
                    .collect(),
            );
        }
        for (base, line_bytes) in [(0u64, 64u64), (1000, 64), (0, 32)] {
            for set in &shapes {
                let b = bitmap(base, set, len);
                let back = KeyBitmap::decode_rle(base, len as u64, &b.encode_rle()).unwrap();
                assert_eq!(back, b, "round-trip, base {base}, {} set", set.len());
                assert!(
                    b.wire_bytes() <= WIRE_HEADER_BYTES + b.raw_bytes(),
                    "wire must never exceed header + bit-packed"
                );
                // raw transfer: one line per key-space row
                assert!(
                    b.wire_lines(line_bytes) <= len as u64,
                    "wire lines above the raw line-per-row transfer"
                );
            }
        }
    }

    #[test]
    fn wire_format_matches_shared_codec_exactly() {
        // KeyBitmap is a view over bbpim_sim::maskwire — same bytes.
        use bbpim_sim::maskwire;
        let b = bitmap(42, &[0, 1, 5, 6, 7, 300], 512);
        assert_eq!(b.encode_rle(), maskwire::encode_rle(b.bits()));
        assert_eq!(b.wire_bytes(), maskwire::wire_bytes(b.bits()));
        assert_eq!(b.raw_bytes(), maskwire::raw_bytes(512));
    }
}
