//! # bbpim-join — normalized star-schema storage with PIM-side semijoins
//!
//! Every prior crate in this workspace executes SSB queries against the
//! *pre-joined* wide relation — the storage model the source paper
//! evaluates, which trades PIM capacity (every dimension attribute
//! replicated into every fact record) for join-free scans. This crate
//! drops the pre-join: `lineorder` and the four dimension tables stay
//! *normalized*, each resident on its own PIM module, and joins execute
//! as **PIM-side semijoin bitmaps**:
//!
//! 1. the dimension slice of a filter runs on the dimension module as
//!    one bulk-bitwise conjunction, leaving a key bitmap in its mask
//!    column (dimension keys are dense, so mask == key bitmap);
//! 2. the bitmap crosses the host channel *compressed*
//!    ([`bitmap::KeyBitmap`]: 8-byte header + the smaller of bit-packed
//!    and run-length encodings) — one read off the dimension module and
//!    one broadcast write shared by every fact shard in a single grant;
//! 3. each fact shard ANDs the bitmap into its mask *through the FK
//!    column*: the bitmap's consecutive-key runs compile to range
//!    predicates in one microprogram
//!    ([`bbpim_core::semijoin::build_semijoin_mask_program_in`]), so no
//!    per-fact-row mask bits ever ride the bus.
//!
//! Answers are bit-identical to the pre-joined oracle for all SSB
//! queries (attribute names are globally unique, so query texts run
//! unmodified on both models); what changes is PIM-resident capacity
//! (normalized tables are a fraction of the wide relation) and the
//! bytes on the shared host channel (a compressed dimension bitmap
//! replaces wide-record scans). Dimension UPDATEs touch one small
//! module instead of rewriting a replicated column across every fact
//! shard.
//!
//! * [`table::StarTable`] — one normalized table on its own module.
//! * [`bitmap::KeyBitmap`] — the compressed wire format.
//! * [`cluster::StarCluster`] — sharded fact + shared dimensions;
//!   `run`/`run_on_shard`/`merge_executions`/`update`/`explain` mirror
//!   [`bbpim_cluster::ClusterEngine`], so schedulers and benches treat
//!   both storage models uniformly.
//!
//! ```
//! use bbpim_cluster::Partitioner;
//! use bbpim_core::modes::EngineMode;
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_join::StarCluster;
//! use bbpim_sim::SimConfig;
//!
//! let db = SsbDb::generate(&SsbParams::tiny_for_tests());
//! let mut star = StarCluster::new(
//!     SimConfig::small_for_tests(), &db, EngineMode::OneXb, 2, Partitioner::RoundRobin)?;
//! let q = queries::standard_query("Q1.1").unwrap();
//! let out = star.run(&q)?;
//! println!("{}: {} records joined+selected", q.id, out.report.selected);
//! # Ok::<(), bbpim_cluster::ClusterError>(())
//! ```

pub mod bitmap;
pub mod cluster;
pub mod table;

pub use bitmap::KeyBitmap;
pub use cluster::StarCluster;
pub use table::StarTable;
