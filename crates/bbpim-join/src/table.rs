//! One PIM-resident table of the normalized star schema.
//!
//! A [`StarTable`] owns its relation, its single-partition
//! [`RecordLayout`] (normalized records never split across crossbars —
//! the two-xb fact/dimension split *is* the normalization now), its own
//! [`PimModule`], and the loaded image. It exposes exactly the
//! primitives the star cluster composes: plan pages against the zone
//! maps, run a mask program, read the mask back, fetch stored record
//! bits, and apply UPDATEs through the PIM multiplexer.

use bbpim_cluster::ClusterError;
use bbpim_core::filter_exec::{self, mask_read_lines};
use bbpim_core::layout::{RecordLayout, MASK_COL, VALID_COL};
use bbpim_core::loader::{load_relation, LoadedRelation};
use bbpim_core::mutation::{run_mutation, Mutation, MutationReport};
use bbpim_core::planner::{plan_pages, PageSet};
#[allow(deprecated)]
use bbpim_core::update::{UpdateOp, UpdateReport};
use bbpim_db::plan::{FilterBounds, ResolvedAtom};
use bbpim_db::zonemap::ZoneMap;
use bbpim_db::Relation;
use bbpim_sim::compiler::ColRange;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;
use bbpim_sim::SimConfig;

/// A normalized table resident on its own PIM module.
pub struct StarTable {
    relation: Relation,
    layout: RecordLayout,
    loaded: LoadedRelation,
    module: PimModule,
}

impl StarTable {
    /// Load `relation` into a fresh module, leaving `cold` attributes
    /// (plus the engine's always-excluded `*_phone` columns)
    /// host-resident.
    ///
    /// # Errors
    ///
    /// Layout or load failures (records wider than a crossbar…).
    pub fn new(cfg: SimConfig, relation: Relation, cold: &[String]) -> Result<Self, ClusterError> {
        let layout = RecordLayout::build_custom(relation.schema(), &cfg, 1, |_| 0, cold)?;
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &relation, &layout)?;
        Ok(StarTable { relation, layout, loaded, module })
    }

    /// The catalog copy of the relation (patched by UPDATEs).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The record layout.
    pub fn layout(&self) -> &RecordLayout {
        &self.layout
    }

    /// The loaded image.
    pub fn loaded(&self) -> &LoadedRelation {
        &self.loaded
    }

    /// The module (inspection, line accounting).
    pub fn module(&self) -> &PimModule {
        &self.module
    }

    /// Set the host-transfer policy (compressed masks, batched
    /// dispatch, module-side reduction) on this table's module.
    pub fn set_xfer_policy(&mut self, policy: bbpim_sim::XferPolicy) {
        self.module.set_policy(policy);
    }

    /// Table-level zone map (widened by UPDATEs).
    pub fn zone_map(&self) -> ZoneMap {
        self.loaded.zone_map()
    }

    /// Pages holding the table.
    pub fn page_count(&self) -> usize {
        self.loaded.page_count()
    }

    /// Resolve an attribute to its column range, erroring on cold
    /// (host-resident) attributes.
    ///
    /// # Errors
    ///
    /// `Unsupported` for excluded attributes, `Layout` for unknown
    /// names.
    pub fn col_range(&self, attr: &str) -> Result<ColRange, ClusterError> {
        Ok(self.layout.placement(attr)?.range)
    }

    /// Candidate pages of a resolved conjunction (zone-map pruned), or
    /// every page when `prune` is off.
    pub fn plan_conjunction(&self, atoms: &[ResolvedAtom], prune: bool) -> PageSet {
        if prune {
            plan_pages(&FilterBounds::from_dnf(&[atoms.to_vec()]), &self.loaded)
        } else {
            PageSet::all(self.loaded.page_count())
        }
    }

    /// Candidate pages of a resolved DNF (zone-map pruned), or every
    /// page when `prune` is off.
    pub fn plan_dnf(&self, dnf: &[Vec<ResolvedAtom>], prune: bool) -> PageSet {
        if prune {
            plan_pages(&FilterBounds::from_dnf(dnf), &self.loaded)
        } else {
            PageSet::all(self.loaded.page_count())
        }
    }

    /// Run one conjunctive filter on-module (used for dimension
    /// filters): per-page dispatch, then the bulk-bitwise mask program
    /// into `MASK_COL`; returns the per-record mask, charging `log`.
    ///
    /// # Errors
    ///
    /// Compiler or substrate failures.
    pub fn filter_conjunction(
        &mut self,
        atoms: &[(ResolvedAtom, ColRange)],
        pages: &PageSet,
        log: &mut RunLog,
    ) -> Result<Vec<bool>, ClusterError> {
        log.push(pages.dispatch_phase(&self.module.config().host, self.module.policy(), 1));
        if !pages.is_empty() {
            let prog = filter_exec::build_dnf_mask_program_in(
                self.layout.scratch(0),
                &[atoms.to_vec()],
                &[VALID_COL],
                MASK_COL,
            )?;
            log.push(
                self.module
                    .exec_program(&pages.ids(&self.loaded, 0), &prog)
                    .map_err(bbpim_core::error::CoreError::from)?,
            );
        }
        Ok(filter_exec::mask_bits(&self.module, &self.loaded, pages, 0, MASK_COL))
    }

    /// Host-channel lines a mask-column read of `pages` costs.
    pub fn mask_lines(&self, pages: &PageSet) -> u64 {
        mask_read_lines(&self.module, &pages.ids(&self.loaded, 0))
    }

    /// Apply a mutation (API v2): UPDATE through the PIM multiplexer —
    /// full `Pred` filter, multi-column SET — widening zone maps and
    /// patching the catalog copy, or INSERT appending rows behind the
    /// loaded image (fresh pages on demand, zones grown).
    ///
    /// # Errors
    ///
    /// Propagates substrate failures (cold SET attributes included —
    /// host-resident columns cannot be rewritten in PIM).
    pub fn mutate(&mut self, m: &Mutation, prune: bool) -> Result<MutationReport, ClusterError> {
        Ok(run_mutation(
            &mut self.module,
            &self.layout,
            &mut self.loaded,
            &mut self.relation,
            m,
            prune,
        )?)
    }

    /// Apply a v1 UPDATE. Deprecated wrapper over [`StarTable::mutate`].
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    #[allow(deprecated)]
    #[deprecated(note = "use StarTable::mutate with bbpim_core::mutation::Mutation")]
    pub fn update(&mut self, op: &UpdateOp, prune: bool) -> Result<UpdateReport, ClusterError> {
        self.mutate(&op.clone().into(), prune)
    }

    /// Split borrow for execution paths that mutate the module while
    /// reading the layout and loaded image.
    pub(crate) fn parts_mut(&mut self) -> (&mut PimModule, &RecordLayout, &LoadedRelation) {
        (&mut self.module, &self.layout, &self.loaded)
    }
}

impl std::fmt::Debug for StarTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarTable")
            .field("table", &self.relation.schema().name)
            .field("records", &self.relation.len())
            .field("pages", &self.loaded.page_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::{Atom, Const};
    use bbpim_db::ssb::star::StarSchema;
    use bbpim_db::ssb::{SsbDb, SsbParams};

    fn date_table() -> StarTable {
        let db = SsbDb::generate(&SsbParams::tiny_for_tests());
        let star = StarSchema::of_db(&db);
        let cold = star.ssb_cold_attrs();
        StarTable::new(SimConfig::small_for_tests(), db.date.clone(), &cold[4]).unwrap()
    }

    #[test]
    fn dimension_filter_yields_key_bitmap() {
        let mut t = date_table();
        let schema = t.relation().schema().clone();
        let atom = Atom::Eq { attr: "d_year".into(), value: Const::from(1993u64) };
        let resolved = atom.resolve(&schema).unwrap();
        let range = t.col_range("d_year").unwrap();
        let pages = t.plan_conjunction(std::slice::from_ref(&resolved), true);
        let mut log = RunLog::new();
        let mask = t.filter_conjunction(&[(resolved, range)], &pages, &mut log).unwrap();
        let year = schema.index_of("d_year").unwrap();
        for (row, got) in mask.iter().enumerate() {
            assert_eq!(*got, t.relation().value(row, year) == 1993, "row {row}");
        }
        assert_eq!(mask.iter().filter(|b| **b).count(), 365);
        assert!(log.total_time_ns() > 0.0);
    }

    #[test]
    fn update_patches_module_and_catalog() {
        let mut t = date_table();
        let m = Mutation::update()
            .filter(bbpim_db::builder::col("d_year").eq(1995u64))
            .set("d_weeknuminyear", 53u64)
            .build_unchecked();
        let rep = t.mutate(&m, true).unwrap();
        assert_eq!(rep.records_updated, 365);
        let schema = t.relation().schema().clone();
        let (year, week) =
            (schema.index_of("d_year").unwrap(), schema.index_of("d_weeknuminyear").unwrap());
        let mut probe = None;
        for row in 0..t.relation().len() {
            if t.relation().value(row, year) == 1995 {
                assert_eq!(t.relation().value(row, week), 53);
                probe = Some(row);
            }
        }
        // stored bits agree with the catalog copy
        let stored = bbpim_core::groupby::host_gb::read_attr_value(
            t.module(),
            t.layout(),
            t.loaded(),
            probe.unwrap(),
            "d_weeknuminyear",
        )
        .unwrap();
        assert_eq!(stored, 53);
    }

    #[test]
    fn cold_attributes_stay_host_side() {
        let t = date_table();
        assert!(t.col_range("d_datekey").is_err(), "dim keys are positional, not stored");
        assert!(t.col_range("d_year").is_ok());
    }
}
