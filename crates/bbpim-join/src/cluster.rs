//! The star-join cluster: sharded normalized fact table plus four
//! shared dimension modules, joined by PIM-side semijoin bitmaps.
//!
//! ## Execution model
//!
//! A query's filter is routed per DNF disjunct: atoms on `lo_*` stay
//! fact-local; atoms on a dimension's attributes run *on the dimension
//! module* as one bulk-bitwise conjunction, leaving a key bitmap in
//! its mask column (dimension keys are dense, so the mask **is** the
//! key bitmap). That bitmap crosses the host channel exactly twice per
//! disjunct-dimension — one compressed read off the dimension module,
//! one broadcast write shared by *all* fact shards in a single grant —
//! and is then AND-ed into each shard's fact mask *through the FK
//! column*: the bitmap's runs compile to range predicates in one
//! microprogram ([`bbpim_core::semijoin`]), so no per-fact-row mask
//! bits ever ride the bus. Everything downstream (PIM aggregation for
//! flat queries, host gather for GROUP BY, partial merging) matches
//! the pre-joined [`bbpim_cluster::ClusterEngine`] shape, and answers
//! are bit-identical to the pre-joined oracle.
//!
//! GROUP BY keys naming dimension attributes are joined at gather
//! time: the host reads the selected fact records' FK chunks off the
//! fact shards and the referenced dimension chunks off the dimension
//! modules (both with exact unique-line accounting — hot dimension
//! rows amortise across fact records), then hash-aggregates.
//!
//! ## Planning
//!
//! Shard admission and page planning stay host-side and free of PIM
//! work: the planner evaluates each dimension conjunction against the
//! catalog copy (zone maps and catalog are maintained by UPDATEs, so
//! this is sound) and turns the selected-key hull into a BETWEEN bound
//! on the fact FK attribute — selective dimension filters prune fact
//! shards and pages *through the join*.
//!
//! ## Accounting approximations
//!
//! The dimension-filter phases of a query (its *join prelude*) are
//! charged once per query, prepended to the first executing shard's
//! log; under the contention model their bus slices serialise like any
//! other host transfer. Other shards may in reality overlap the
//! dimension filter with their own dispatch — the model keeps the
//! whole prelude on one timeline, a conservative simplification.

use std::collections::HashMap;

use bbpim_cluster::engine::ClusterMutationReport;
use bbpim_cluster::{
    ClusterError, ClusterExecution, ClusterReport, HostBytes, JoinTransfer, Partitioner,
    PlanExplain, ShardPlan,
};
use bbpim_core::agg_exec::{aggregate_masked, materialize_exprs};
use bbpim_core::error::CoreError;
use bbpim_core::filter_exec::{count_mask_bits, mask_bits, mask_read_phases};
use bbpim_core::groupby::host_gb::{eval_expr, read_attr_value};
use bbpim_core::layout::{RecordLayout, MASK_COL, VALID_COL};
use bbpim_core::loader::LoadedRelation;
use bbpim_core::modes::EngineMode;
use bbpim_core::mutation::{Mutation, MutationReport};
use bbpim_core::planner::PageSet;
use bbpim_core::result::{PartialGroups, QueryExecution, QueryReport};
use bbpim_core::semijoin::{build_semijoin_mask_program_in, SemijoinDisjunct, SemijoinTerm};
#[allow(deprecated)]
use bbpim_core::update::UpdateOp;
use bbpim_db::plan::{Atom, FilterBounds, PhysicalPlan, Pred, Query, ResolvedAtom};
use bbpim_db::ssb::star::{self, StarSchema, TableFootprint, DIMENSIONS};
use bbpim_db::ssb::SsbDb;
use bbpim_db::stats::GroupedResult;
use bbpim_db::zonemap::ZoneMap;
use bbpim_sim::hostbus::log_occupancy_ns;
use bbpim_sim::hostmem::LineSet;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::{Phase, PhaseKind, RunLog};
use bbpim_sim::SimConfig;

use crate::bitmap::KeyBitmap;
use crate::table::StarTable;

/// One fact shard: its configured position, table and zone map.
struct StarShard {
    index: usize,
    table: StarTable,
    zone: ZoneMap,
}

/// A query's compiled join: the fact-side semijoin program inputs, the
/// FK-hull bounds the planner derived from the bitmaps, and the
/// dimension-side phase log (charged once per query). The transfer
/// ledger lives on [`PlanExplain`] — [`StarCluster::explain`] rebuilds
/// it from the catalog, which the executed bitmaps provably match.
struct JoinPlan {
    disjuncts: Vec<SemijoinDisjunct>,
    bounds_dnf: Vec<Vec<ResolvedAtom>>,
    prelude: RunLog,
    prelude_charged: bool,
}

/// A sharded PIM OLAP engine over the *normalized* SSB star schema.
///
/// Presents the same surface as [`bbpim_cluster::ClusterEngine`]
/// (`run`, `run_on_shard`, `merge_executions`, `update`, `explain`,
/// `plan_shards`) with bit-identical answers — only the storage model
/// and the bytes on the host channel differ.
pub struct StarCluster {
    dims: Vec<StarTable>,
    shards: Vec<StarShard>,
    shard_count: usize,
    partitioner: Partitioner,
    mode: EngineMode,
    records: usize,
    pruning: bool,
    contention: bool,
    cold: [Vec<String>; 5],
    join_cache: HashMap<String, JoinPlan>,
}

/// Join-plan cache key: one compiled plan per (query, filter) text.
fn plan_key(query: &Query) -> String {
    format!("{}|{}", query.id, query.filter)
}

/// Split a conjunction by owning table: fact atoms plus per-dimension
/// atom lists (catalog order).
fn route_conjunct(conj: &[Atom]) -> (Vec<Atom>, [Vec<Atom>; 4]) {
    let mut fact = Vec::new();
    let mut dims: [Vec<Atom>; 4] = Default::default();
    for atom in conj {
        match StarSchema::dim_of_attr(atom.attr()) {
            None => fact.push(atom.clone()),
            Some(d) => dims[d].push(atom.clone()),
        }
    }
    (fact, dims)
}

impl StarCluster {
    /// Build the normalized cluster from a generated SSB instance: the
    /// four dimensions each on their own module, the fact table
    /// partitioned into `shards` (empty slices dropped, as in
    /// [`bbpim_cluster::ClusterEngine::new`]). Residency is
    /// workload-derived ([`StarSchema::ssb_cold_attrs`]): attributes no
    /// SSB query touches stay host-side, dimension keys are positional.
    ///
    /// `mode` labels reports and selects the aggregation circuit;
    /// normalized records are single-partition either way (the two-xb
    /// fact/dimension split *is* the normalization now).
    ///
    /// # Errors
    ///
    /// Partitioning or per-table load failures.
    pub fn new(
        cfg: SimConfig,
        db: &SsbDb,
        mode: EngineMode,
        shards: usize,
        partitioner: Partitioner,
    ) -> Result<Self, ClusterError> {
        let catalog = StarSchema::of_db(db);
        let cold = catalog.ssb_cold_attrs();
        let mut dims = Vec::with_capacity(4);
        for d in 0..4 {
            dims.push(StarTable::new(cfg.clone(), catalog.dim(d).clone(), &cold[d + 1])?);
        }
        let records = db.lineorder.len();
        let parts = partitioner.split_zoned(&db.lineorder, shards)?;
        let mut built = Vec::with_capacity(shards);
        for (index, (part, zone)) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            built.push(StarShard {
                index,
                table: StarTable::new(cfg.clone(), part, &cold[0])?,
                zone,
            });
        }
        Ok(StarCluster {
            dims,
            shards: built,
            shard_count: shards,
            partitioner,
            mode,
            records,
            pruning: true,
            contention: true,
            cold,
            join_cache: HashMap::new(),
        })
    }

    /// Configured shard count (including empty shards).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Fact shards actually holding records.
    pub fn active_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fact records across the cluster.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The fact partitioning strategy.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Is zone-map pruning (shard admission + page planning, dimension
    /// and fact side) enabled? Defaults to `true`.
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Enable or disable zone-map pruning. Answers are bit-identical
    /// either way.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
        self.join_cache.clear();
    }

    /// Is the shared-host-channel contention model enabled (default)?
    pub fn contention(&self) -> bool {
        self.contention
    }

    /// Enable or disable the contention model for A/B studies.
    pub fn set_contention(&mut self, enabled: bool) {
        self.contention = enabled;
    }

    /// The host-transfer policy the tables run under (compressed mask
    /// transfers, batched dispatch descriptors, module-side result
    /// reduction). Defaults to all levers on.
    pub fn xfer_policy(&self) -> bbpim_sim::XferPolicy {
        self.shards.first().map(|s| s.table.module().policy()).unwrap_or_default()
    }

    /// Set the host-transfer policy cluster-wide — fact shards and
    /// dimension modules — for A/B attribution studies. Answers are
    /// bit-identical under every lever combination. Invalidates
    /// compiled join plans (their preludes embed the old byte charges).
    pub fn set_xfer_policy(&mut self, policy: bbpim_sim::XferPolicy) {
        for shard in &mut self.shards {
            shard.table.set_xfer_policy(policy);
        }
        for dim in &mut self.dims {
            dim.set_xfer_policy(policy);
        }
        self.join_cache.clear();
    }

    /// One dimension table by catalog index (see
    /// [`bbpim_db::ssb::star::DIMENSIONS`]).
    ///
    /// # Panics
    ///
    /// Panics when `d >= 4`.
    pub fn dim(&self, d: usize) -> &StarTable {
        &self.dims[d]
    }

    /// An active fact shard's table; `i` indexes active shards.
    pub fn shard_table(&self, i: usize) -> Option<&StarTable> {
        self.shards.get(i).map(|s| &s.table)
    }

    /// An active fact shard's zone map.
    pub fn shard_zone(&self, i: usize) -> Option<&ZoneMap> {
        self.shards.get(i).map(|s| &s.zone)
    }

    /// Per-table PIM-resident footprints: the (cluster-wide) fact
    /// table first, then the four dimensions.
    pub fn footprints(&self) -> Vec<TableFootprint> {
        let mut out = Vec::with_capacity(5);
        if let Some(s) = self.shards.first() {
            let mut f = star::table_footprint(s.table.relation(), &self.cold[0]);
            f.records = self.records;
            f.data_bytes = ((self.records * f.resident_bits) as u64).div_ceil(8);
            out.push(f);
        }
        for (d, t) in self.dims.iter().enumerate() {
            out.push(star::table_footprint(t.relation(), &self.cold[d + 1]));
        }
        out
    }

    /// Total PIM-resident data bytes across the five tables.
    pub fn total_data_bytes(&self) -> u64 {
        self.footprints().iter().map(|f| f.data_bytes).sum()
    }

    /// Host-side evaluation of one dimension conjunction against the
    /// catalog copy — the planner's (free) twin of the on-module
    /// filter; both produce the same bitmap because pruning is a proof
    /// of absence and UPDATEs patch the catalog.
    fn host_dim_bitmap(&self, d: usize, atoms: &[Atom]) -> Result<KeyBitmap, ClusterError> {
        let rel = self.dims[d].relation();
        let resolved: Vec<ResolvedAtom> =
            atoms.iter().map(|a| a.resolve(rel.schema())).collect::<Result<_, _>>()?;
        let bits = (0..rel.len()).map(|row| resolved.iter().all(|a| a.matches(rel, row))).collect();
        Ok(KeyBitmap::new(DIMENSIONS[d].key_base, bits))
    }

    /// The planner's view of a star filter: per surviving disjunct,
    /// the fact atoms plus one FK-hull BETWEEN per filtered dimension
    /// (resolved against the fact schema), and the transfer ledger.
    /// Disjuncts whose dimension filter selects nothing are dropped —
    /// they can match no fact record.
    fn host_join_plan(
        &self,
        filter: &Pred,
    ) -> Result<(Vec<Vec<ResolvedAtom>>, Vec<JoinTransfer>), ClusterError> {
        let Some(first) = self.shards.first() else {
            return Ok((Vec::new(), Vec::new()));
        };
        let fact_schema = first.table.relation().schema();
        let broadcast = self.shards.len();
        let mut dnf_out = Vec::new();
        let mut transfers = Vec::new();
        for (di, conj) in filter.dnf().iter().enumerate() {
            let (fact_atoms, dim_atoms) = route_conjunct(conj);
            let mut atoms: Vec<ResolvedAtom> =
                fact_atoms.iter().map(|a| a.resolve(fact_schema)).collect::<Result<_, _>>()?;
            let mut dead = false;
            for (d, da) in dim_atoms.iter().enumerate() {
                if da.is_empty() {
                    continue;
                }
                let bitmap = self.host_dim_bitmap(d, da)?;
                transfers.push(transfer_of(d, di, &bitmap, broadcast));
                match bitmap.hull() {
                    None => {
                        // empty bitmap: the disjunct is false; later
                        // dimensions of it are never filtered
                        dead = true;
                        break;
                    }
                    Some((lo, hi)) => atoms.push(ResolvedAtom::Between {
                        idx: fact_schema.index_of(DIMENSIONS[d].fk)?,
                        lo,
                        hi,
                    }),
                }
            }
            if !dead {
                dnf_out.push(atoms);
            }
        }
        Ok((dnf_out, transfers))
    }

    /// Pre-scatter shard admission: `true` per active shard whose zone
    /// map admits some surviving disjunct (fact bounds *and* FK hulls
    /// — dimension selectivity prunes fact shards through the join).
    ///
    /// # Errors
    ///
    /// Propagates attribute resolution failures.
    pub fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError> {
        if !self.pruning || filter.is_always() {
            return Ok(vec![true; self.shards.len()]);
        }
        let (dnf, _) = self.host_join_plan(filter)?;
        if dnf.is_empty() {
            // every disjunct died on an empty dimension bitmap
            return Ok(vec![false; self.shards.len()]);
        }
        let bounds = FilterBounds::from_dnf(&dnf);
        Ok(self.shards.iter().map(|s| bounds.can_match(&s.zone)).collect())
    }

    /// The physical plan of `query` without executing anything,
    /// including the join-transfer ledger (raw vs wire bitmap bytes).
    ///
    /// # Errors
    ///
    /// Propagates attribute resolution failures.
    pub fn explain(&self, query: &Query) -> Result<PlanExplain, ClusterError> {
        let mask = self.plan_shards(&query.filter)?;
        let (dnf, transfers) = self.host_join_plan(&query.filter)?;
        let filter_bounds = match self.shards.first() {
            None => Vec::new(),
            Some(first) => {
                let schema = first.table.relation().schema();
                FilterBounds::from_dnf(&dnf)
                    .intervals()
                    .into_iter()
                    .map(|(idx, intervals)| (schema.attrs()[idx].name.clone(), intervals))
                    .collect()
            }
        };
        let policy = self.xfer_policy();
        let mut host_bytes = HostBytes::default();
        // semijoin bitmaps: one read + one broadcast each, at the wire
        // size (or bit-packed raw with the compression lever off)
        for t in &transfers {
            host_bytes.mask_wire_bytes +=
                2 * if policy.compress_masks { t.wire_bytes } else { t.raw_bytes };
        }
        // dimension-filter dispatch: each filtered dimension of a
        // disjunct is dispatched once on its module as part of the join
        // prelude, and those descriptor bytes ride the channel like any
        // fact dispatch. Charging mirrors `build_join_plan`: a
        // dimension whose empty bitmap kills the disjunct is still
        // dispatched; the dimensions after it are never reached.
        for conj in &query.filter.dnf() {
            let (_, dim_atoms) = route_conjunct(conj);
            for (d, da) in dim_atoms.iter().enumerate() {
                if da.is_empty() {
                    continue;
                }
                let dim = &self.dims[d];
                let schema = dim.relation().schema();
                let resolved: Vec<ResolvedAtom> =
                    da.iter().map(|a| a.resolve(schema)).collect::<Result<_, _>>()?;
                let pages = dim.plan_conjunction(&resolved, self.pruning);
                let host = &dim.module().config().host;
                if !pages.is_empty() && dim.module().policy().batch_dispatch {
                    host_bytes.dispatch_bytes += host.dispatch_header_bytes
                        + pages.run_count() as u64 * host.dispatch_run_bytes;
                }
                if self.host_dim_bitmap(d, da)?.hull().is_none() {
                    break;
                }
            }
        }
        let aggs = query.physical_plan().map_err(ClusterError::Db)?.aggs.len() as u64;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (shard, &dispatched) in self.shards.iter().zip(&mask) {
            let mut candidate_pages = 0;
            if dispatched {
                let plan = shard.table.plan_dnf(&dnf, self.pruning);
                candidate_pages = plan.len();
                if !plan.is_empty() {
                    let cfg = shard.table.module().config();
                    if policy.batch_dispatch {
                        host_bytes.dispatch_bytes += cfg.host.dispatch_header_bytes
                            + plan.run_count() as u64 * cfg.host.dispatch_run_bytes;
                    }
                    let chunk_lines = 64u64.div_ceil(cfg.read_width_bits as u64);
                    host_bytes.result_bytes += aggs
                        * chunk_lines
                        * cfg.host.line_bytes as u64
                        * if policy.module_reduce { 1 } else { plan.len() as u64 };
                }
            }
            shards.push(ShardPlan {
                shard_index: shard.index,
                records: shard.table.relation().len(),
                pages: shard.table.page_count(),
                candidate_pages,
                dispatched,
            });
        }
        Ok(PlanExplain {
            query_id: query.id.clone(),
            filter: query.filter.to_string(),
            filter_bounds,
            shards,
            join_transfers: transfers,
            host_bytes,
            actuals: None,
        })
    }

    /// `EXPLAIN ANALYZE` on the normalized star store: plan `query`,
    /// execute it, and return the plan with the run's recorded actuals
    /// attached next to the planner's estimates (cf.
    /// [`bbpim_cluster::explain::PlanExplain::consistency_errors`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StarCluster::explain`] and
    /// [`StarCluster::run`].
    pub fn explain_analyze(
        &mut self,
        query: &Query,
    ) -> Result<(PlanExplain, ClusterExecution), ClusterError> {
        let mut plan = self.explain(query)?;
        let exec = self.run(query)?;
        plan.attach_actuals(&exec.report);
        Ok((plan, exec))
    }

    /// Compile a query's join: run each disjunct's dimension filters
    /// on their modules, decompose the bitmaps into semijoin runs, and
    /// charge the dimension phases plus the two bitmap transfers (read
    /// + one broadcast grant) to the plan's prelude log.
    fn build_join_plan(&mut self, query: &Query) -> Result<JoinPlan, ClusterError> {
        let prune = self.pruning;
        let Some(first) = self.shards.first() else {
            return Ok(JoinPlan {
                disjuncts: Vec::new(),
                bounds_dnf: Vec::new(),
                prelude: RunLog::new(),
                prelude_charged: false,
            });
        };
        let fact_table = &first.table;
        let fact_schema = fact_table.relation().schema();
        let mut prelude = RunLog::new();
        let mut disjuncts = Vec::new();
        let mut bounds_dnf = Vec::new();
        for conj in &query.filter.dnf() {
            let (fact_atoms, dim_atoms) = route_conjunct(conj);
            let mut prog_atoms = Vec::with_capacity(fact_atoms.len());
            let mut bound_atoms = Vec::with_capacity(conj.len());
            for a in &fact_atoms {
                let resolved = a.resolve(fact_schema)?;
                let range = fact_table.col_range(a.attr())?;
                bound_atoms.push(resolved.clone());
                prog_atoms.push((resolved, range));
            }
            let mut semijoins = Vec::new();
            let mut dead = false;
            for (d, da) in dim_atoms.iter().enumerate() {
                if da.is_empty() {
                    continue;
                }
                let dim = &mut self.dims[d];
                let mut resolved = Vec::with_capacity(da.len());
                let mut ranged = Vec::with_capacity(da.len());
                for a in da {
                    let r = a.resolve(dim.relation().schema())?;
                    let range = dim.col_range(a.attr())?;
                    resolved.push(r.clone());
                    ranged.push((r, range));
                }
                let pages = dim.plan_conjunction(&resolved, prune);
                let bits = dim.filter_conjunction(&ranged, &pages, &mut prelude)?;
                let bitmap = KeyBitmap::new(DIMENSIONS[d].key_base, bits);
                // the bitmap crosses the channel twice: one read off
                // the dimension module, one broadcast write shared by
                // every fact shard (a single grant) — at the compressed
                // wire size, or bit-packed raw when the compression
                // lever is off (A/B attribution)
                let line_bytes = dim.module().config().host.line_bytes as u64;
                let lines = if dim.module().policy().compress_masks {
                    bitmap.wire_lines(line_bytes)
                } else {
                    bitmap.raw_bytes().div_ceil(line_bytes.max(1)).max(1)
                };
                prelude.push(dim.module().host_read_phase(lines));
                prelude.push(dim.module().host_write_phase(lines));
                match bitmap.hull() {
                    None => {
                        dead = true;
                        break;
                    }
                    Some((lo, hi)) => bound_atoms.push(ResolvedAtom::Between {
                        idx: fact_schema.index_of(DIMENSIONS[d].fk)?,
                        lo,
                        hi,
                    }),
                }
                semijoins.push(SemijoinTerm::from_bitmap(
                    fact_table.col_range(DIMENSIONS[d].fk)?,
                    bitmap.bits(),
                    bitmap.base(),
                ));
            }
            if !dead {
                disjuncts.push(SemijoinDisjunct { atoms: prog_atoms, semijoins });
                bounds_dnf.push(bound_atoms);
            }
        }
        Ok(JoinPlan { disjuncts, bounds_dnf, prelude, prelude_charged: false })
    }

    /// Execute `query` on one active fact shard and return its partial
    /// execution — the scatter half of [`StarCluster::run`], reusable
    /// by the streaming scheduler. The first shard to execute a given
    /// (query, filter) carries the join prelude (dimension filters +
    /// bitmap transfers) in its log; subsequent shards reuse the
    /// compiled plan for free, matching the one-broadcast model.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidCluster`] for an unknown shard index;
    /// substrate failures otherwise.
    pub fn run_on_shard(
        &mut self,
        i: usize,
        query: &Query,
    ) -> Result<QueryExecution, ClusterError> {
        let key = plan_key(query);
        let mut plan = match self.join_cache.remove(&key) {
            Some(plan) => plan,
            None => self.build_join_plan(query)?,
        };
        let prelude = (!plan.prelude_charged).then(|| plan.prelude.clone());
        plan.prelude_charged = true;
        let active = self.shards.len();
        let result = match self.shards.get_mut(i) {
            None => Err(ClusterError::InvalidCluster(format!("no active shard {i}/{active}"))),
            Some(shard) => exec_star_query(
                shard,
                &self.dims,
                query,
                &plan,
                prelude.as_ref(),
                self.mode,
                self.pruning,
            ),
        };
        self.join_cache.insert(key, plan);
        result
    }

    /// Execute one query: admit shards against the FK-hull bounds, run
    /// the surviving shards (the first carries the join prelude), and
    /// merge the partials. The join plan is recompiled per `run` call
    /// — repeated runs recharge the dimension work deterministically.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn run(&mut self, query: &Query) -> Result<ClusterExecution, ClusterError> {
        self.join_cache.remove(&plan_key(query));
        let mask = self.plan_shards(&query.filter)?;
        let mut executions = Vec::new();
        for (i, &dispatched) in mask.iter().enumerate() {
            if dispatched {
                executions.push(self.run_on_shard(i, query)?);
            }
        }
        let refs: Vec<&QueryExecution> = executions.iter().collect();
        let pruned = mask.iter().filter(|d| !**d).count();
        Ok(self.merge_executions(query, &refs, pruned))
    }

    /// Gather: merge per-shard partial executions into one cluster
    /// execution — the same fold as
    /// [`bbpim_cluster::ClusterEngine::merge_executions`], so
    /// schedulers treat both storage models uniformly.
    ///
    /// # Panics
    ///
    /// Panics on a query whose SELECT list is invalid — impossible for
    /// executions the shards produced.
    pub fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution {
        let plan = query.physical_plan().expect("executed queries have a valid SELECT list");
        let mut partials: Vec<PartialGroups> =
            plan.aggs.iter().map(|a| PartialGroups::new(a.func)).collect();
        let mut merged_entries = 0u64;
        for exec in executions {
            for (acc, part) in partials.iter_mut().zip(&exec.partials) {
                merged_entries += part.groups.len() as u64;
                acc.absorb_ref(part);
            }
        }
        let merge_ns_per_entry = self
            .shards
            .first()
            .map(|s| s.table.module().config().host.host_agg_ns_per_record)
            .unwrap_or(0.0);
        let merge_time_ns = merged_entries as f64 * merge_ns_per_entry;

        let dispatch_time_ns: f64 =
            executions.iter().map(|e| e.report.phases.time_in(PhaseKind::HostDispatch)).sum();
        let host_bus_time_ns: f64 = executions.iter().map(|e| e.report.host_bus_ns).sum();
        let serial = |e: &&QueryExecution| {
            if self.contention {
                e.report.host_bus_ns
            } else {
                e.report.phases.time_in(PhaseKind::HostDispatch)
            }
        };
        let serial_total: f64 = executions.iter().map(serial).sum();
        let pim_max = executions.iter().map(|e| e.report.time_ns - serial(e)).fold(0.0, f64::max);
        let selected: u64 = executions.iter().map(|e| e.report.selected).sum();
        let report = ClusterReport {
            query_id: query.id.clone(),
            mode: self.mode,
            shards: self.shard_count,
            active_shards: self.shards.len(),
            shards_pruned,
            partitioner: self.partitioner.label(),
            time_ns: serial_total + pim_max + merge_time_ns,
            dispatch_time_ns,
            host_bus_time_ns,
            merge_time_ns,
            total_shard_time_ns: executions.iter().map(|e| e.report.time_ns).sum(),
            energy_pj: executions.iter().map(|e| e.report.energy_pj).sum(),
            peak_chip_power_w: executions
                .iter()
                .map(|e| e.report.peak_chip_power_w)
                .fold(0.0, f64::max),
            records: self.records,
            pages_total: self.shards.iter().map(|s| s.table.page_count()).sum(),
            pages_scanned: executions.iter().map(|e| e.report.pages_scanned).sum(),
            selected,
            selectivity: if self.records == 0 {
                0.0
            } else {
                selected as f64 / self.records as f64
            },
            max_shard_subgroups: executions
                .iter()
                .map(|e| e.report.total_subgroups)
                .max()
                .unwrap_or(0),
            per_shard: executions.iter().map(|e| e.report.clone()).collect(),
        };
        let per_agg: Vec<GroupedResult> =
            partials.into_iter().map(PartialGroups::into_groups).collect();
        ClusterExecution { groups: plan.finalize(&per_agg), report }
    }

    /// Which single table an UPDATE routes to: `Some(d)` for dimension
    /// `d` (catalog order), `None` for the fact table. Every SET
    /// attribute and every filter atom must agree — cross-table UPDATE
    /// semantics are not defined.
    fn route_update(&self, m: &Mutation) -> Result<Option<usize>, ClusterError> {
        let Mutation::Update { filter, set } = m else {
            return Err(ClusterError::InvalidCluster("route_update on an INSERT".into()));
        };
        let mut target: Option<Option<usize>> = None;
        for (attr, _) in set {
            let t = StarSchema::dim_of_attr(attr);
            match target {
                None => target = Some(t),
                Some(prev) if prev != t => {
                    return Err(ClusterError::InvalidCluster(format!(
                        "UPDATE mixes tables in its SET list at {attr}"
                    )));
                }
                Some(_) => {}
            }
        }
        let Some(target) = target else {
            return Err(ClusterError::InvalidCluster("UPDATE with an empty SET list".into()));
        };
        for a in m_filter_atoms(filter) {
            if StarSchema::dim_of_attr(a.attr()) != target {
                return Err(ClusterError::InvalidCluster(format!(
                    "UPDATE mixes tables: SET list filtered by {}",
                    a.attr()
                )));
            }
        }
        Ok(target)
    }

    /// Total ingest lanes the scheduler sees: one per active fact shard
    /// plus one per dimension module (dimension `d` is lane
    /// `active_shards() + d`).
    pub fn ingest_lanes(&self) -> usize {
        self.shards.len() + self.dims.len()
    }

    /// The lanes a mutation will touch, in lane order. A dimension
    /// UPDATE occupies that dimension's module lane; a fact UPDATE the
    /// zone-admitted fact-shard lanes; an INSERT (fact rows only) the
    /// lanes its deterministic round-robin routing — cursor
    /// `records % active` — will land the rows on.
    ///
    /// # Errors
    ///
    /// Cross-table UPDATEs and filter resolution failures.
    pub fn plan_mutation_lanes(&self, m: &Mutation) -> Result<Vec<usize>, ClusterError> {
        match m {
            Mutation::Update { filter, .. } => match self.route_update(m)? {
                Some(d) => Ok(vec![self.shards.len() + d]),
                None => {
                    let mask = self.plan_shards(filter)?;
                    Ok(mask.iter().enumerate().filter_map(|(i, &x)| x.then_some(i)).collect())
                }
            },
            Mutation::Insert { rows } => {
                let active = self.shards.len();
                if active == 0 || rows.is_empty() {
                    return Ok(Vec::new());
                }
                let start = self.records % active;
                let mut lanes: Vec<usize> =
                    (0..rows.len().min(active)).map(|k| (start + k) % active).collect();
                lanes.sort_unstable();
                Ok(lanes)
            }
        }
    }

    /// Lane-indexed mutation fan-out (serial; lane order) — the
    /// scheduler's building block, mirroring
    /// [`bbpim_cluster::ClusterEngine::mutate_on_lanes`]. A dimension
    /// UPDATE runs on one module with cost proportional to the
    /// dimension's cardinality — the normalization win over rewriting a
    /// denormalized column on every fact shard. INSERTs append fact
    /// rows round-robin from the deterministic cursor
    /// `records % active` (dimension INSERTs are not supported — SSB
    /// dimensions are keyed positionally). Compiled join plans are
    /// invalidated by every mutation: a landed write may change any
    /// cached semijoin bitmap.
    ///
    /// # Errors
    ///
    /// Cross-table UPDATEs ([`ClusterError::InvalidCluster`]);
    /// substrate failures otherwise. Mutations are not atomic: on a
    /// mid-fan-out error earlier lanes have applied.
    pub fn mutate_on_lanes(
        &mut self,
        m: &Mutation,
    ) -> Result<Vec<(usize, MutationReport)>, ClusterError> {
        self.join_cache.clear();
        match m {
            Mutation::Update { .. } => match self.route_update(m)? {
                Some(d) => {
                    let report = self.dims[d].mutate(m, self.pruning)?;
                    Ok(vec![(self.shards.len() + d, report)])
                }
                None => {
                    let lanes = self.plan_mutation_lanes(m)?;
                    let mut out = Vec::with_capacity(lanes.len());
                    for lane in lanes {
                        let shard = &mut self.shards[lane];
                        let report = shard.table.mutate(m, self.pruning)?;
                        shard.zone = shard.table.zone_map();
                        out.push((lane, report));
                    }
                    Ok(out)
                }
            },
            Mutation::Insert { rows } => {
                let active = self.shards.len();
                if active == 0 {
                    return Err(ClusterError::InvalidCluster(
                        "INSERT into a star cluster with no active fact shards".into(),
                    ));
                }
                let start = self.records % active;
                let mut per_lane: Vec<Vec<Vec<u64>>> = vec![Vec::new(); active];
                for (k, row) in rows.iter().enumerate() {
                    per_lane[(start + k) % active].push(row.clone());
                }
                let mut out = Vec::new();
                for (lane, lane_rows) in per_lane.into_iter().enumerate() {
                    if lane_rows.is_empty() {
                        continue;
                    }
                    let part = Mutation::Insert { rows: lane_rows };
                    let shard = &mut self.shards[lane];
                    let report = shard.table.mutate(&part, self.pruning)?;
                    shard.zone = shard.table.zone_map();
                    self.records += report.records_inserted as usize;
                    out.push((lane, report));
                }
                Ok(out)
            }
        }
    }

    /// Apply a mutation to the owning table(s) and aggregate one
    /// report (same wall-clock model as queries: host-serial channel
    /// occupancy plus max-over-lanes of the overlappable PIM time).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StarCluster::mutate_on_lanes`].
    pub fn mutate(&mut self, m: &Mutation) -> Result<ClusterMutationReport, ClusterError> {
        let fact_update = matches!(m, Mutation::Update { .. }) && self.route_update(m)?.is_none();
        let reports: Vec<MutationReport> =
            self.mutate_on_lanes(m)?.into_iter().map(|(_, r)| r).collect();
        let contention = self.contention;
        let serial = |r: &MutationReport| {
            if contention {
                r.host_bus_ns
            } else {
                r.phases.time_in(PhaseKind::HostDispatch)
            }
        };
        let shards_pruned = if fact_update { self.shards.len() - reports.len() } else { 0 };
        let serial_total: f64 = reports.iter().map(serial).sum();
        let pim_max = reports.iter().map(|r| r.time_ns - serial(r)).fold(0.0, f64::max);
        Ok(ClusterMutationReport {
            records_updated: reports.iter().map(|r| r.records_updated).sum(),
            records_inserted: reports.iter().map(|r| r.records_inserted).sum(),
            shards_pruned,
            time_ns: serial_total + pim_max,
            dispatch_time_ns: reports
                .iter()
                .map(|r| r.phases.time_in(PhaseKind::HostDispatch))
                .sum(),
            total_shard_time_ns: reports.iter().map(|r| r.time_ns).sum(),
            energy_pj: reports.iter().map(|r| r.energy_pj).sum(),
            per_shard: reports,
        })
    }

    /// Apply a v1 UPDATE. Deprecated wrapper over
    /// [`StarCluster::mutate`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StarCluster::mutate`].
    #[allow(deprecated)]
    #[deprecated(note = "use StarCluster::mutate with bbpim_core::mutation::Mutation")]
    pub fn update(&mut self, op: &UpdateOp) -> Result<ClusterMutationReport, ClusterError> {
        self.mutate(&op.clone().into())
    }
}

/// Every atom of a filter tree (all DNF branches flattened).
fn m_filter_atoms(filter: &Pred) -> Vec<Atom> {
    filter.dnf().into_iter().flatten().collect()
}

/// The streaming scheduler ([`bbpim_sched::run_stream`]) drives the
/// star cluster exactly like the pre-joined engine: join preludes are
/// ordinary phases in the first shard's log, so dimension filters and
/// bitmap broadcasts queue on the shared channel like any transfer.
impl bbpim_sched::StreamEngine for StarCluster {
    fn contention(&self) -> bool {
        StarCluster::contention(self)
    }

    fn host_config(&self) -> Option<bbpim_sim::config::HostConfig> {
        self.shards.first().map(|s| s.table.module().config().host.clone())
    }

    fn active_shards(&self) -> usize {
        StarCluster::active_shards(self)
    }

    fn ingest_lanes(&self) -> usize {
        StarCluster::ingest_lanes(self)
    }

    fn plan_mutation_lanes(&self, mutation: &Mutation) -> Result<Vec<usize>, ClusterError> {
        StarCluster::plan_mutation_lanes(self, mutation)
    }

    fn apply_mutation(
        &mut self,
        mutation: &Mutation,
    ) -> Result<Vec<(usize, MutationReport)>, ClusterError> {
        StarCluster::mutate_on_lanes(self, mutation)
    }

    fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError> {
        StarCluster::plan_shards(self, filter)
    }

    fn run_on_shard(
        &mut self,
        shard: usize,
        query: &Query,
    ) -> Result<QueryExecution, ClusterError> {
        StarCluster::run_on_shard(self, shard, query)
    }

    fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution {
        StarCluster::merge_executions(self, query, executions, shards_pruned)
    }
}

/// Build one transfer-ledger entry.
fn transfer_of(d: usize, disjunct: usize, bitmap: &KeyBitmap, broadcast: usize) -> JoinTransfer {
    JoinTransfer {
        dimension: DIMENSIONS[d].name.to_string(),
        disjunct,
        keys_selected: bitmap.keys_selected(),
        key_space: bitmap.key_space(),
        raw_bytes: bitmap.raw_bytes(),
        wire_bytes: bitmap.wire_bytes(),
        broadcast_shards: broadcast,
    }
}

/// Run one query on one fact shard against a compiled join plan.
fn exec_star_query(
    shard: &mut StarShard,
    dims: &[StarTable],
    query: &Query,
    plan: &JoinPlan,
    prelude: Option<&RunLog>,
    mode: EngineMode,
    prune: bool,
) -> Result<QueryExecution, ClusterError> {
    let qplan = query.physical_plan()?;
    // aggregate operands must be fact-resident: dimension values are
    // joined for grouping, never materialised per fact row
    for agg in &qplan.aggs {
        for a in agg.attrs() {
            if StarSchema::dim_of_attr(a).is_some() {
                return Err(ClusterError::Core(CoreError::Unsupported(format!(
                    "aggregating dimension attribute {a} on the normalized schema"
                ))));
            }
        }
    }
    let pages = shard.table.plan_dnf(&plan.bounds_dnf, prune);
    let (module, layout, loaded) = shard.table.parts_mut();
    let all_pages = loaded.all_pages();
    module.reset_endurance(&all_pages);
    let mut log = RunLog::new();
    if let Some(p) = prelude {
        log.extend(p);
    }
    log.push(pages.dispatch_phase(&module.config().host, module.policy(), 1));
    let fact_pages = pages.ids(loaded, 0);
    let selected = if pages.is_empty() {
        0
    } else {
        let prog = build_semijoin_mask_program_in(
            layout.scratch(0),
            &plan.disjuncts,
            &[VALID_COL],
            MASK_COL,
        )?;
        log.push(module.exec_program(&fact_pages, &prog).map_err(CoreError::from)?);
        count_mask_bits(module, &fact_pages, MASK_COL)
    };
    let records = loaded.records();

    let mut per_agg: Vec<GroupedResult> = vec![GroupedResult::new(); qplan.aggs.len()];
    let mut kmax = 0usize;
    let mut k = 0usize;
    if query.has_group_by() {
        per_agg = star_gather(module, layout, loaded, dims, query, &qplan, &pages, &mut log)?;
        kmax = per_agg.first().map_or(0, GroupedResult::len);
    } else if selected > 0 {
        let exprs: Vec<&bbpim_db::plan::AggExpr> =
            qplan.aggs.iter().filter_map(|a| a.expr.as_ref()).collect();
        let inputs = materialize_exprs(module, layout, loaded, &pages, &exprs, &mut log)?;
        let mut inputs_iter = inputs.into_iter();
        for (agg, grouped) in qplan.aggs.iter().zip(per_agg.iter_mut()) {
            let value = match &agg.expr {
                None => selected,
                Some(_) => {
                    let input = inputs_iter.next().expect("one input per expression");
                    aggregate_masked(
                        module, layout, loaded, &pages, mode, &input, MASK_COL, agg.func, &mut log,
                    )?
                }
            };
            grouped.insert(Vec::new(), value);
        }
        k = 1;
        kmax = 1;
    }

    let groups = qplan.finalize(&per_agg);
    let partials: Vec<PartialGroups> = qplan
        .aggs
        .iter()
        .zip(per_agg)
        .map(|(agg, grouped)| PartialGroups { func: agg.func, groups: grouped })
        .collect();
    let report = QueryReport {
        query_id: query.id.clone(),
        mode,
        host_bus_ns: log_occupancy_ns(&module.config().host, &log),
        time_ns: log.total_time_ns(),
        energy_pj: log.total_energy_pj(),
        peak_chip_power_w: log.peak_chip_power_w(),
        max_row_cell_writes: module.max_row_cell_writes(&all_pages),
        row_cells: module.config().crossbar_cols,
        records,
        pages: loaded.page_count(),
        pages_scanned: pages.len(),
        selected,
        selectivity: if records == 0 { 0.0 } else { selected as f64 / records as f64 },
        total_subgroups: kmax as u64,
        subgroups_in_sample: 0,
        pim_agg_subgroups: k as u64,
        phases: log,
    };
    Ok(QueryExecution { groups, partials, report })
}

/// Where one GROUP BY key comes from.
enum GroupSource {
    Fact(String),
    Dim { d: usize, attr: String },
}

/// Star host-gather: the host reads the mask, the selected fact
/// records' key/FK/operand chunks, and — for dimension group keys —
/// the referenced dimension rows' chunks (positional FK probe), then
/// hash-aggregates every SELECT item in one pass. Mirrors
/// [`bbpim_core::groupby::host_gb::run_host_gb`]'s exact unique-line
/// accounting on both the fact and the dimension modules.
#[allow(clippy::too_many_arguments)]
fn star_gather(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &LoadedRelation,
    dims: &[StarTable],
    query: &Query,
    qplan: &PhysicalPlan,
    pages: &PageSet,
    log: &mut RunLog,
) -> Result<Vec<GroupedResult>, CoreError> {
    let sources: Vec<GroupSource> = query
        .group_by
        .iter()
        .map(|g| match StarSchema::dim_of_attr(g) {
            None => GroupSource::Fact(g.clone()),
            Some(d) => GroupSource::Dim { d, attr: g.clone() },
        })
        .collect();

    // 1. filter-result bit-vector off the fact shard (wire-compressed
    //    under the byte diet: the mask packs module-side and only the
    //    wire bytes occupy the shared channel)
    let mask = mask_bits(module, loaded, pages, 0, MASK_COL);
    for phase in mask_read_phases(module, loaded, pages, &mask) {
        log.push(phase);
    }

    // 2. chunks per table: fact group keys + the FK of every dimension
    //    key + aggregate operands on the fact side; the referenced
    //    attributes on each dimension side
    let mut fact_attrs: Vec<&str> = Vec::new();
    let mut dim_attrs: [Vec<&str>; 4] = Default::default();
    for s in &sources {
        match s {
            GroupSource::Fact(n) => fact_attrs.push(n),
            GroupSource::Dim { d, attr } => {
                fact_attrs.push(DIMENSIONS[*d].fk);
                dim_attrs[*d].push(attr);
            }
        }
    }
    for agg in &qplan.aggs {
        fact_attrs.extend(agg.attrs());
    }
    fact_attrs.sort_unstable();
    fact_attrs.dedup();
    let chunk_map = layout.chunks_for(fact_attrs.iter().copied())?;
    let mut dim_chunks = Vec::with_capacity(4);
    for (d, da) in dim_attrs.iter_mut().enumerate() {
        da.sort_unstable();
        da.dedup();
        dim_chunks.push(if da.is_empty() {
            None
        } else {
            Some(dims[d].layout().chunks_for(da.iter().copied())?)
        });
    }

    // 3. exact unique-line accounting: fact and dimension lines live
    //    on different modules, so each module gets its own set (page
    //    ids collide across modules)
    let cfg = module.config().clone();
    let mut fact_lines = LineSet::new();
    let mut dim_lines = [LineSet::new(), LineSet::new(), LineSet::new(), LineSet::new()];
    for (record, selected) in mask.iter().enumerate() {
        if !selected {
            continue;
        }
        let (pg, slot) = loaded.locate(record);
        for (&partition, chunks) in &chunk_map {
            let page_id = loaded.pages(partition)[pg];
            let s = module.page(page_id).record_slot(slot)?;
            for &chunk in chunks {
                fact_lines.touch_bit_range(
                    &cfg,
                    page_id.0,
                    s.row,
                    chunk * cfg.read_width_bits,
                    cfg.read_width_bits,
                );
            }
        }
        for (d, chunks_of_dim) in dim_chunks.iter().enumerate() {
            let Some(dmap) = chunks_of_dim else { continue };
            let fk = read_attr_value(module, layout, loaded, record, DIMENSIONS[d].fk)?;
            let dim_row = (fk - DIMENSIONS[d].key_base) as usize;
            let dloaded = dims[d].loaded();
            let dmodule = dims[d].module();
            let dcfg = dmodule.config();
            let (dpg, dslot) = dloaded.locate(dim_row);
            for (&partition, chunks) in dmap {
                let page_id = dloaded.pages(partition)[dpg];
                let s = dmodule.page(page_id).record_slot(dslot)?;
                for &chunk in chunks {
                    dim_lines[d].touch_bit_range(
                        dcfg,
                        page_id.0,
                        s.row,
                        chunk * dcfg.read_width_bits,
                        dcfg.read_width_bits,
                    );
                }
            }
        }
    }
    let total_lines = fact_lines.len() + dim_lines.iter().map(LineSet::len).sum::<u64>();
    log.push(module.host_read_scattered_phase(total_lines));

    // 4. hash aggregation: dimension keys resolved through the dense
    //    positional probe, every SELECT item folded in one pass
    let mut out: Vec<GroupedResult> = vec![GroupedResult::new(); qplan.aggs.len()];
    let mut folded = 0u64;
    for (record, selected) in mask.iter().enumerate() {
        if !selected {
            continue;
        }
        folded += 1;
        let mut key = Vec::with_capacity(sources.len());
        for s in &sources {
            key.push(match s {
                GroupSource::Fact(n) => read_attr_value(module, layout, loaded, record, n)?,
                GroupSource::Dim { d, attr } => {
                    let fk = read_attr_value(module, layout, loaded, record, DIMENSIONS[*d].fk)?;
                    let dim_row = (fk - DIMENSIONS[*d].key_base) as usize;
                    read_attr_value(
                        dims[*d].module(),
                        dims[*d].layout(),
                        dims[*d].loaded(),
                        dim_row,
                        attr,
                    )?
                }
            });
        }
        for (agg, grouped) in qplan.aggs.iter().zip(out.iter_mut()) {
            let v = match &agg.expr {
                None => 1,
                Some(expr) => eval_expr(module, layout, loaded, record, expr)?,
            };
            grouped
                .entry(key.clone())
                .and_modify(|acc| *acc = agg.func.merge(*acc, v))
                .or_insert(v);
        }
    }
    let per_record = cfg.host.host_agg_ns_per_record / cfg.host.threads as f64;
    log.push(Phase::host_compute(folded as f64 * per_record));
    Ok(out)
}

impl std::fmt::Debug for StarCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarCluster")
            .field("shards", &self.shard_count)
            .field("active", &self.shards.len())
            .field("partitioner", &self.partitioner.label())
            .field("mode", &self.mode)
            .field("records", &self.records)
            .field("pruning", &self.pruning)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::ssb::{queries, SsbParams};
    use bbpim_db::stats;

    fn db() -> SsbDb {
        SsbDb::generate(&SsbParams::tiny_for_tests())
    }

    fn cluster(db: &SsbDb, shards: usize) -> StarCluster {
        StarCluster::new(
            SimConfig::small_for_tests(),
            db,
            EngineMode::OneXb,
            shards,
            Partitioner::RoundRobin,
        )
        .unwrap()
    }

    /// The oracle runs on the pre-joined relation; attribute names are
    /// globally unique, so the same query text answers both models.
    fn oracle(db: &SsbDb, q: &Query) -> bbpim_db::stats::MultiGrouped {
        stats::run_oracle(q, &db.prejoin()).unwrap()
    }

    #[test]
    fn q1_matches_prejoined_oracle() {
        let db = db();
        let mut c = cluster(&db, 2);
        let q = queries::standard_query("Q1.1").unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, oracle(&db, &q));
        assert!(out.report.selected > 0);
        assert!(out.report.time_ns > 0.0);
    }

    #[test]
    fn grouped_query_with_dimension_keys_matches_oracle() {
        let db = db();
        let mut c = cluster(&db, 2);
        // Q2.1 groups by d_year, p_brand1 — both dimension attributes
        let q = queries::standard_query("Q2.1").unwrap();
        let out = c.run(&q).unwrap();
        assert_eq!(out.groups, oracle(&db, &q));
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let db = db();
        let mut c = cluster(&db, 2);
        let q = queries::standard_query("Q1.2").unwrap();
        let a = c.run(&q).unwrap();
        let b = c.run(&q).unwrap();
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.report.time_ns, b.report.time_ns, "prelude must recharge per run");
    }

    #[test]
    fn explain_reports_join_transfers_and_hull_bounds() {
        let db = db();
        let c = cluster(&db, 2);
        let q = queries::standard_query("Q1.1").unwrap(); // d_year = 1993
        let ex = c.explain(&q).unwrap();
        assert_eq!(ex.join_transfers.len(), 1);
        let t = &ex.join_transfers[0];
        assert_eq!(t.dimension, "date");
        assert_eq!(t.keys_selected, 365);
        assert_eq!(t.key_space, 2556);
        assert!(t.wire_bytes < t.raw_bytes, "one-year run must compress");
        assert_eq!(t.broadcast_shards, 2);
        // the join hull appears as a bound on the FK attribute
        assert!(ex.filter_bounds.iter().any(|(a, _)| a == "lo_orderdate"));
    }

    #[test]
    fn empty_dimension_selection_prunes_everything() {
        let db = db();
        let mut c = cluster(&db, 2);
        let mut q = queries::standard_query("Q1.1").unwrap();
        q.filter = Pred::all(vec![Atom::Eq {
            attr: "d_year".into(),
            value: bbpim_db::plan::Const::from(2050u64),
        }]);
        assert!(c.plan_shards(&q.filter).unwrap().iter().all(|d| !d));
        let out = c.run(&q).unwrap();
        assert_eq!(out.report.selected, 0);
        assert!(out.groups.is_empty());
    }

    #[test]
    fn footprints_stay_below_a_third_of_prejoin() {
        let db = db();
        let c = cluster(&db, 2);
        let fps = c.footprints();
        assert_eq!(fps.len(), 5);
        assert_eq!(fps[0].table, "lineorder");
        assert_eq!(fps[0].records, db.lineorder.len());
        assert!(c.total_data_bytes() > 0);
    }

    #[test]
    fn dimension_update_invalidates_plans_and_changes_answers() {
        let db = db();
        let mut c = cluster(&db, 2);
        let q = queries::standard_query("Q1.1").unwrap();
        let before = c.run(&q).unwrap();
        // move 1994 into 1993: Q1.1's d_year = 1993 filter now selects
        // twice the days
        let m = Mutation::update()
            .filter(bbpim_db::builder::col("d_year").eq(1994u64))
            .set("d_year", 1993u64)
            .build_unchecked();
        let rep = c.mutate(&m).unwrap();
        assert_eq!(rep.records_updated, 365);
        let after = c.run(&q).unwrap();
        assert!(after.report.selected > before.report.selected);
        // oracle agreement on the updated data
        let mut wide = db.prejoin();
        let widx = wide.schema().index_of("d_year").unwrap();
        for row in 0..wide.len() {
            if wide.value(row, widx) == 1994 {
                wide.set_value(row, widx, 1993).unwrap();
            }
        }
        assert_eq!(after.groups, stats::run_oracle(&q, &wide).unwrap());
    }

    #[test]
    fn streamed_star_queries_match_direct_runs() {
        use bbpim_sched::{run_stream, SchedConfig, Workload};
        let db = db();
        let queries: Vec<Query> = ["Q1.1", "Q1.2", "Q1.3"]
            .iter()
            .map(|id| queries::standard_query(id).unwrap())
            .collect();
        let workload = Workload::poisson(queries.clone(), 6, 50_000.0, 7);
        let mut c = cluster(&db, 4);
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.completions.len(), 6);
        assert!(out.makespan_ns > 0.0);
        let mut direct = cluster(&db, 4);
        for (arrival, exec) in workload.arrivals().iter().zip(&out.executions) {
            let want = direct.run(&queries[arrival.query]).unwrap();
            assert_eq!(exec.groups, want.groups);
        }
    }

    #[test]
    fn cross_table_update_rejected() {
        let db = db();
        let mut c = cluster(&db, 1);
        let m = Mutation::update()
            .filter(bbpim_db::builder::col("d_year").eq(1993u64))
            .set("lo_discount", 0u64)
            .build_unchecked();
        assert!(matches!(c.mutate(&m), Err(ClusterError::InvalidCluster(_))));
    }
}
