//! Timestamped query workloads.
//!
//! A [`Workload`] is a query set plus a sequence of [`Arrival`]s —
//! *which* query arrives *when*. [`Workload::poisson`] draws a seeded
//! open-loop arrival process (exponential interarrival times, queries
//! picked uniformly), the standard model for "many independent users";
//! [`Workload::burst`] drops everything at time zero (a closed batch,
//! useful for comparing against [`bbpim_cluster::ClusterEngine::run_batch`]);
//! [`Workload::new`] accepts hand-written traces. Everything is a pure
//! function of its inputs, so a seed fully determines the trace.

use bbpim_db::plan::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SchedError;

/// One timestamped query arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Simulated arrival time, nanoseconds.
    pub at_ns: f64,
    /// Index into the workload's query set.
    pub query: usize,
}

/// A query set plus its arrival trace (sorted by time).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    queries: Vec<Query>,
    arrivals: Vec<Arrival>,
}

impl Workload {
    /// A workload from an explicit trace.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidWorkload`] when an arrival references a
    /// query outside the set, times are negative or non-finite, or the
    /// trace is not sorted by arrival time.
    pub fn new(queries: Vec<Query>, arrivals: Vec<Arrival>) -> Result<Workload, SchedError> {
        for (i, a) in arrivals.iter().enumerate() {
            if a.query >= queries.len() {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrival {i} references query {} of {}",
                    a.query,
                    queries.len()
                )));
            }
            if !a.at_ns.is_finite() || a.at_ns < 0.0 {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrival {i} at invalid time {}",
                    a.at_ns
                )));
            }
            if i > 0 && arrivals[i - 1].at_ns > a.at_ns {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrivals must be sorted by time (index {i})"
                )));
            }
        }
        Ok(Workload { queries, arrivals })
    }

    /// A seeded open-loop arrival process: `n` arrivals with
    /// exponentially distributed interarrival times (mean
    /// `mean_interarrival_ns`) over queries picked uniformly from
    /// `queries`. The trace is a pure function of `(queries.len(), n,
    /// mean_interarrival_ns, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty while `n > 0`, or if the mean is
    /// negative or non-finite.
    pub fn poisson(
        queries: Vec<Query>,
        n: usize,
        mean_interarrival_ns: f64,
        seed: u64,
    ) -> Workload {
        assert!(
            mean_interarrival_ns.is_finite() && mean_interarrival_ns >= 0.0,
            "mean interarrival must be finite and non-negative"
        );
        assert!(!queries.is_empty() || n == 0, "arrivals need a non-empty query set");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let arrivals = (0..n)
            .map(|_| {
                // Inverse-CDF exponential draw; u ∈ [0, 1) keeps ln(1-u) finite.
                let u: f64 = rng.gen();
                t += -mean_interarrival_ns * (1.0 - u).ln();
                Arrival { at_ns: t, query: rng.gen_range(0..queries.len()) }
            })
            .collect();
        Workload { queries, arrivals }
    }

    /// A closed batch: every query of the set arrives once, in order,
    /// at time zero. Streaming this workload is directly comparable to
    /// [`bbpim_cluster::ClusterEngine::run_batch`] over the same set.
    pub fn burst(queries: Vec<Query>) -> Workload {
        let arrivals = (0..queries.len()).map(|query| Arrival { at_ns: 0.0, query }).collect();
        Workload { queries, arrivals }
    }

    /// The query set.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The arrival trace, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The arrived queries as an owned list in arrival order — the
    /// exact argument to hand `run_batch` for an apples-to-apples
    /// result-equivalence check.
    pub fn arrived_queries(&self) -> Vec<Query> {
        self.arrivals.iter().map(|a| self.queries[a.query].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::plan::{AggExpr, AggFunc};

    fn q(id: &str) -> Query {
        Query::single(id, vec![], vec![], AggFunc::Sum, AggExpr::Attr("x".into()))
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 7);
        let b = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.arrivals().iter().all(|x| x.query < 2 && x.at_ns > 0.0));
        // a different seed yields a different trace
        let c = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_interarrival_is_plausible() {
        let w = Workload::poisson(vec![q("a")], 2000, 1000.0, 42);
        let last = w.arrivals().last().unwrap().at_ns;
        let mean = last / 2000.0;
        assert!((500.0..2000.0).contains(&mean), "mean interarrival {mean} off by >2x");
    }

    #[test]
    fn burst_arrives_all_at_zero() {
        let w = Workload::burst(vec![q("a"), q("b"), q("c")]);
        assert_eq!(w.len(), 3);
        assert!(w.arrivals().iter().all(|a| a.at_ns == 0.0));
        assert_eq!(
            w.arrived_queries().iter().map(|x| x.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn new_validates_the_trace() {
        let qs = vec![q("a")];
        assert!(Workload::new(qs.clone(), vec![Arrival { at_ns: 0.0, query: 1 }]).is_err());
        assert!(Workload::new(qs.clone(), vec![Arrival { at_ns: -1.0, query: 0 }]).is_err());
        assert!(Workload::new(
            qs.clone(),
            vec![Arrival { at_ns: 5.0, query: 0 }, Arrival { at_ns: 1.0, query: 0 }]
        )
        .is_err());
        let ok = Workload::new(qs, vec![Arrival { at_ns: 1.0, query: 0 }]).unwrap();
        assert!(!ok.is_empty());
    }
}
