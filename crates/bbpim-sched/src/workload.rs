//! Timestamped query + mutation workloads.
//!
//! A [`Workload`] is a query set plus a sequence of [`Arrival`]s —
//! *which* query arrives *when* — and, for HTAP streams, a mutation
//! set plus a sequence of [`MutationArrival`]s interleaved on the same
//! clock. [`Workload::poisson`] draws a seeded open-loop arrival
//! process (exponential interarrival times, queries picked uniformly),
//! the standard model for "many independent users";
//! [`Workload::poisson_htap`] draws **one** seeded process and flips a
//! seeded coin per arrival to make it a query or a mutation — the
//! mixed-stream model the ingest scheduler consumes;
//! [`Workload::burst`] drops everything at time zero (a closed batch,
//! useful for comparing against [`bbpim_cluster::ClusterEngine::run_batch`]);
//! [`Workload::new`] / [`Workload::with_mutations`] accept hand-written
//! traces. Everything is a pure function of its inputs, so a seed fully
//! determines the trace.

use bbpim_core::mutation::Mutation;
use bbpim_db::plan::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SchedError;

/// One timestamped query arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Simulated arrival time, nanoseconds.
    pub at_ns: f64,
    /// Index into the workload's query set.
    pub query: usize,
}

/// One timestamped mutation arrival (streaming ingest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationArrival {
    /// Simulated arrival time, nanoseconds.
    pub at_ns: f64,
    /// Index into the workload's mutation set.
    pub mutation: usize,
}

/// A query set plus its arrival trace (sorted by time), optionally
/// interleaved with a mutation set and its own sorted arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    queries: Vec<Query>,
    arrivals: Vec<Arrival>,
    mutations: Vec<Mutation>,
    mutation_arrivals: Vec<MutationArrival>,
}

impl Workload {
    /// A pure-query workload from an explicit trace.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidWorkload`] when an arrival references a
    /// query outside the set, times are negative or non-finite, or the
    /// trace is not sorted by arrival time.
    pub fn new(queries: Vec<Query>, arrivals: Vec<Arrival>) -> Result<Workload, SchedError> {
        Workload::with_mutations(queries, arrivals, Vec::new(), Vec::new())
    }

    /// A mixed query/mutation workload from explicit traces. The two
    /// traces share one simulated clock; each must be independently
    /// sorted by time.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidWorkload`] for out-of-range indices,
    /// invalid times, or an unsorted trace (either one).
    pub fn with_mutations(
        queries: Vec<Query>,
        arrivals: Vec<Arrival>,
        mutations: Vec<Mutation>,
        mutation_arrivals: Vec<MutationArrival>,
    ) -> Result<Workload, SchedError> {
        for (i, a) in arrivals.iter().enumerate() {
            if a.query >= queries.len() {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrival {i} references query {} of {}",
                    a.query,
                    queries.len()
                )));
            }
            if !a.at_ns.is_finite() || a.at_ns < 0.0 {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrival {i} at invalid time {}",
                    a.at_ns
                )));
            }
            if i > 0 && arrivals[i - 1].at_ns > a.at_ns {
                return Err(SchedError::InvalidWorkload(format!(
                    "arrivals must be sorted by time (index {i})"
                )));
            }
        }
        for (i, a) in mutation_arrivals.iter().enumerate() {
            if a.mutation >= mutations.len() {
                return Err(SchedError::InvalidWorkload(format!(
                    "mutation arrival {i} references mutation {} of {}",
                    a.mutation,
                    mutations.len()
                )));
            }
            if !a.at_ns.is_finite() || a.at_ns < 0.0 {
                return Err(SchedError::InvalidWorkload(format!(
                    "mutation arrival {i} at invalid time {}",
                    a.at_ns
                )));
            }
            if i > 0 && mutation_arrivals[i - 1].at_ns > a.at_ns {
                return Err(SchedError::InvalidWorkload(format!(
                    "mutation arrivals must be sorted by time (index {i})"
                )));
            }
        }
        Ok(Workload { queries, arrivals, mutations, mutation_arrivals })
    }

    /// A seeded open-loop arrival process: `n` arrivals with
    /// exponentially distributed interarrival times (mean
    /// `mean_interarrival_ns`) over queries picked uniformly from
    /// `queries`. The trace is a pure function of `(queries.len(), n,
    /// mean_interarrival_ns, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty while `n > 0`, or if the mean is
    /// negative or non-finite.
    pub fn poisson(
        queries: Vec<Query>,
        n: usize,
        mean_interarrival_ns: f64,
        seed: u64,
    ) -> Workload {
        assert!(
            mean_interarrival_ns.is_finite() && mean_interarrival_ns >= 0.0,
            "mean interarrival must be finite and non-negative"
        );
        assert!(!queries.is_empty() || n == 0, "arrivals need a non-empty query set");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let arrivals = (0..n)
            .map(|_| {
                // Inverse-CDF exponential draw; u ∈ [0, 1) keeps ln(1-u) finite.
                let u: f64 = rng.gen();
                t += -mean_interarrival_ns * (1.0 - u).ln();
                Arrival { at_ns: t, query: rng.gen_range(0..queries.len()) }
            })
            .collect();
        Workload { queries, arrivals, mutations: Vec::new(), mutation_arrivals: Vec::new() }
    }

    /// A seeded open-loop **HTAP** arrival process: one exponential
    /// clock (mean `mean_interarrival_ns`) drives `n` arrivals, and
    /// each arrival is a mutation with probability `mutation_frac`
    /// (picked uniformly from `mutations`), otherwise a query (picked
    /// uniformly from `queries`). Because queries and mutations share
    /// one clock *and one RNG stream*, the full interleaving — times,
    /// kinds, and picks — is a pure function of
    /// `(queries.len(), mutations.len(), n, mutation_frac,
    /// mean_interarrival_ns, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when the mean is negative/non-finite, `mutation_frac` is
    /// outside `[0, 1]`, or either set is empty while its side of the
    /// coin can come up (`queries` empty with `mutation_frac < 1`,
    /// `mutations` empty with `mutation_frac > 0`) and `n > 0`.
    pub fn poisson_htap(
        queries: Vec<Query>,
        mutations: Vec<Mutation>,
        n: usize,
        mutation_frac: f64,
        mean_interarrival_ns: f64,
        seed: u64,
    ) -> Workload {
        assert!(
            mean_interarrival_ns.is_finite() && mean_interarrival_ns >= 0.0,
            "mean interarrival must be finite and non-negative"
        );
        assert!((0.0..=1.0).contains(&mutation_frac), "mutation_frac must be in [0, 1]");
        if n > 0 {
            assert!(!queries.is_empty() || mutation_frac >= 1.0, "queries may arrive: need some");
            assert!(
                !mutations.is_empty() || mutation_frac <= 0.0,
                "mutations may arrive: need some"
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let mut arrivals = Vec::new();
        let mut mutation_arrivals = Vec::new();
        for _ in 0..n {
            let u: f64 = rng.gen();
            t += -mean_interarrival_ns * (1.0 - u).ln();
            if rng.gen::<f64>() < mutation_frac {
                mutation_arrivals.push(MutationArrival {
                    at_ns: t,
                    mutation: rng.gen_range(0..mutations.len()),
                });
            } else {
                arrivals.push(Arrival { at_ns: t, query: rng.gen_range(0..queries.len()) });
            }
        }
        Workload { queries, arrivals, mutations, mutation_arrivals }
    }

    /// A closed batch: every query of the set arrives once, in order,
    /// at time zero. Streaming this workload is directly comparable to
    /// [`bbpim_cluster::ClusterEngine::run_batch`] over the same set.
    pub fn burst(queries: Vec<Query>) -> Workload {
        let arrivals = (0..queries.len()).map(|query| Arrival { at_ns: 0.0, query }).collect();
        Workload { queries, arrivals, mutations: Vec::new(), mutation_arrivals: Vec::new() }
    }

    /// The query set.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The arrival trace, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// The mutation set (empty for pure-query workloads).
    pub fn mutations(&self) -> &[Mutation] {
        &self.mutations
    }

    /// The mutation arrival trace, sorted by time.
    pub fn mutation_arrivals(&self) -> &[MutationArrival] {
        &self.mutation_arrivals
    }

    /// Does the workload carry streaming ingest?
    pub fn has_mutations(&self) -> bool {
        !self.mutation_arrivals.is_empty()
    }

    /// Number of query arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Is the trace empty (no queries *and* no mutations)?
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.mutation_arrivals.is_empty()
    }

    /// The arrived queries as an owned list in arrival order — the
    /// exact argument to hand `run_batch` for an apples-to-apples
    /// result-equivalence check.
    pub fn arrived_queries(&self) -> Vec<Query> {
        self.arrivals.iter().map(|a| self.queries[a.query].clone()).collect()
    }

    /// The arrived mutations as an owned list in arrival order — what
    /// a prefix-replay oracle applies, one admission at a time.
    pub fn arrived_mutations(&self) -> Vec<Mutation> {
        self.mutation_arrivals.iter().map(|a| self.mutations[a.mutation].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{AggExpr, AggFunc};

    fn q(id: &str) -> Query {
        Query::single(id, vec![], vec![], AggFunc::Sum, AggExpr::Attr("x".into()))
    }

    fn m() -> Mutation {
        Mutation::update().filter(col("x").eq(1u64)).set("x", 2u64).build_unchecked()
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 7);
        let b = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.arrivals().iter().all(|x| x.query < 2 && x.at_ns > 0.0));
        assert!(!a.has_mutations());
        // a different seed yields a different trace
        let c = Workload::poisson(vec![q("a"), q("b")], 50, 1000.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_interarrival_is_plausible() {
        let w = Workload::poisson(vec![q("a")], 2000, 1000.0, 42);
        let last = w.arrivals().last().unwrap().at_ns;
        let mean = last / 2000.0;
        assert!((500.0..2000.0).contains(&mean), "mean interarrival {mean} off by >2x");
    }

    #[test]
    fn htap_interleaves_one_seeded_process() {
        let a = Workload::poisson_htap(vec![q("a"), q("b")], vec![m()], 200, 0.25, 1000.0, 9);
        let b = Workload::poisson_htap(vec![q("a"), q("b")], vec![m()], 200, 0.25, 1000.0, 9);
        assert_eq!(a, b, "same seed, same interleaving");
        assert_eq!(a.len() + a.mutation_arrivals().len(), 200);
        assert!(a.has_mutations());
        // the coin lands near its bias
        let frac = a.mutation_arrivals().len() as f64 / 200.0;
        assert!((0.1..0.45).contains(&frac), "mutation fraction {frac} implausible for 0.25");
        // both traces are independently sorted on the shared clock
        assert!(a.arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.mutation_arrivals().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // and genuinely interleaved: some mutation lands between queries
        let first_q = a.arrivals().first().unwrap().at_ns;
        let last_q = a.arrivals().last().unwrap().at_ns;
        assert!(a.mutation_arrivals().iter().any(|x| (first_q..last_q).contains(&x.at_ns)));
        let c = Workload::poisson_htap(vec![q("a"), q("b")], vec![m()], 200, 0.25, 1000.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn htap_zero_frac_is_pure_queries() {
        let w = Workload::poisson_htap(vec![q("a")], Vec::new(), 30, 0.0, 500.0, 3);
        assert_eq!(w.len(), 30);
        assert!(!w.has_mutations());
    }

    #[test]
    fn burst_arrives_all_at_zero() {
        let w = Workload::burst(vec![q("a"), q("b"), q("c")]);
        assert_eq!(w.len(), 3);
        assert!(w.arrivals().iter().all(|a| a.at_ns == 0.0));
        assert_eq!(
            w.arrived_queries().iter().map(|x| x.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn new_validates_the_trace() {
        let qs = vec![q("a")];
        assert!(Workload::new(qs.clone(), vec![Arrival { at_ns: 0.0, query: 1 }]).is_err());
        assert!(Workload::new(qs.clone(), vec![Arrival { at_ns: -1.0, query: 0 }]).is_err());
        assert!(Workload::new(
            qs.clone(),
            vec![Arrival { at_ns: 5.0, query: 0 }, Arrival { at_ns: 1.0, query: 0 }]
        )
        .is_err());
        let ok = Workload::new(qs, vec![Arrival { at_ns: 1.0, query: 0 }]).unwrap();
        assert!(!ok.is_empty());
    }

    #[test]
    fn with_mutations_validates_the_ingest_trace() {
        let qs = vec![q("a")];
        let ms = vec![m()];
        let bad_idx = Workload::with_mutations(
            qs.clone(),
            vec![],
            ms.clone(),
            vec![MutationArrival { at_ns: 0.0, mutation: 1 }],
        );
        assert!(bad_idx.is_err());
        let bad_time = Workload::with_mutations(
            qs.clone(),
            vec![],
            ms.clone(),
            vec![MutationArrival { at_ns: f64::NAN, mutation: 0 }],
        );
        assert!(bad_time.is_err());
        let unsorted = Workload::with_mutations(
            qs.clone(),
            vec![],
            ms.clone(),
            vec![
                MutationArrival { at_ns: 9.0, mutation: 0 },
                MutationArrival { at_ns: 1.0, mutation: 0 },
            ],
        );
        assert!(unsorted.is_err());
        let ok = Workload::with_mutations(
            qs,
            vec![],
            ms,
            vec![MutationArrival { at_ns: 2.0, mutation: 0 }],
        )
        .unwrap();
        assert!(!ok.is_empty(), "a mutation-only workload is not empty");
        assert_eq!(ok.arrived_mutations().len(), 1);
    }
}
