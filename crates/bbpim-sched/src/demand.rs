//! Service-demand compilation: from real per-shard executions to the
//! bus/local slice chains the discrete-event schedulers play out.
//!
//! [`run_stream`](crate::run_stream) resolved demands privately until
//! the serving layer (`bbpim-serve`) needed its own event loop —
//! closed-loop clients generate arrivals *from completions*, so the
//! loop cannot be a precomputed workload trace. The compilation step is
//! the shared contract: [`resolve_query_demand`] plans a query through
//! the zone-map planner, executes every candidate shard slice
//! ([`StreamEngine::run_on_shard`]), merges the partials exactly as
//! `run_batch` would, and compiles each shard execution's phase log
//! into a [`SliceChain`]. Whatever loop replays the chains — batch
//! stream or multi-tenant server — the merged answer is already fixed,
//! bit-identical to the batch oracle; only *when* the slices run is up
//! to the scheduler.

use bbpim_cluster::ClusterExecution;
use bbpim_core::mutation::MutationReport;
use bbpim_core::result::QueryExecution;
use bbpim_db::plan::Query;
use bbpim_sim::config::HostConfig;
use bbpim_sim::hostbus::phase_occupancy_ns;
use bbpim_sim::timeline::{PhaseKind, RunLog};

use crate::error::SchedError;
use crate::sched::{StreamEngine, ENDURANCE_YEARS};

/// One step of a shard chain: an optional host-channel slice followed
/// by an optional module-local slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slice {
    /// Shared-channel occupancy (serialises against everything in
    /// flight).
    pub bus_ns: f64,
    /// Module-local time (PIM programs, host compute, latency stalls):
    /// queues only on this shard's own server.
    pub local_ns: f64,
    /// The phase kind whose channel occupancy the bus part is (`None`
    /// for a bus-free slice) — purely descriptive, for trace labels.
    pub bus_kind: Option<PhaseKind>,
    /// Channel bytes the bus part moved (descriptor bytes for
    /// dispatch) — purely descriptive, for trace args.
    pub bus_bytes: u64,
}

/// A compiled shard chain: the slices the event loop plays out, plus —
/// only when tracing — each slice's local-part composition by phase
/// kind (`detail[i]` decomposes `slices[i].local_ns`), so module
/// tracks can show *which* PIM phases filled each local window.
#[derive(Clone, Debug, PartialEq)]
pub struct SliceChain {
    /// The alternating bus/local steps, in execution order.
    pub slices: Vec<Slice>,
    /// Per-slice local-part phase composition (empty when compiled
    /// without detail).
    pub detail: Vec<Vec<(PhaseKind, f64)>>,
}

/// The service demand of one query on one shard: its execution's phase
/// log compiled to an alternating bus/local slice chain.
#[derive(Clone, Debug)]
pub struct ShardDemand {
    /// The active-shard index this chain runs on.
    pub shard: usize,
    /// Worst-row cell writes of the shard execution (endurance input).
    pub cell_writes: u64,
    /// Required cell endurance (write cycles) to sustain this query
    /// back-to-back on this shard for [`ENDURANCE_YEARS`].
    pub required_endurance: f64,
    /// The compiled slice chain.
    pub slices: Vec<Slice>,
    /// Per-slice local-part phase composition (empty when not tracing).
    pub detail: Vec<Vec<(PhaseKind, f64)>>,
}

/// One query's resolved service demand across its candidate shards.
#[derive(Clone, Debug)]
pub struct QueryDemand {
    /// The query's identifier (trace/report labels).
    pub query_id: String,
    /// Per-candidate-shard chains (empty when the planner answered the
    /// query outright — nothing to dispatch).
    pub shards: Vec<ShardDemand>,
    /// Active shards the zone-map planner pruned.
    pub shards_pruned: usize,
    /// Host-side merge occupancy once every shard chain finishes.
    pub merge_ns: f64,
}

impl QueryDemand {
    /// Total busy time this query occupies across the host channel and
    /// every module: the work-conserving cost a fair-share accountant
    /// charges the owning tenant, independent of queueing.
    pub fn total_busy_ns(&self) -> f64 {
        let slices: f64 =
            self.shards.iter().flat_map(|sd| sd.slices.iter()).map(|s| s.bus_ns + s.local_ns).sum();
        slices + self.merge_ns
    }
}

/// Compile one shard execution's phase log into the slice chain the
/// discrete-event simulation plays out.
///
/// Under contention every phase contributes its channel occupancy
/// ([`phase_occupancy_ns`]) as a bus slice and the remainder as local
/// time, preserving phase order — a transfer in the middle of a two-xb
/// filter really does re-queue on the bus between two PIM programs.
/// Without contention the whole log collapses to the optimistic shape:
/// one bus slice for the per-page dispatch, everything else local.
pub fn compile_slices(
    exec: &QueryExecution,
    host: &HostConfig,
    contention: bool,
    want_detail: bool,
) -> SliceChain {
    compile_log_slices(&exec.report.phases, exec.report.time_ns, host, contention, want_detail)
}

/// [`compile_slices`] generalised over any phase log: the same
/// compilation working straight off a [`RunLog`] and its total time, so
/// mutation reports ([`MutationReport`]) compile to slice chains with
/// the identical bus/local decomposition queries get — their
/// byte-tagged write phases ride the same shared channel.
pub fn compile_log_slices(
    log: &RunLog,
    total_time_ns: f64,
    host: &HostConfig,
    contention: bool,
    want_detail: bool,
) -> SliceChain {
    let empty_slice = Slice { bus_ns: 0.0, local_ns: 0.0, bus_kind: None, bus_bytes: 0 };
    if !contention {
        let dispatch = log.time_in(PhaseKind::HostDispatch);
        let slice = Slice {
            bus_ns: dispatch,
            local_ns: total_time_ns - dispatch,
            bus_kind: (dispatch > 0.0).then_some(PhaseKind::HostDispatch),
            bus_bytes: log.host_bytes_in(PhaseKind::HostDispatch),
        };
        let detail = if want_detail {
            vec![log
                .phases()
                .iter()
                .filter(|p| p.kind != PhaseKind::HostDispatch && p.time_ns > 0.0)
                .map(|p| (p.kind, p.time_ns))
                .collect()]
        } else {
            Vec::new()
        };
        return SliceChain { slices: vec![slice], detail };
    }
    let mut slices: Vec<Slice> = vec![empty_slice];
    let mut detail: Vec<Vec<(PhaseKind, f64)>> = vec![Vec::new()];
    for phase in log.phases() {
        let bus = phase_occupancy_ns(host, phase);
        let local = phase.time_ns - bus;
        if bus > 0.0 {
            slices.push(Slice {
                bus_ns: bus,
                local_ns: local,
                bus_kind: Some(phase.kind),
                bus_bytes: phase.host_bytes,
            });
            detail.push(if want_detail && local > 0.0 {
                vec![(phase.kind, local)]
            } else {
                Vec::new()
            });
        } else {
            slices.last_mut().expect("seeded with one slice").local_ns += local;
            if want_detail && local > 0.0 {
                detail.last_mut().expect("seeded with one slice").push((phase.kind, local));
            }
        }
    }
    // Drop empty slices, keeping the detail rows in lockstep.
    let keep: Vec<bool> = slices.iter().map(|s| s.bus_ns > 0.0 || s.local_ns > 0.0).collect();
    let mut it = keep.iter();
    slices.retain(|_| *it.next().expect("lockstep"));
    let mut it = keep.iter();
    detail.retain(|_| *it.next().expect("lockstep"));
    if slices.is_empty() {
        slices.push(empty_slice);
        detail.push(Vec::new());
    }
    if !want_detail {
        detail = Vec::new();
    }
    SliceChain { slices, detail }
}

/// Resolve one query's full service demand against `cluster`: zone-map
/// plan, execute every candidate shard slice, merge the partials in
/// shard order, and compile each shard execution into its slice chain.
///
/// The returned [`ClusterExecution`] **is** the query's answer — it is
/// fixed here, before any scheduling happens, which is what makes every
/// downstream event loop answer-bit-identical to the batch oracle by
/// construction. Resolution is deterministic and read-only, so repeated
/// arrivals of the same query may share one resolution.
///
/// # Errors
///
/// Planner attribute-resolution failures or shard execution failures,
/// as [`SchedError::Cluster`].
pub fn resolve_query_demand<E: StreamEngine>(
    cluster: &mut E,
    query: &Query,
    want_detail: bool,
) -> Result<(QueryDemand, ClusterExecution), SchedError> {
    let contention = cluster.contention();
    let mask = cluster.plan_shards(&query.filter)?;
    let candidates: Vec<usize> =
        mask.iter().enumerate().filter(|(_, &d)| d).map(|(s, _)| s).collect();
    let mut shard_execs = Vec::with_capacity(candidates.len());
    for &s in &candidates {
        shard_execs.push((s, cluster.run_on_shard(s, query)?));
    }
    let refs: Vec<&QueryExecution> = shard_execs.iter().map(|(_, e)| e).collect();
    let shards_pruned = mask.len() - candidates.len();
    let merged = cluster.merge_executions(query, &refs, shards_pruned);
    let host_cfg = cluster.host_config();
    let shards = shard_execs
        .iter()
        .map(|(s, e)| {
            let host = host_cfg.as_ref().expect("candidate shards imply an active shard");
            let chain = compile_slices(e, host, contention, want_detail);
            ShardDemand {
                shard: *s,
                cell_writes: e.report.max_row_cell_writes,
                required_endurance: e.report.required_endurance(ENDURANCE_YEARS),
                slices: chain.slices,
                detail: chain.detail,
            }
        })
        .collect();
    let demand = QueryDemand {
        query_id: query.id.clone(),
        shards,
        shards_pruned,
        merge_ns: merged.report.merge_time_ns,
    };
    Ok((demand, merged))
}

/// One admitted mutation's compiled service demand across its ingest
/// lanes: the write-phase chains the event loop plays out on the shared
/// host channel and the per-lane module servers. Unlike queries there
/// is no merge — a mutation completes when its last lane chain does.
#[derive(Clone, Debug)]
pub struct MutationDemand {
    /// The mutation's label (trace/report lines).
    pub label: String,
    /// Per-lane chains (the [`ShardDemand::shard`] field holds the
    /// *ingest lane* index — fact-shard lanes share indices with query
    /// shard slices; auxiliary lanes, e.g. star dimension modules, sit
    /// above [`crate::StreamEngine::active_shards`]).
    pub lanes: Vec<ShardDemand>,
    /// Records the mutation rewrote (UPDATE), summed over lanes.
    pub records_updated: u64,
    /// Records the mutation appended (INSERT), summed over lanes.
    pub records_inserted: u64,
}

impl MutationDemand {
    /// Total busy time across the host channel and every lane module.
    pub fn total_busy_ns(&self) -> f64 {
        self.lanes.iter().flat_map(|ld| ld.slices.iter()).map(|s| s.bus_ns + s.local_ns).sum()
    }
}

/// Compile the per-lane reports an applied mutation produced
/// ([`crate::StreamEngine::apply_mutation`]) into a [`MutationDemand`]:
/// each lane's phase log becomes a bus/local slice chain exactly as
/// query shard executions do, so UPDATE mask writes and INSERT row
/// transfers queue on the shared channel alongside query traffic.
pub fn compile_mutation_demand(
    label: String,
    applied: &[(usize, MutationReport)],
    host: &HostConfig,
    contention: bool,
    want_detail: bool,
) -> MutationDemand {
    let lanes = applied
        .iter()
        .map(|(lane, rep)| {
            let chain = compile_log_slices(&rep.phases, rep.time_ns, host, contention, want_detail);
            ShardDemand {
                shard: *lane,
                cell_writes: rep.max_row_cell_writes,
                required_endurance: rep.required_endurance(ENDURANCE_YEARS),
                slices: chain.slices,
                detail: chain.detail,
            }
        })
        .collect();
    MutationDemand {
        label,
        lanes,
        records_updated: applied.iter().map(|(_, r)| r.records_updated).sum(),
        records_inserted: applied.iter().map(|(_, r)| r.records_inserted).sum(),
    }
}

#[cfg(test)]
mod slice_tests {
    use super::*;
    use bbpim_sim::timeline::{Phase, RunLog};

    fn phase(kind: PhaseKind, time_ns: f64, host_bytes: u64) -> Phase {
        Phase { kind, time_ns, energy_pj: 0.0, chip_power_w: 0.0, host_bytes }
    }

    fn exec_with(phases: Vec<Phase>) -> QueryExecution {
        let mut log = RunLog::new();
        for p in &phases {
            log.push(*p);
        }
        let host = HostConfig::default();
        let host_bus_ns = bbpim_sim::hostbus::log_occupancy_ns(&host, &log);
        QueryExecution {
            groups: Default::default(),
            partials: Vec::new(),
            report: bbpim_core::result::QueryReport {
                query_id: "t".into(),
                mode: bbpim_core::modes::EngineMode::OneXb,
                time_ns: log.total_time_ns(),
                energy_pj: 0.0,
                peak_chip_power_w: 0.0,
                max_row_cell_writes: 0,
                row_cells: 512,
                records: 0,
                pages: 0,
                pages_scanned: 0,
                selected: 0,
                selectivity: 0.0,
                total_subgroups: 0,
                subgroups_in_sample: 0,
                pim_agg_subgroups: 0,
                host_bus_ns,
                phases: log,
            },
        }
    }

    #[test]
    fn contention_compiles_per_phase_chains() {
        let host = HostConfig::default();
        let exec = exec_with(vec![
            Phase::host_dispatch(600.0),
            phase(PhaseKind::PimLogic, 3000.0, 0),
            phase(PhaseKind::HostRead, 500.0, 4096),
            phase(PhaseKind::HostWrite, 700.0, 4096),
            phase(PhaseKind::PimLogic, 1000.0, 0),
        ]);
        let slices = compile_slices(&exec, &host, true, false).slices;
        // dispatch opens the chain, then read and write each re-queue
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].bus_kind, Some(PhaseKind::HostDispatch));
        assert_eq!(slices[1].bus_kind, Some(PhaseKind::HostRead));
        assert_eq!(slices[1].bus_bytes, 4096);
        assert_eq!(slices[0].bus_ns, 600.0);
        assert_eq!(slices[0].local_ns, 3000.0);
        let read_bus = bbpim_sim::hostbus::transfer_ns(&host, 4096);
        assert!((slices[1].bus_ns - read_bus).abs() < 1e-9);
        assert!((slices[1].local_ns - (500.0 - read_bus)).abs() < 1e-9);
        assert!((slices[2].local_ns - (700.0 - slices[2].bus_ns) - 1000.0).abs() < 1e-9);
        // total time is preserved exactly
        let total: f64 = slices.iter().map(|s| s.bus_ns + s.local_ns).sum();
        assert!((total - exec.report.time_ns).abs() < 1e-9);
        // and the bus share matches the report's occupancy
        let bus: f64 = slices.iter().map(|s| s.bus_ns).sum();
        assert!((bus - exec.report.host_bus_ns).abs() < 1e-9);
    }

    #[test]
    fn no_contention_collapses_to_dispatch_plus_local() {
        let host = HostConfig::default();
        let exec = exec_with(vec![
            Phase::host_dispatch(600.0),
            phase(PhaseKind::HostRead, 500.0, 64 * 1024),
            phase(PhaseKind::PimLogic, 1000.0, 0),
        ]);
        let slices = compile_slices(&exec, &host, false, false).slices;
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].bus_ns, 600.0);
        assert!((slices[0].local_ns - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_still_yields_a_chain() {
        let host = HostConfig::default();
        let exec = exec_with(Vec::new());
        let slices = compile_slices(&exec, &host, true, false).slices;
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0], Slice { bus_ns: 0.0, local_ns: 0.0, bus_kind: None, bus_bytes: 0 });
    }

    #[test]
    fn detail_decomposes_each_local_window_exactly() {
        let host = HostConfig::default();
        let exec = exec_with(vec![
            Phase::host_dispatch(600.0),
            phase(PhaseKind::PimLogic, 3000.0, 0),
            phase(PhaseKind::PimAggCircuit, 200.0, 0),
            phase(PhaseKind::HostRead, 500.0, 4096),
            phase(PhaseKind::PimLogic, 1000.0, 0),
        ]);
        for contention in [true, false] {
            let chain = compile_slices(&exec, &host, contention, true);
            assert_eq!(chain.detail.len(), chain.slices.len());
            for (slice, d) in chain.slices.iter().zip(&chain.detail) {
                let sum: f64 = d.iter().map(|(_, t)| t).sum();
                assert!(
                    (sum - slice.local_ns).abs() < 1e-9,
                    "detail must decompose the local window: {sum} vs {}",
                    slice.local_ns
                );
            }
            // detail never changes the slice boundaries
            let bare = compile_slices(&exec, &host, contention, false);
            assert_eq!(bare.slices, chain.slices);
        }
    }

    #[test]
    fn total_busy_time_sums_chains_and_merge() {
        let d = QueryDemand {
            query_id: "t".into(),
            shards: vec![
                ShardDemand {
                    shard: 0,
                    cell_writes: 0,
                    required_endurance: 0.0,
                    slices: vec![
                        Slice { bus_ns: 10.0, local_ns: 90.0, bus_kind: None, bus_bytes: 0 },
                        Slice { bus_ns: 5.0, local_ns: 45.0, bus_kind: None, bus_bytes: 0 },
                    ],
                    detail: Vec::new(),
                },
                ShardDemand {
                    shard: 2,
                    cell_writes: 0,
                    required_endurance: 0.0,
                    slices: vec![Slice {
                        bus_ns: 10.0,
                        local_ns: 40.0,
                        bus_kind: None,
                        bus_bytes: 0,
                    }],
                    detail: Vec::new(),
                },
            ],
            shards_pruned: 1,
            merge_ns: 25.0,
        };
        assert_eq!(d.total_busy_ns(), 225.0);
    }
}
