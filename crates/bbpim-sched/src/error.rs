//! Error type for the streaming scheduler.

use std::error::Error;
use std::fmt;

use bbpim_cluster::ClusterError;

/// Errors produced by the streaming scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The cluster failed while resolving a query's service demand.
    Cluster(ClusterError),
    /// The workload is malformed (unsorted arrivals, out-of-range query
    /// index, negative time…).
    InvalidWorkload(String),
    /// The scheduler configuration is unusable (zero in-flight bound…).
    InvalidConfig(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Cluster(e) => write!(f, "cluster: {e}"),
            SchedError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SchedError::InvalidConfig(msg) => write!(f, "invalid scheduler config: {msg}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Cluster(e) => Some(e),
            SchedError::InvalidWorkload(_) | SchedError::InvalidConfig(_) => None,
        }
    }
}

impl From<ClusterError> for SchedError {
    fn from(e: ClusterError) -> Self {
        SchedError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_core::CoreError;

    #[test]
    fn wraps_cluster_errors() {
        let e: SchedError = ClusterError::Core(CoreError::NotCalibrated).into();
        assert!(e.to_string().contains("cluster"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<SchedError>();
    }
}
