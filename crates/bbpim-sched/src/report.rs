//! Latency-distribution accounting for streamed runs.

use crate::sched::QueryCompletion;

/// Nearest-rank percentile of an ascending-sorted slice (`p` in
/// percent). Returns 0 for an empty slice.
///
/// The rank is `⌈p·n / 100⌉`. Common percentiles are not
/// binary-representable (`0.55`, `99.9`), so the naive float form
/// lands an ulp above an exact boundary and `ceil` charges one rank
/// too many — p55 of 20 values indexed rank 12 instead of the
/// nearest-rank 11. The product is taken before the division and the
/// result snapped to the nearest integer when it is within relative
/// epsilon of one.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let exact = (p * sorted.len() as f64) / 100.0;
    let nearest = exact.round();
    let rank = if (exact - nearest).abs() <= 1e-9 * nearest.max(1.0) {
        nearest as usize
    } else {
        exact.ceil() as usize
    };
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The latency distribution of one streamed run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Completed queries.
    pub completed: usize,
    /// Requests dropped before completion (deadline shed); zero for
    /// plain streamed runs, which never drop.
    pub count_dropped: usize,
    /// Median end-to-end latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile latency.
    pub p95_ns: f64,
    /// 99th-percentile latency.
    pub p99_ns: f64,
    /// 99.9th-percentile latency (the serving tail).
    pub p999_ns: f64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Worst latency.
    pub max_ns: f64,
    /// Mean time waiting before any service (admission + bus queues).
    pub mean_wait_ns: f64,
    /// Mean time in service (first dispatch → merged answer).
    pub mean_service_ns: f64,
}

impl LatencySummary {
    /// Summarise a set of completions (any order).
    pub fn of(completions: &[QueryCompletion]) -> LatencySummary {
        LatencySummary::from_parts(
            completions.iter().map(QueryCompletion::latency_ns).collect(),
            &completions.iter().map(QueryCompletion::wait_ns).collect::<Vec<_>>(),
            &completions.iter().map(QueryCompletion::service_ns).collect::<Vec<_>>(),
            0,
        )
    }

    /// Summarise raw latency/wait/service samples (any order) plus a
    /// dropped count — the constructor serving layers with their own
    /// completion types share with [`LatencySummary::of`].
    pub fn from_parts(
        mut latencies: Vec<f64>,
        waits: &[f64],
        services: &[f64],
        dropped: usize,
    ) -> LatencySummary {
        let n = latencies.len();
        if n == 0 {
            return LatencySummary {
                completed: 0,
                count_dropped: dropped,
                p50_ns: 0.0,
                p95_ns: 0.0,
                p99_ns: 0.0,
                p999_ns: 0.0,
                mean_ns: 0.0,
                max_ns: 0.0,
                mean_wait_ns: 0.0,
                mean_service_ns: 0.0,
            };
        }
        latencies.sort_by(f64::total_cmp);
        LatencySummary {
            completed: n,
            count_dropped: dropped,
            p50_ns: percentile(&latencies, 50.0),
            p95_ns: percentile(&latencies, 95.0),
            p99_ns: percentile(&latencies, 99.0),
            p999_ns: percentile(&latencies, 99.9),
            mean_ns: latencies.iter().sum::<f64>() / n as f64,
            max_ns: *latencies.last().expect("non-empty"),
            mean_wait_ns: waits.iter().sum::<f64>() / n as f64,
            mean_service_ns: services.iter().sum::<f64>() / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(arrive: f64, first: f64, complete: f64) -> QueryCompletion {
        QueryCompletion {
            arrival: 0,
            query_id: "q".into(),
            arrive_ns: arrive,
            admit_ns: first,
            first_service_ns: first,
            complete_ns: complete,
            shards_dispatched: 1,
            shards_pruned: 0,
            epoch: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    /// Nearest-rank pin on exact boundaries: `⌈p·n/100⌉` with the
    /// product computed *before* the division. `0.55_f64` is slightly
    /// above 55/100, so the old `(p/100)·n` form ceiled p55 of twenty
    /// values to rank 12; the convention says rank 11.
    #[test]
    fn percentile_exact_boundaries_stay_nearest_rank() {
        let v: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 55.0), 11.0);
        assert_eq!(percentile(&v, 5.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 10.0);
        assert_eq!(percentile(&v, 95.0), 19.0);
        // p95 of 40: 0.95·40 = 38 exactly → rank 38
        let v40: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        assert_eq!(percentile(&v40, 95.0), 38.0);
        // p999 pins: rank ⌈0.999·n⌉
        let v1000: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(percentile(&v1000, 99.9), 999.0);
        let v2000: Vec<f64> = (1..=2000).map(|i| i as f64).collect();
        assert_eq!(percentile(&v2000, 99.9), 1998.0);
        let v100: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v100, 99.9), 100.0);
    }

    #[test]
    fn summary_decomposes_wait_and_service() {
        let cs = vec![completion(0.0, 10.0, 30.0), completion(5.0, 5.0, 25.0)];
        let s = LatencySummary::of(&cs);
        assert_eq!(s.completed, 2);
        assert_eq!(s.count_dropped, 0);
        assert_eq!(s.max_ns, 30.0);
        assert_eq!(s.mean_ns, 25.0); // (30 + 20) / 2
        assert_eq!(s.mean_wait_ns, 5.0); // (10 + 0) / 2
        assert_eq!(s.mean_service_ns, 20.0); // (20 + 20) / 2
        assert_eq!(s.p50_ns, 20.0);
        assert_eq!(s.p99_ns, 30.0);
        assert_eq!(s.p999_ns, 30.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencySummary::of(&[]);
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_ns, 0.0);
        assert_eq!(s.p999_ns, 0.0);
        assert_eq!(s.count_dropped, 0);
    }

    #[test]
    fn from_parts_carries_drops_even_when_nothing_completed() {
        let s = LatencySummary::from_parts(Vec::new(), &[], &[], 7);
        assert_eq!(s.completed, 0);
        assert_eq!(s.count_dropped, 7);
        let s = LatencySummary::from_parts(vec![4.0, 2.0], &[1.0, 1.0], &[3.0, 1.0], 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.count_dropped, 3);
        assert_eq!(s.p50_ns, 2.0);
        assert_eq!(s.max_ns, 4.0);
        assert_eq!(s.mean_wait_ns, 1.0);
        assert_eq!(s.mean_service_ns, 2.0);
    }

    /// Regression pin: percentiles must come from *sorted* latencies,
    /// not completion order. A streamed run with overtaking delivers
    /// completions out of latency order — here a scripted trace whose
    /// completion order is adversarially anti-sorted (worst latency
    /// completes first). Nearest-rank over the sorted 1..=100 ns
    /// latencies has known answers; an implementation indexing the
    /// completion-ordered list would report p50 = 51, p95 = 6,
    /// p99 = 2.
    #[test]
    fn percentiles_are_order_invariant_under_overtaking() {
        // Latency of completion i is (100 - i) ns: completion order is
        // strictly descending latency, the extreme of out-of-order.
        let cs: Vec<QueryCompletion> = (0..100)
            .map(|i| {
                let latency = (100 - i) as f64;
                let mut c = completion(0.0, 0.0, latency);
                c.arrival = i;
                c
            })
            .collect();
        let s = LatencySummary::of(&cs);
        assert_eq!(s.p50_ns, 50.0);
        assert_eq!(s.p95_ns, 95.0);
        assert_eq!(s.p99_ns, 99.0);
        assert_eq!(s.p999_ns, 100.0);
        assert_eq!(s.max_ns, 100.0);
        // and any permutation of the same completions agrees exactly
        let mut shuffled = cs.clone();
        shuffled.reverse();
        shuffled.swap(3, 77);
        shuffled.swap(12, 50);
        assert_eq!(LatencySummary::of(&shuffled), s);
    }
}
