//! Latency-distribution accounting for streamed runs.

use crate::sched::QueryCompletion;

/// Nearest-rank percentile of an ascending-sorted slice (`p` in
/// percent). Returns 0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The latency distribution of one streamed run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Completed queries.
    pub completed: usize,
    /// Median end-to-end latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile latency.
    pub p95_ns: f64,
    /// 99th-percentile latency.
    pub p99_ns: f64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Worst latency.
    pub max_ns: f64,
    /// Mean time waiting before any service (admission + bus queues).
    pub mean_wait_ns: f64,
    /// Mean time in service (first dispatch → merged answer).
    pub mean_service_ns: f64,
}

impl LatencySummary {
    /// Summarise a set of completions (any order).
    pub fn of(completions: &[QueryCompletion]) -> LatencySummary {
        let n = completions.len();
        if n == 0 {
            return LatencySummary {
                completed: 0,
                p50_ns: 0.0,
                p95_ns: 0.0,
                p99_ns: 0.0,
                mean_ns: 0.0,
                max_ns: 0.0,
                mean_wait_ns: 0.0,
                mean_service_ns: 0.0,
            };
        }
        let mut latencies: Vec<f64> = completions.iter().map(QueryCompletion::latency_ns).collect();
        latencies.sort_by(f64::total_cmp);
        LatencySummary {
            completed: n,
            p50_ns: percentile(&latencies, 50.0),
            p95_ns: percentile(&latencies, 95.0),
            p99_ns: percentile(&latencies, 99.0),
            mean_ns: latencies.iter().sum::<f64>() / n as f64,
            max_ns: *latencies.last().expect("non-empty"),
            mean_wait_ns: completions.iter().map(QueryCompletion::wait_ns).sum::<f64>() / n as f64,
            mean_service_ns: completions.iter().map(QueryCompletion::service_ns).sum::<f64>()
                / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(arrive: f64, first: f64, complete: f64) -> QueryCompletion {
        QueryCompletion {
            arrival: 0,
            query_id: "q".into(),
            arrive_ns: arrive,
            admit_ns: first,
            first_service_ns: first,
            complete_ns: complete,
            shards_dispatched: 1,
            shards_pruned: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summary_decomposes_wait_and_service() {
        let cs = vec![completion(0.0, 10.0, 30.0), completion(5.0, 5.0, 25.0)];
        let s = LatencySummary::of(&cs);
        assert_eq!(s.completed, 2);
        assert_eq!(s.max_ns, 30.0);
        assert_eq!(s.mean_ns, 25.0); // (30 + 20) / 2
        assert_eq!(s.mean_wait_ns, 5.0); // (10 + 0) / 2
        assert_eq!(s.mean_service_ns, 20.0); // (20 + 20) / 2
        assert_eq!(s.p50_ns, 20.0);
        assert_eq!(s.p99_ns, 30.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencySummary::of(&[]);
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_ns, 0.0);
    }

    /// Regression pin: percentiles must come from *sorted* latencies,
    /// not completion order. A streamed run with overtaking delivers
    /// completions out of latency order — here a scripted trace whose
    /// completion order is adversarially anti-sorted (worst latency
    /// completes first). Nearest-rank over the sorted 1..=100 ns
    /// latencies has known answers; an implementation indexing the
    /// completion-ordered list would report p50 = 51, p95 = 6,
    /// p99 = 2.
    #[test]
    fn percentiles_are_order_invariant_under_overtaking() {
        // Latency of completion i is (100 - i) ns: completion order is
        // strictly descending latency, the extreme of out-of-order.
        let cs: Vec<QueryCompletion> = (0..100)
            .map(|i| {
                let latency = (100 - i) as f64;
                let mut c = completion(0.0, 0.0, latency);
                c.arrival = i;
                c
            })
            .collect();
        let s = LatencySummary::of(&cs);
        assert_eq!(s.p50_ns, 50.0);
        assert_eq!(s.p95_ns, 95.0);
        assert_eq!(s.p99_ns, 99.0);
        assert_eq!(s.max_ns, 100.0);
        // and any permutation of the same completions agrees exactly
        let mut shuffled = cs.clone();
        shuffled.reverse();
        shuffled.swap(3, 77);
        shuffled.swap(12, 50);
        assert_eq!(LatencySummary::of(&shuffled), s);
    }
}
