//! The deterministic discrete-event streaming scheduler.
//!
//! [`run_stream`] admits a [`Workload`]'s timestamped arrivals into a
//! [`ClusterEngine`] under admission control and plays the resulting
//! contention out on a discrete-event timeline:
//!
//! * **Admission control** — at most [`SchedConfig::max_in_flight`]
//!   queries hold execution state at once; excess arrivals wait in the
//!   admission queue (backpressure). When a slot frees, the next
//!   admitted query is picked by [`AdmissionPolicy`]: FIFO, or
//!   shortest-candidate-set-first (the zone-map planner's candidate
//!   shard count is a free size estimate, so heavily pruned — short —
//!   queries overtake broad ones).
//! * **Planning** — each admitted query is planned through the zone-map
//!   planner ([`ClusterEngine::plan_shards`]); pruned shards receive no
//!   work, and a query whose candidate set is empty is answered by the
//!   planner alone, completing at admission.
//! * **Per-shard queues** — each candidate shard receives the query's
//!   shard slice on its own FIFO queue; PIM phases of *different*
//!   queries on *different* shards overlap freely, which is where
//!   out-of-order completion comes from.
//! * **Shared host channel** — with the cluster's contention model on
//!   (the default, [`ClusterEngine::contention`]), *every* tagged host
//!   phase of every in-flight query rides one [`SharedBus`]: per-page
//!   dispatch, mask transfers, result-line reads, host-gb record
//!   fetches and update-mask writes, each for its channel occupancy
//!   ([`bbpim_sim::hostbus::phase_occupancy_ns`]). A shard execution
//!   becomes an alternating chain of bus slices and module-local
//!   slices, so a two-xb query's per-disjunct mask transfers queue
//!   behind other queries' result reads exactly as the off-chip
//!   interface would force them to. The host-side merge of each
//!   query's partials rides the same bus. With contention off, only
//!   dispatch and merge serialise (the pre-contention optimistic
//!   model) — useful for A/B latency studies.
//!
//! Every service demand is taken from real per-shard executions
//! ([`ClusterEngine::run_on_shard`]), and the merged answers are folded
//! with [`ClusterEngine::merge_executions`] in shard order — so the
//! streamed results are bit-identical to
//! [`ClusterEngine::run_batch`] over the same queries; only timing and
//! completion order differ. The event timeline is a pure function of
//! `(cluster, workload, config)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bbpim_cluster::{ClusterEngine, ClusterError, ClusterExecution};
use bbpim_core::result::QueryExecution;
use bbpim_db::plan::{Pred, Query};
use bbpim_sim::config::HostConfig;
use bbpim_sim::hostbus::SharedBus;
use bbpim_trace::{ArgValue, TraceRecorder, TrackId};

use crate::demand::{resolve_query_demand, QueryDemand};
use crate::error::SchedError;
use crate::report::LatencySummary;
use crate::workload::Workload;

/// The scatter/gather surface the streaming scheduler needs from a
/// sharded engine. [`ClusterEngine`] (pre-joined storage) implements it
/// here; the normalized star-join cluster implements it in its own
/// crate — the scheduler interleaves shard slices identically on both
/// storage models, so streamed answers stay bit-identical to batch runs
/// whichever one is underneath.
pub trait StreamEngine {
    /// Is the shared-host-channel contention model on?
    fn contention(&self) -> bool;

    /// The host-channel parameters (`None` only for an empty cluster,
    /// which can never produce candidate shards).
    fn host_config(&self) -> Option<HostConfig>;

    /// Fact shards actually holding records.
    fn active_shards(&self) -> usize;

    /// Zone-map shard admission: one flag per active shard.
    ///
    /// # Errors
    ///
    /// Attribute resolution failures.
    fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError>;

    /// Execute one query on one active shard (the scatter half).
    ///
    /// # Errors
    ///
    /// Unknown shard index or substrate failures.
    fn run_on_shard(&mut self, shard: usize, query: &Query)
        -> Result<QueryExecution, ClusterError>;

    /// Fold per-shard partials into a cluster answer (the gather half).
    fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution;
}

impl StreamEngine for ClusterEngine {
    fn contention(&self) -> bool {
        ClusterEngine::contention(self)
    }

    fn host_config(&self) -> Option<HostConfig> {
        self.shard_engine(0).map(|e| e.config().host.clone())
    }

    fn active_shards(&self) -> usize {
        ClusterEngine::active_shards(self)
    }

    fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError> {
        ClusterEngine::plan_shards(self, filter)
    }

    fn run_on_shard(
        &mut self,
        shard: usize,
        query: &Query,
    ) -> Result<QueryExecution, ClusterError> {
        ClusterEngine::run_on_shard(self, shard, query)
    }

    fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution {
        ClusterEngine::merge_executions(self, query, executions, shards_pruned)
    }
}

/// How the admission queue picks the next query when a slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Fewest candidate shards first (ties broken by arrival order).
    /// The planner's candidate set size is a zero-cost service-demand
    /// estimate: a query pruned down to one shard is almost surely
    /// shorter than one touching every shard.
    ShortestCandidateFirst,
}

impl AdmissionPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::ShortestCandidateFirst => "scsf",
        }
    }

    /// Both policies, for sweeps.
    pub fn all() -> [AdmissionPolicy; 2] {
        [AdmissionPolicy::Fifo, AdmissionPolicy::ShortestCandidateFirst]
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Bound on concurrently in-flight queries (admission control).
    pub max_in_flight: usize,
    /// Admission order under backpressure.
    pub policy: AdmissionPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { max_in_flight: 8, policy: AdmissionPolicy::Fifo }
    }
}

/// What happened at one point of the simulated timeline (determinism
/// tests compare full traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The query arrived (entered the admission queue).
    Arrive,
    /// The query was admitted (left the admission queue).
    Admit,
    /// The host bus finished the query's *first* bus slice for a shard
    /// (the per-page dispatch that opens every shard chain).
    Dispatched,
    /// A shard finished the query's entire slice chain.
    ShardDone,
    /// The query's partials merged; the query is complete.
    Complete,
}

/// One record of the simulated event timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: f64,
    /// What happened.
    pub kind: EventKind,
    /// Which arrival (index into the workload's trace).
    pub arrival: usize,
    /// The shard involved, for [`EventKind::Dispatched`] /
    /// [`EventKind::ShardDone`].
    pub shard: Option<usize>,
}

/// Latency accounting for one completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCompletion {
    /// Index into the workload's arrival trace.
    pub arrival: usize,
    /// Query identifier.
    pub query_id: String,
    /// When the query arrived.
    pub arrive_ns: f64,
    /// When admission control let it in.
    pub admit_ns: f64,
    /// When its first bus slice started on the host channel (equals
    /// `admit_ns` for planner-only answers).
    pub first_service_ns: f64,
    /// When its merged answer was ready.
    pub complete_ns: f64,
    /// Candidate shards dispatched.
    pub shards_dispatched: usize,
    /// Active shards pruned by the zone-map planner.
    pub shards_pruned: usize,
}

impl QueryCompletion {
    /// End-to-end sojourn time (arrival → merged answer).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Time spent waiting (admission queue + host-bus queue) before any
    /// service.
    pub fn wait_ns(&self) -> f64 {
        self.first_service_ns - self.arrive_ns
    }

    /// Time from first service to completion.
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.first_service_ns
    }
}

/// Everything one streamed run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The admission policy that ran.
    pub policy: AdmissionPolicy,
    /// Per-query latency records, in completion order (compare with
    /// arrival indices to observe out-of-order completion).
    pub completions: Vec<QueryCompletion>,
    /// Merged executions in arrival order — bit-identical to
    /// [`ClusterEngine::run_batch`] over
    /// [`Workload::arrived_queries`].
    pub executions: Vec<ClusterExecution>,
    /// The full event timeline (deterministic per input).
    pub timeline: Vec<TimelineEvent>,
    /// When the last query completed.
    pub makespan_ns: f64,
    /// Host-channel busy time: dispatch, every tagged transfer slice
    /// (under contention) and merges.
    pub host_busy_ns: f64,
    /// Per-active-shard module-local busy time.
    pub shard_busy_ns: Vec<f64>,
    /// Per-active-shard accumulated worst-row cell writes over every
    /// shard slice that ran there (the dormant endurance model's input,
    /// now surfaced per module: UPDATE-heavy streams wear modules
    /// unevenly).
    pub shard_cell_writes: Vec<u64>,
    /// Per-active-shard required cell endurance (write cycles) to
    /// sustain that module's worst query back-to-back for ten years —
    /// the paper's Fig. 9 metric, per module. Zero for modules whose
    /// queries perform no PIM writes.
    pub shard_required_endurance: Vec<f64>,
}

impl StreamOutcome {
    /// Latency distribution over all completions.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::of(&self.completions)
    }

    /// Completed queries per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_ns / 1e9)
        }
    }

    /// Fraction of the makespan the host channel was busy, saturated to
    /// `[0, 1]` (eager FIFO grants can stretch past the last
    /// completion, so the raw ratio could drift above 1).
    pub fn host_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        (self.host_busy_ns / self.makespan_ns).clamp(0.0, 1.0)
    }

    /// Raw host-channel demand ratio `offered_ns / makespan_ns`,
    /// **unclamped** — above 1.0 it measures how deeply the stream
    /// oversubscribes the channel, which the saturated
    /// [`StreamOutcome::host_utilisation`] deliberately hides (cf.
    /// [`SharedBus::demand`]).
    pub fn host_demand(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.host_busy_ns / self.makespan_ns
    }

    /// Mean per-shard PIM utilisation over the makespan.
    pub fn mean_shard_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 || self.shard_busy_ns.is_empty() {
            return 0.0;
        }
        let mean_busy = self.shard_busy_ns.iter().sum::<f64>() / self.shard_busy_ns.len() as f64;
        (mean_busy / self.makespan_ns).clamp(0.0, 1.0)
    }

    /// The first completion that finished while an earlier arrival was
    /// still pending — the concrete out-of-order evidence, if any.
    pub fn first_overtaker(&self) -> Option<&QueryCompletion> {
        let slots = self.completions.iter().map(|c| c.arrival + 1).max().unwrap_or(0);
        let mut completed = vec![false; slots];
        self.completions.iter().find(|c| {
            completed[c.arrival] = true;
            (0..c.arrival).any(|i| !completed[i])
        })
    }

    /// Queries that finished *after* a later arrival did — i.e. they
    /// were overtaken. Nonzero means out-of-order completion happened.
    pub fn overtaken(&self) -> usize {
        let mut max_seen = None::<usize>;
        let mut n = 0;
        for c in &self.completions {
            if max_seen.is_some_and(|m| m > c.arrival) {
                n += 1;
            }
            max_seen = Some(max_seen.map_or(c.arrival, |m| m.max(c.arrival)));
        }
        n
    }
}

/// Mutable per-arrival simulation state.
#[derive(Clone, Copy)]
struct Progress {
    admit_ns: f64,
    first_service_ns: f64,
    remaining: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// An arrival enters the admission queue.
    Arrive(usize),
    /// `(arrival, shard_pos, slice_idx)`: the slice's bus part ended.
    BusDone(usize, usize, usize),
    /// `(arrival, shard_pos, slice_idx)`: the slice's local part ended.
    LocalDone(usize, usize, usize),
    /// The query's host-side merge ended.
    MergeDone(usize),
}

/// Heap entry ordered by (time, insertion sequence) — the sequence
/// makes simultaneous events deterministic.
struct HeapEntry {
    t_ns: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns.total_cmp(&other.t_ns) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so `BinaryHeap` pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.t_ns.total_cmp(&self.t_ns).then(other.seq.cmp(&self.seq))
    }
}

/// Trace track ids for the scheduler's lanes (present only when the
/// recorder is enabled).
struct Tracks {
    sched: TrackId,
    host: TrackId,
    modules: Vec<TrackId>,
}

impl Tracks {
    fn new(trace: &mut TraceRecorder, active_shards: usize) -> Option<Tracks> {
        if !trace.is_enabled() {
            return None;
        }
        Some(Tracks {
            sched: trace.track("scheduler"),
            host: trace.track("host-bus"),
            modules: (0..active_shards).map(|s| trace.track(&format!("module-{s}"))).collect(),
        })
    }
}

/// The simulation state machine.
struct Sim<'a> {
    cfg: &'a SchedConfig,
    workload: &'a Workload,
    demands: Vec<QueryDemand>,
    events: BinaryHeap<HeapEntry>,
    seq: u64,
    host: SharedBus,
    shard_bus: Vec<SharedBus>,
    waiting: Vec<usize>,
    in_flight: usize,
    progress: Vec<Option<Progress>>,
    completions: Vec<QueryCompletion>,
    timeline: Vec<TimelineEvent>,
    shard_cell_writes: Vec<u64>,
    trace: &'a mut TraceRecorder,
    tracks: Option<Tracks>,
}

impl Sim<'_> {
    fn push_event(&mut self, t_ns: f64, ev: Ev) {
        self.events.push(HeapEntry { t_ns, seq: self.seq, ev });
        self.seq += 1;
    }

    fn record(&mut self, t_ns: f64, kind: EventKind, arrival: usize, shard: Option<usize>) {
        self.timeline.push(TimelineEvent { t_ns, kind, arrival, shard });
    }

    /// Standard event attributes: the arrival index and its query id.
    fn query_args(&self, ai: usize) -> Vec<(&'static str, ArgValue)> {
        vec![
            ("arrival", ArgValue::U64(ai as u64)),
            ("query", ArgValue::Str(self.demands[ai].query_id.clone())),
        ]
    }

    /// Sample the two scheduler counters (admission-queue depth and
    /// in-flight count) onto the scheduler track.
    fn trace_queue_counters(&mut self, t_ns: f64) {
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let depth = self.waiting.len() as f64;
            let in_flight = self.in_flight as f64;
            self.trace.counter(sched, "admission-queue", t_ns, depth);
            self.trace.counter(sched, "in-flight", t_ns, in_flight);
        }
    }

    /// Pick the next admission per policy; `waiting` keeps arrival
    /// order, so FIFO is the front and SCSF is the min candidate count
    /// with arrival order as tiebreak.
    fn pick_next(&self) -> usize {
        match self.cfg.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::ShortestCandidateFirst => self
                .waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, &ai)| (self.demands[ai].shards.len(), ai))
                .map(|(pos, _)| pos)
                .expect("pick_next on an empty queue"),
        }
    }

    /// Start one slice of a shard chain at `now_ns`: its bus part rides
    /// the shared channel first (free when zero-width), then its local
    /// part queues on the shard. Returns the bus grant start when the
    /// slice touched the bus.
    fn start_slice(&mut self, now_ns: f64, ai: usize, sp: usize, idx: usize) -> Option<f64> {
        let slice = self.demands[ai].shards[sp].slices[idx];
        if slice.bus_ns > 0.0 {
            let grant = self.host.acquire(now_ns, slice.bus_ns);
            self.push_event(grant.end_ns, Ev::BusDone(ai, sp, idx));
            if let Some(tracks) = &self.tracks {
                let (host, shard) = (tracks.host, self.demands[ai].shards[sp].shard);
                let name = slice.bus_kind.map_or("bus", |k| k.label());
                let mut args = self.query_args(ai);
                args.push(("shard", ArgValue::U64(shard as u64)));
                args.push(("wait_ns", ArgValue::F64(grant.start_ns - now_ns)));
                args.push(("bytes", ArgValue::U64(slice.bus_bytes)));
                self.trace.span(host, name, grant.start_ns, slice.bus_ns, args);
            }
            Some(grant.start_ns)
        } else {
            self.push_event(now_ns, Ev::BusDone(ai, sp, idx));
            None
        }
    }

    /// Admit from the queue while in-flight slots are free.
    fn try_admit(&mut self, now_ns: f64) {
        while self.in_flight < self.cfg.max_in_flight && !self.waiting.is_empty() {
            let ai = self.waiting.remove(self.pick_next());
            self.record(now_ns, EventKind::Admit, ai, None);
            if let Some(tracks) = &self.tracks {
                let sched = tracks.sched;
                let mut args = self.query_args(ai);
                let arrive = self.workload.arrivals()[ai].at_ns;
                args.push(("queued_ns", ArgValue::F64(now_ns - arrive)));
                self.trace.instant(sched, "admit", now_ns, args);
            }
            let (n_shards, merge_ns) = (self.demands[ai].shards.len(), self.demands[ai].merge_ns);
            if n_shards == 0 {
                // The planner answered the query: nothing to dispatch,
                // the (empty) merge is free, the slot never fills.
                debug_assert_eq!(merge_ns, 0.0, "empty merges cost nothing");
                self.complete(
                    now_ns,
                    ai,
                    Progress { admit_ns: now_ns, first_service_ns: now_ns, remaining: 0 },
                );
                self.trace_queue_counters(now_ns);
                continue;
            }
            self.in_flight += 1;
            // The host opens every candidate shard's chain; the first
            // slice of each (the per-page dispatch) serialises on the
            // bus against everything else in flight.
            let mut first_service_ns = f64::INFINITY;
            for sp in 0..n_shards {
                if let Some(start) = self.start_slice(now_ns, ai, sp, 0) {
                    first_service_ns = first_service_ns.min(start);
                }
            }
            if !first_service_ns.is_finite() {
                first_service_ns = now_ns;
            }
            self.progress[ai] =
                Some(Progress { admit_ns: now_ns, first_service_ns, remaining: n_shards });
            self.trace_queue_counters(now_ns);
        }
    }

    fn complete(&mut self, now_ns: f64, ai: usize, p: Progress) {
        self.record(now_ns, EventKind::Complete, ai, None);
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let mut args = self.query_args(ai);
            let arrive = self.workload.arrivals()[ai].at_ns;
            args.push(("latency_ns", ArgValue::F64(now_ns - arrive)));
            self.trace.instant(sched, "complete", now_ns, args);
        }
        let d = &self.demands[ai];
        self.completions.push(QueryCompletion {
            arrival: ai,
            query_id: d.query_id.clone(),
            arrive_ns: self.workload.arrivals()[ai].at_ns,
            admit_ns: p.admit_ns,
            first_service_ns: p.first_service_ns,
            complete_ns: now_ns,
            shards_dispatched: d.shards.len(),
            shards_pruned: d.shards_pruned,
        });
    }

    /// A shard chain finished its last slice.
    fn shard_done(&mut self, t: f64, ai: usize, sp: usize, shard: usize) {
        self.record(t, EventKind::ShardDone, ai, Some(shard));
        self.shard_cell_writes[shard] += self.demands[ai].shards[sp].cell_writes;
        let p = self.progress[ai].as_mut().expect("in-flight query has progress");
        p.remaining -= 1;
        if p.remaining == 0 {
            let merge_ns = self.demands[ai].merge_ns;
            let grant = self.host.acquire(t, merge_ns);
            self.push_event(grant.end_ns, Ev::MergeDone(ai));
            if merge_ns > 0.0 {
                if let Some(tracks) = &self.tracks {
                    let host = tracks.host;
                    let mut args = self.query_args(ai);
                    args.push(("wait_ns", ArgValue::F64(grant.start_ns - t)));
                    self.trace.span(host, "merge", grant.start_ns, merge_ns, args);
                }
            }
        }
    }

    /// Emit the module-track spans for one local window
    /// `[start_ns, start_ns + local_ns]`: the per-phase composition
    /// when the chain was compiled with detail, one opaque `local`
    /// span otherwise.
    fn trace_local(&mut self, ai: usize, sp: usize, idx: usize, start_ns: f64, local_ns: f64) {
        let Some(tracks) = &self.tracks else { return };
        let shard = self.demands[ai].shards[sp].shard;
        let module = tracks.modules[shard];
        let detail = self.demands[ai].shards[sp].detail.get(idx).cloned().unwrap_or_default();
        if detail.is_empty() {
            let args = self.query_args(ai);
            self.trace.span(module, "local", start_ns, local_ns, args);
            return;
        }
        let mut at = start_ns;
        for (kind, dt) in detail {
            let args = self.query_args(ai);
            self.trace.span(module, kind.label(), at, dt, args);
            at += dt;
        }
    }

    fn run(mut self, executions: Vec<ClusterExecution>) -> StreamOutcome {
        let policy = self.cfg.policy;
        while let Some(entry) = self.events.pop() {
            let t = entry.t_ns;
            match entry.ev {
                Ev::Arrive(ai) => {
                    self.record(t, EventKind::Arrive, ai, None);
                    if let Some(tracks) = &self.tracks {
                        let sched = tracks.sched;
                        let args = self.query_args(ai);
                        self.trace.instant(sched, "arrive", t, args);
                    }
                    self.waiting.push(ai);
                    self.trace_queue_counters(t);
                    self.try_admit(t);
                }
                Ev::BusDone(ai, sp, idx) => {
                    let (shard, slice) = {
                        let d = &self.demands[ai].shards[sp];
                        (d.shard, d.slices[idx])
                    };
                    if idx == 0 {
                        self.record(t, EventKind::Dispatched, ai, Some(shard));
                    }
                    if slice.local_ns > 0.0 {
                        let grant = self.shard_bus[shard].acquire(t, slice.local_ns);
                        self.push_event(grant.end_ns, Ev::LocalDone(ai, sp, idx));
                        self.trace_local(ai, sp, idx, grant.start_ns, slice.local_ns);
                    } else {
                        self.push_event(t, Ev::LocalDone(ai, sp, idx));
                    }
                }
                Ev::LocalDone(ai, sp, idx) => {
                    let (shard, len) = {
                        let d = &self.demands[ai].shards[sp];
                        (d.shard, d.slices.len())
                    };
                    if idx + 1 < len {
                        self.start_slice(t, ai, sp, idx + 1);
                    } else {
                        self.shard_done(t, ai, sp, shard);
                    }
                }
                Ev::MergeDone(ai) => {
                    let p = self.progress[ai].take().expect("merging query has progress");
                    self.complete(t, ai, p);
                    self.in_flight -= 1;
                    self.trace_queue_counters(t);
                    self.try_admit(t);
                }
            }
        }
        let makespan_ns = self.completions.iter().map(|c| c.complete_ns).fold(0.0, f64::max);
        StreamOutcome {
            policy,
            completions: self.completions,
            executions,
            timeline: self.timeline,
            makespan_ns,
            host_busy_ns: self.host.busy_ns(),
            shard_busy_ns: self.shard_bus.iter().map(SharedBus::busy_ns).collect(),
            shard_cell_writes: self.shard_cell_writes,
            shard_required_endurance: Vec::new(),
        }
    }
}

/// Stream `workload` through `cluster` — any [`StreamEngine`]: the
/// pre-joined [`ClusterEngine`] or the normalized star-join cluster —
/// under `cfg`.
///
/// Service demands come from real per-shard executions, so the merged
/// answers in [`StreamOutcome::executions`] are bit-identical to
/// [`ClusterEngine::run_batch`] over the same arrived queries; the
/// discrete-event timeline then decides *when* each query's slices run
/// under admission control, per-shard FIFO queues and the shared host
/// channel. With [`ClusterEngine::contention`] on (the default), every
/// tagged host phase — dispatch, mask transfers, result reads, host-gb
/// fetches — queues on the one bus; with it off only dispatch and
/// merge do.
///
/// # Errors
///
/// [`SchedError::InvalidConfig`] for a zero in-flight bound;
/// cluster/planner failures otherwise.
pub fn run_stream<E: StreamEngine>(
    cluster: &mut E,
    workload: &Workload,
    cfg: &SchedConfig,
) -> Result<StreamOutcome, SchedError> {
    let mut trace = TraceRecorder::disabled();
    run_stream_traced(cluster, workload, cfg, &mut trace)
}

/// [`run_stream`] with a [`TraceRecorder`]: when the recorder is
/// enabled, every scheduler admission/completion, every host-bus grant
/// (with its queueing wait and byte payload) and every module-local
/// phase window is recorded on named tracks — `scheduler`, `host-bus`,
/// `module-<k>` — on the simulated clock. The recorder **never**
/// changes the simulation: the event timeline, completions and merged
/// executions are identical with tracing on, off, or disabled (the
/// oracle-equivalence suites assert exactly this).
///
/// # Errors
///
/// Same as [`run_stream`].
pub fn run_stream_traced<E: StreamEngine>(
    cluster: &mut E,
    workload: &Workload,
    cfg: &SchedConfig,
    trace: &mut TraceRecorder,
) -> Result<StreamOutcome, SchedError> {
    if cfg.max_in_flight == 0 {
        return Err(SchedError::InvalidConfig("max_in_flight must be at least 1".into()));
    }
    let want_detail = trace.is_enabled();

    // Resolve every *distinct* query's service demand once by
    // executing its shard slices (deterministic and read-only, so
    // repeated arrivals of the same query share the computation) and
    // merging the partials exactly as `run`/`run_batch` would.
    let mut by_query: Vec<Option<(QueryDemand, ClusterExecution)>> = Vec::new();
    by_query.resize_with(workload.queries().len(), || None);
    let mut demands = Vec::with_capacity(workload.len());
    let mut executions = Vec::with_capacity(workload.len());
    let active_shards = cluster.active_shards();
    // Worst-query required endurance per module (Fig. 9 per shard):
    // max over distinct queries that execute there.
    let mut shard_endurance = vec![0.0f64; active_shards];
    for arrival in workload.arrivals() {
        if by_query[arrival.query].is_none() {
            let query = &workload.queries()[arrival.query];
            let (demand, merged) = resolve_query_demand(cluster, query, want_detail)?;
            for sd in &demand.shards {
                shard_endurance[sd.shard] = shard_endurance[sd.shard].max(sd.required_endurance);
            }
            by_query[arrival.query] = Some((demand, merged));
        }
        let (demand, merged) = by_query[arrival.query].as_ref().expect("resolved above");
        demands.push(demand.clone());
        executions.push(merged.clone());
    }

    let tracks = Tracks::new(trace, active_shards);
    let mut sim = Sim {
        cfg,
        workload,
        demands,
        events: BinaryHeap::new(),
        seq: 0,
        host: SharedBus::new(),
        shard_bus: vec![SharedBus::new(); active_shards],
        waiting: Vec::new(),
        in_flight: 0,
        progress: vec![None; workload.len()],
        completions: Vec::with_capacity(workload.len()),
        timeline: Vec::new(),
        shard_cell_writes: vec![0; active_shards],
        trace,
        tracks,
    };
    for (ai, arrival) in workload.arrivals().iter().enumerate() {
        sim.push_event(arrival.at_ns, Ev::Arrive(ai));
    }
    let mut out = sim.run(executions);
    out.shard_required_endurance = shard_endurance;
    Ok(out)
}

/// The horizon the per-module required-endurance figures assume (the
/// paper's Fig. 9 runs each query back-to-back for ten years).
pub const ENDURANCE_YEARS: f64 = 10.0;
