//! The deterministic discrete-event streaming scheduler.
//!
//! [`run_stream`] admits a [`Workload`]'s timestamped arrivals —
//! queries **and mutations**, interleaved on one clock — into a
//! [`StreamEngine`] under admission control and plays the resulting
//! contention out on a discrete-event timeline:
//!
//! * **Admission control** — at most [`SchedConfig::max_in_flight`]
//!   queries hold execution state at once; excess arrivals wait in the
//!   admission queue (backpressure). When a slot frees, the next
//!   admitted query is picked by [`AdmissionPolicy`]: FIFO, or
//!   shortest-candidate-set-first (the zone-map planner's candidate
//!   shard count is a free size estimate, so heavily pruned — short —
//!   queries overtake broad ones).
//! * **Streaming ingest** — mutation arrivals queue in strict FIFO
//!   behind a bounded per-lane ingest buffer: the head admits only
//!   while every lane it plans to touch holds fewer than
//!   [`SchedConfig::ingest_buffer`] in-flight mutations; otherwise
//!   ingest **stalls deterministically** until a lane chain completes
//!   (nothing overtakes a stalled head). At admission the mutation is
//!   applied to the engine ([`StreamEngine::apply_mutation`]) — zone
//!   maps widen, insert cursors advance, cached star join plans fall —
//!   and its byte-tagged write phases are compiled into per-lane slice
//!   chains that ride the same shared host channel as query traffic.
//! * **Snapshot consistency** — a query's answer is resolved *at its
//!   admission*, against exactly the mutations admitted before it (its
//!   [`QueryCompletion::epoch`]); resolutions are cached per
//!   `(query, epoch)` so repeated arrivals between ingests still share
//!   one execution. Replaying the first `epoch` mutations into a fresh
//!   engine and running the query reproduces the streamed answer
//!   bit-identically — the ingest-equivalence suites assert exactly
//!   this at every admission prefix.
//! * **Planning** — each admitted query is planned through the zone-map
//!   planner ([`StreamEngine::plan_shards`]); pruned shards receive no
//!   work, and a query whose candidate set is empty is answered by the
//!   planner alone, completing at admission.
//! * **Per-shard queues** — each candidate shard receives the query's
//!   shard slice on its own FIFO queue; PIM phases of *different*
//!   queries on *different* shards overlap freely, which is where
//!   out-of-order completion comes from. Mutation lane chains queue on
//!   the same per-module servers (fact lanes share indices with query
//!   shards; auxiliary ingest lanes — star dimension modules — sit
//!   above [`StreamEngine::active_shards`]).
//! * **Shared host channel** — with the cluster's contention model on
//!   (the default, [`StreamEngine::contention`]), *every* tagged host
//!   phase of every in-flight query **and mutation** rides one
//!   [`SharedBus`]: per-page dispatch, mask transfers, result-line
//!   reads, host-gb record fetches, UPDATE mask writes and INSERT row
//!   transfers, each for its channel occupancy
//!   ([`bbpim_sim::hostbus::phase_occupancy_ns`]). The host-side merge
//!   of each query's partials rides the same bus. With contention off,
//!   only dispatch and merge serialise (the pre-contention optimistic
//!   model) — useful for A/B latency studies.
//!
//! Every query service demand is taken from real per-shard executions
//! ([`StreamEngine::run_on_shard`]) against the admitted-mutation
//! snapshot, and the merged answers are folded with
//! [`StreamEngine::merge_executions`] in shard order. For pure-query
//! workloads this degenerates to the pre-ingest scheduler exactly: the
//! streamed results are bit-identical to
//! [`ClusterEngine::run_batch`] over the same queries; only timing and
//! completion order differ. The event timeline is a pure function of
//! `(cluster, workload, config)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use bbpim_cluster::{ClusterEngine, ClusterError, ClusterExecution};
use bbpim_core::mutation::{Mutation, MutationReport};
use bbpim_core::result::QueryExecution;
use bbpim_db::plan::{Pred, Query};
use bbpim_sim::config::HostConfig;
use bbpim_sim::hostbus::SharedBus;
use bbpim_trace::{ArgValue, TraceRecorder, TrackId};

use crate::demand::{compile_mutation_demand, resolve_query_demand, MutationDemand, QueryDemand};
use crate::error::SchedError;
use crate::report::LatencySummary;
use crate::workload::Workload;

/// The scatter/gather surface the streaming scheduler needs from a
/// sharded engine. [`ClusterEngine`] (pre-joined storage) implements it
/// here; the normalized star-join cluster implements it in its own
/// crate — the scheduler interleaves shard slices identically on both
/// storage models, so streamed answers stay bit-identical to batch runs
/// whichever one is underneath.
pub trait StreamEngine {
    /// Is the shared-host-channel contention model on?
    fn contention(&self) -> bool;

    /// The host-channel parameters (`None` only for an empty cluster,
    /// which can never produce candidate shards).
    fn host_config(&self) -> Option<HostConfig>;

    /// Fact shards actually holding records.
    fn active_shards(&self) -> usize;

    /// Every lane a mutation may occupy: the fact shards plus any
    /// auxiliary ingest lanes (the star cluster adds one per dimension
    /// table). Lane indices in [`StreamEngine::apply_mutation`] reports
    /// are always below this; fact-shard lanes share indices — and
    /// per-module queues — with query shard slices.
    fn ingest_lanes(&self) -> usize {
        self.active_shards()
    }

    /// The lanes a mutation would occupy *right now* — the
    /// ingest-buffer admission check. Re-planned on every admission
    /// attempt: earlier admissions widen zone maps and advance insert
    /// cursors, so a stalled mutation's lane set may shrink or move by
    /// the time it clears the buffer.
    ///
    /// # Errors
    ///
    /// Attribute resolution / routing failures.
    fn plan_mutation_lanes(&self, mutation: &Mutation) -> Result<Vec<usize>, ClusterError>;

    /// Apply `mutation` to the engine state (zone maps widen, catalog
    /// copies patch, cached plans invalidate) and return the per-lane
    /// reports whose phase logs become the mutation's slice chains.
    ///
    /// # Errors
    ///
    /// Validation or substrate failures.
    fn apply_mutation(
        &mut self,
        mutation: &Mutation,
    ) -> Result<Vec<(usize, MutationReport)>, ClusterError>;

    /// Zone-map shard admission: one flag per active shard.
    ///
    /// # Errors
    ///
    /// Attribute resolution failures.
    fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError>;

    /// Execute one query on one active shard (the scatter half).
    ///
    /// # Errors
    ///
    /// Unknown shard index or substrate failures.
    fn run_on_shard(&mut self, shard: usize, query: &Query)
        -> Result<QueryExecution, ClusterError>;

    /// Fold per-shard partials into a cluster answer (the gather half).
    fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution;
}

impl StreamEngine for ClusterEngine {
    fn contention(&self) -> bool {
        ClusterEngine::contention(self)
    }

    fn host_config(&self) -> Option<HostConfig> {
        self.shard_engine(0).map(|e| e.config().host.clone())
    }

    fn active_shards(&self) -> usize {
        ClusterEngine::active_shards(self)
    }

    fn plan_mutation_lanes(&self, mutation: &Mutation) -> Result<Vec<usize>, ClusterError> {
        ClusterEngine::plan_mutation_lanes(self, mutation)
    }

    fn apply_mutation(
        &mut self,
        mutation: &Mutation,
    ) -> Result<Vec<(usize, MutationReport)>, ClusterError> {
        ClusterEngine::mutate_on_lanes(self, mutation)
    }

    fn plan_shards(&self, filter: &Pred) -> Result<Vec<bool>, ClusterError> {
        ClusterEngine::plan_shards(self, filter)
    }

    fn run_on_shard(
        &mut self,
        shard: usize,
        query: &Query,
    ) -> Result<QueryExecution, ClusterError> {
        ClusterEngine::run_on_shard(self, shard, query)
    }

    fn merge_executions(
        &self,
        query: &Query,
        executions: &[&QueryExecution],
        shards_pruned: usize,
    ) -> ClusterExecution {
        ClusterEngine::merge_executions(self, query, executions, shards_pruned)
    }
}

/// How the admission queue picks the next query when a slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Fewest candidate shards first (ties broken by arrival order).
    /// The planner's candidate set size is a zero-cost service-demand
    /// estimate: a query pruned down to one shard is almost surely
    /// shorter than one touching every shard. The estimate is planned
    /// at *arrival* (a heuristic only); the real demand is planned at
    /// admission, against the admitted-mutation snapshot.
    ShortestCandidateFirst,
}

impl AdmissionPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::ShortestCandidateFirst => "scsf",
        }
    }

    /// Both policies, for sweeps.
    pub fn all() -> [AdmissionPolicy; 2] {
        [AdmissionPolicy::Fifo, AdmissionPolicy::ShortestCandidateFirst]
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Bound on concurrently in-flight queries (admission control).
    pub max_in_flight: usize,
    /// Admission order under backpressure.
    pub policy: AdmissionPolicy,
    /// Per-lane bound on concurrently in-flight mutations (the bounded
    /// ingest buffer). The head of the mutation queue admits only while
    /// every lane it plans to touch holds fewer than this many
    /// in-flight mutations; otherwise ingest stalls — strict FIFO, so
    /// nothing overtakes a stalled head — until a lane chain completes.
    pub ingest_buffer: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { max_in_flight: 8, policy: AdmissionPolicy::Fifo, ingest_buffer: 2 }
    }
}

/// What happened at one point of the simulated timeline (determinism
/// tests compare full traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The query arrived (entered the admission queue).
    Arrive,
    /// The query was admitted (left the admission queue).
    Admit,
    /// The host bus finished the query's *first* bus slice for a shard
    /// (the per-page dispatch that opens every shard chain).
    Dispatched,
    /// A shard finished the query's entire slice chain.
    ShardDone,
    /// The query's partials merged; the query is complete.
    Complete,
    /// A mutation arrived (entered the ingest queue). For mutation
    /// events the `arrival` field indexes
    /// [`Workload::mutation_arrivals`].
    MutationArrive,
    /// The head mutation could not admit — some planned lane's ingest
    /// buffer is full (`shard` names the first full lane). Recorded
    /// once per stall episode; strict FIFO holds everything behind it.
    MutationStall,
    /// The mutation was admitted: applied to the engine (later-admitted
    /// queries observe it) and its lane chains started.
    MutationAdmit,
    /// One ingest lane finished the mutation's slice chain, freeing its
    /// buffer slot.
    MutationLaneDone,
    /// Every lane chain finished; the mutation is durable and complete.
    MutationComplete,
}

/// One record of the simulated event timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: f64,
    /// What happened.
    pub kind: EventKind,
    /// Which arrival: an index into the workload's query arrival trace,
    /// or — for `Mutation*` kinds — its mutation arrival trace.
    pub arrival: usize,
    /// The shard/lane involved, for [`EventKind::Dispatched`] /
    /// [`EventKind::ShardDone`] / [`EventKind::MutationStall`] /
    /// [`EventKind::MutationLaneDone`].
    pub shard: Option<usize>,
}

/// Latency accounting for one completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCompletion {
    /// Index into the workload's arrival trace.
    pub arrival: usize,
    /// Query identifier.
    pub query_id: String,
    /// When the query arrived.
    pub arrive_ns: f64,
    /// When admission control let it in.
    pub admit_ns: f64,
    /// When its first bus slice started on the host channel (equals
    /// `admit_ns` for planner-only answers).
    pub first_service_ns: f64,
    /// When its merged answer was ready.
    pub complete_ns: f64,
    /// Candidate shards dispatched.
    pub shards_dispatched: usize,
    /// Active shards pruned by the zone-map planner.
    pub shards_pruned: usize,
    /// Mutations admitted before this query's admission — the snapshot
    /// its answer reflects. Replaying exactly the first `epoch` arrived
    /// mutations into a fresh engine reproduces the answer bit-exactly.
    pub epoch: usize,
}

impl QueryCompletion {
    /// End-to-end sojourn time (arrival → merged answer).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Time spent waiting (admission queue + host-bus queue) before any
    /// service.
    pub fn wait_ns(&self) -> f64 {
        self.first_service_ns - self.arrive_ns
    }

    /// Time from first service to completion.
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.first_service_ns
    }
}

/// Latency accounting for one completed (durable) mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationCompletion {
    /// Index into the workload's mutation arrival trace.
    pub arrival: usize,
    /// The mutation's label.
    pub label: String,
    /// When the mutation arrived (entered the ingest queue).
    pub arrive_ns: f64,
    /// When the ingest buffer admitted it (the point later queries
    /// start observing it).
    pub admit_ns: f64,
    /// When its last lane chain finished (durable).
    pub complete_ns: f64,
    /// Ingest lanes the mutation occupied.
    pub lanes: usize,
    /// Records rewritten (UPDATE), summed over lanes.
    pub records_updated: u64,
    /// Records appended (INSERT), summed over lanes.
    pub records_inserted: u64,
    /// This mutation's position in admission order, 1-based: queries
    /// with [`QueryCompletion::epoch`] `>= epoch` observe it.
    pub epoch: usize,
}

impl MutationCompletion {
    /// End-to-end sojourn time (arrival → durable).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Ingest-queue wait (arrival → admission), including any
    /// backpressure stall.
    pub fn wait_ns(&self) -> f64 {
        self.admit_ns - self.arrive_ns
    }
}

/// Everything one streamed run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The admission policy that ran.
    pub policy: AdmissionPolicy,
    /// Per-query latency records, in completion order (compare with
    /// arrival indices to observe out-of-order completion).
    pub completions: Vec<QueryCompletion>,
    /// Per-mutation latency records, in completion order (empty for
    /// pure-query workloads).
    pub mutation_completions: Vec<MutationCompletion>,
    /// Merged executions in query arrival order — each bit-identical to
    /// a fresh engine that replayed the first
    /// [`QueryCompletion::epoch`] mutations and ran the query.
    pub executions: Vec<ClusterExecution>,
    /// The full event timeline (deterministic per input).
    pub timeline: Vec<TimelineEvent>,
    /// When the last query or mutation completed.
    pub makespan_ns: f64,
    /// Host-channel busy time: dispatch, every tagged transfer slice
    /// (under contention), mutation write phases and merges.
    pub host_busy_ns: f64,
    /// Per-lane module-local busy time. For pure-query workloads one
    /// entry per active shard; with ingest, one per ingest lane
    /// (auxiliary lanes — star dimension modules — after the shards).
    pub shard_busy_ns: Vec<f64>,
    /// Per-lane accumulated worst-row cell writes over every query
    /// slice and mutation chain that ran there (the endurance model's
    /// input, surfaced per module: UPDATE-heavy streams wear modules
    /// unevenly).
    pub shard_cell_writes: Vec<u64>,
    /// Per-lane required cell endurance (write cycles) to sustain that
    /// module's worst query or mutation back-to-back for ten years —
    /// the paper's Fig. 9 metric, per module. Zero for modules whose
    /// work performs no PIM writes.
    pub shard_required_endurance: Vec<f64>,
    /// Backpressure stall episodes: times the head of the ingest queue
    /// found a planned lane's buffer full.
    pub ingest_stalls: usize,
    /// Total simulated time the head of the ingest queue spent stalled.
    pub ingest_stall_ns: f64,
}

impl StreamOutcome {
    /// Latency distribution over all query completions.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::of(&self.completions)
    }

    /// Completed queries per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_ns / 1e9)
        }
    }

    /// Fraction of the makespan the host channel was busy, saturated to
    /// `[0, 1]` (eager FIFO grants can stretch past the last
    /// completion, so the raw ratio could drift above 1).
    pub fn host_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        (self.host_busy_ns / self.makespan_ns).clamp(0.0, 1.0)
    }

    /// Raw host-channel demand ratio `offered_ns / makespan_ns`,
    /// **unclamped** — above 1.0 it measures how deeply the stream
    /// oversubscribes the channel, which the saturated
    /// [`StreamOutcome::host_utilisation`] deliberately hides (cf.
    /// [`SharedBus::demand`]).
    pub fn host_demand(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.host_busy_ns / self.makespan_ns
    }

    /// Latency distribution over the mutation completions (all-zero
    /// for pure-query runs): wait is the ingest-queue sojourn
    /// (backpressure included), service is admission → durable.
    pub fn mutation_latency_summary(&self) -> LatencySummary {
        LatencySummary::from_parts(
            self.mutation_completions.iter().map(MutationCompletion::latency_ns).collect(),
            &self.mutation_completions.iter().map(MutationCompletion::wait_ns).collect::<Vec<_>>(),
            &self
                .mutation_completions
                .iter()
                .map(|c| c.complete_ns - c.admit_ns)
                .collect::<Vec<_>>(),
            0,
        )
    }

    /// Mean per-lane PIM utilisation over the makespan.
    pub fn mean_shard_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 || self.shard_busy_ns.is_empty() {
            return 0.0;
        }
        let mean_busy = self.shard_busy_ns.iter().sum::<f64>() / self.shard_busy_ns.len() as f64;
        (mean_busy / self.makespan_ns).clamp(0.0, 1.0)
    }

    /// The first completion that finished while an earlier arrival was
    /// still pending — the concrete out-of-order evidence, if any.
    pub fn first_overtaker(&self) -> Option<&QueryCompletion> {
        let slots = self.completions.iter().map(|c| c.arrival + 1).max().unwrap_or(0);
        let mut completed = vec![false; slots];
        self.completions.iter().find(|c| {
            completed[c.arrival] = true;
            (0..c.arrival).any(|i| !completed[i])
        })
    }

    /// Queries that finished *after* a later arrival did — i.e. they
    /// were overtaken. Nonzero means out-of-order completion happened.
    pub fn overtaken(&self) -> usize {
        let mut max_seen = None::<usize>;
        let mut n = 0;
        for c in &self.completions {
            if max_seen.is_some_and(|m| m > c.arrival) {
                n += 1;
            }
            max_seen = Some(max_seen.map_or(c.arrival, |m| m.max(c.arrival)));
        }
        n
    }
}

/// Mutable per-query-arrival simulation state.
#[derive(Clone, Copy)]
struct Progress {
    admit_ns: f64,
    first_service_ns: f64,
    remaining: usize,
    epoch: usize,
}

/// Mutable per-mutation-arrival simulation state.
#[derive(Clone, Copy)]
struct MutProgress {
    admit_ns: f64,
    remaining: usize,
    epoch: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A query arrival enters the admission queue.
    Arrive(usize),
    /// A mutation arrival enters the ingest queue.
    MutArrive(usize),
    /// `(arrival, shard_pos, slice_idx)`: the slice's bus part ended.
    BusDone(usize, usize, usize),
    /// `(arrival, shard_pos, slice_idx)`: the slice's local part ended.
    LocalDone(usize, usize, usize),
    /// The query's host-side merge ended.
    MergeDone(usize),
    /// `(mutation arrival, lane_pos, slice_idx)`: bus part ended.
    MutBusDone(usize, usize, usize),
    /// `(mutation arrival, lane_pos, slice_idx)`: local part ended.
    MutLocalDone(usize, usize, usize),
}

/// Heap entry ordered by (time, insertion sequence) — the sequence
/// makes simultaneous events deterministic.
struct HeapEntry {
    t_ns: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns.total_cmp(&other.t_ns) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so `BinaryHeap` pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.t_ns.total_cmp(&self.t_ns).then(other.seq.cmp(&self.seq))
    }
}

/// Trace track ids for the scheduler's lanes (present only when the
/// recorder is enabled).
struct Tracks {
    sched: TrackId,
    host: TrackId,
    modules: Vec<TrackId>,
}

impl Tracks {
    fn new(trace: &mut TraceRecorder, active_shards: usize, lanes: usize) -> Option<Tracks> {
        if !trace.is_enabled() {
            return None;
        }
        Some(Tracks {
            sched: trace.track("scheduler"),
            host: trace.track("host-bus"),
            modules: (0..lanes)
                .map(|s| {
                    if s < active_shards {
                        trace.track(&format!("module-{s}"))
                    } else {
                        trace.track(&format!("ingest-lane-{}", s - active_shards))
                    }
                })
                .collect(),
        })
    }
}

/// The simulation state machine.
struct Sim<'a, E: StreamEngine> {
    cfg: &'a SchedConfig,
    workload: &'a Workload,
    cluster: &'a mut E,
    want_detail: bool,
    /// Mutations admitted so far — the snapshot counter.
    epoch: usize,
    /// Resolution cache: `(query index, epoch)` → resolved demand and
    /// merged answer, shared by repeated arrivals between ingests.
    by_query: HashMap<(usize, usize), (QueryDemand, ClusterExecution)>,
    /// Per query arrival, filled at admission.
    demands: Vec<Option<QueryDemand>>,
    executions: Vec<Option<ClusterExecution>>,
    /// SCSF candidate-count estimate, planned at arrival.
    cand_est: Vec<usize>,
    /// Per mutation arrival, filled at admission.
    mut_demands: Vec<Option<MutationDemand>>,
    events: BinaryHeap<HeapEntry>,
    seq: u64,
    host: SharedBus,
    shard_bus: Vec<SharedBus>,
    waiting: Vec<usize>,
    mut_waiting: VecDeque<usize>,
    in_flight: usize,
    /// In-flight mutation count per ingest lane (the bounded buffer).
    lane_inflight: Vec<usize>,
    /// When the current head-of-queue stall began, if stalled.
    stalled_since: Option<f64>,
    ingest_stalls: usize,
    ingest_stall_ns: f64,
    progress: Vec<Option<Progress>>,
    mut_progress: Vec<Option<MutProgress>>,
    completions: Vec<QueryCompletion>,
    mutation_completions: Vec<MutationCompletion>,
    timeline: Vec<TimelineEvent>,
    shard_cell_writes: Vec<u64>,
    shard_endurance: Vec<f64>,
    trace: &'a mut TraceRecorder,
    tracks: Option<Tracks>,
}

impl<E: StreamEngine> Sim<'_, E> {
    fn push_event(&mut self, t_ns: f64, ev: Ev) {
        self.events.push(HeapEntry { t_ns, seq: self.seq, ev });
        self.seq += 1;
    }

    fn record(&mut self, t_ns: f64, kind: EventKind, arrival: usize, shard: Option<usize>) {
        self.timeline.push(TimelineEvent { t_ns, kind, arrival, shard });
    }

    /// The admitted demand of a query arrival.
    fn qd(&self, ai: usize) -> &QueryDemand {
        self.demands[ai].as_ref().expect("demand resolved at admission")
    }

    /// The admitted demand of a mutation arrival.
    fn md(&self, mi: usize) -> &MutationDemand {
        self.mut_demands[mi].as_ref().expect("mutation compiled at admission")
    }

    /// Standard event attributes: the arrival index and its query id.
    fn query_args(&self, ai: usize) -> Vec<(&'static str, ArgValue)> {
        let id = self.workload.queries()[self.workload.arrivals()[ai].query].id.clone();
        vec![("arrival", ArgValue::U64(ai as u64)), ("query", ArgValue::Str(id))]
    }

    /// Standard mutation event attributes.
    fn mutation_args(&self, mi: usize) -> Vec<(&'static str, ArgValue)> {
        let label =
            self.workload.mutations()[self.workload.mutation_arrivals()[mi].mutation].label();
        vec![("ingest", ArgValue::U64(mi as u64)), ("mutation", ArgValue::Str(label))]
    }

    /// Sample the scheduler counters (admission-queue depth, in-flight
    /// count, and — on HTAP workloads — ingest-queue depth) onto the
    /// scheduler track.
    fn trace_queue_counters(&mut self, t_ns: f64) {
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let depth = self.waiting.len() as f64;
            let in_flight = self.in_flight as f64;
            self.trace.counter(sched, "admission-queue", t_ns, depth);
            self.trace.counter(sched, "in-flight", t_ns, in_flight);
            if self.workload.has_mutations() {
                let ingest = self.mut_waiting.len() as f64;
                self.trace.counter(sched, "ingest-queue", t_ns, ingest);
            }
        }
    }

    /// Pick the next admission per policy; `waiting` keeps arrival
    /// order, so FIFO is the front and SCSF is the min candidate count
    /// with arrival order as tiebreak.
    fn pick_next(&self) -> usize {
        match self.cfg.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::ShortestCandidateFirst => self
                .waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, &ai)| (self.cand_est[ai], ai))
                .map(|(pos, _)| pos)
                .expect("pick_next on an empty queue"),
        }
    }

    /// Start one slice of a query shard chain at `now_ns`: its bus part
    /// rides the shared channel first (free when zero-width), then its
    /// local part queues on the shard. Returns the bus grant start when
    /// the slice touched the bus.
    fn start_slice(&mut self, now_ns: f64, ai: usize, sp: usize, idx: usize) -> Option<f64> {
        let slice = self.qd(ai).shards[sp].slices[idx];
        if slice.bus_ns > 0.0 {
            let grant = self.host.acquire(now_ns, slice.bus_ns);
            self.push_event(grant.end_ns, Ev::BusDone(ai, sp, idx));
            if let Some(tracks) = &self.tracks {
                let (host, shard) = (tracks.host, self.qd(ai).shards[sp].shard);
                let name = slice.bus_kind.map_or("bus", |k| k.label());
                let mut args = self.query_args(ai);
                args.push(("shard", ArgValue::U64(shard as u64)));
                args.push(("wait_ns", ArgValue::F64(grant.start_ns - now_ns)));
                args.push(("bytes", ArgValue::U64(slice.bus_bytes)));
                self.trace.span(host, name, grant.start_ns, slice.bus_ns, args);
            }
            Some(grant.start_ns)
        } else {
            self.push_event(now_ns, Ev::BusDone(ai, sp, idx));
            None
        }
    }

    /// Start one slice of a mutation lane chain (same bus-then-local
    /// shape as query slices — ingest writes queue on the shared
    /// channel like any transfer).
    fn start_mut_slice(&mut self, now_ns: f64, mi: usize, lp: usize, idx: usize) {
        let slice = self.md(mi).lanes[lp].slices[idx];
        if slice.bus_ns > 0.0 {
            let grant = self.host.acquire(now_ns, slice.bus_ns);
            self.push_event(grant.end_ns, Ev::MutBusDone(mi, lp, idx));
            if let Some(tracks) = &self.tracks {
                let (host, lane) = (tracks.host, self.md(mi).lanes[lp].shard);
                let name = slice.bus_kind.map_or("bus", |k| k.label());
                let mut args = self.mutation_args(mi);
                args.push(("lane", ArgValue::U64(lane as u64)));
                args.push(("wait_ns", ArgValue::F64(grant.start_ns - now_ns)));
                args.push(("bytes", ArgValue::U64(slice.bus_bytes)));
                self.trace.span(host, name, grant.start_ns, slice.bus_ns, args);
            }
        } else {
            self.push_event(now_ns, Ev::MutBusDone(mi, lp, idx));
        }
    }

    /// Admit work while capacity allows: ingest first (strict FIFO
    /// behind the bounded per-lane buffer), then queries (policy
    /// order behind the in-flight bound). Mutations admit first so a
    /// query and a mutation released by the same event see the
    /// mutation in the query's snapshot — admission order, not
    /// event-processing luck, defines the epoch.
    fn try_admit(&mut self, now_ns: f64) -> Result<(), SchedError> {
        self.try_admit_mutations(now_ns)?;
        self.try_admit_queries(now_ns)
    }

    /// Strict-FIFO ingest admission behind the bounded per-lane buffer.
    fn try_admit_mutations(&mut self, now_ns: f64) -> Result<(), SchedError> {
        while let Some(&mi) = self.mut_waiting.front() {
            let m = &self.workload.mutations()[self.workload.mutation_arrivals()[mi].mutation];
            let lanes = self.cluster.plan_mutation_lanes(m)?;
            let full = lanes.iter().find(|&&l| self.lane_inflight[l] >= self.cfg.ingest_buffer);
            if let Some(&lane) = full {
                if self.stalled_since.is_none() {
                    // Head-of-line backpressure: record once per
                    // episode; everything behind the head waits too.
                    self.stalled_since = Some(now_ns);
                    self.ingest_stalls += 1;
                    self.record(now_ns, EventKind::MutationStall, mi, Some(lane));
                    if let Some(tracks) = &self.tracks {
                        let sched = tracks.sched;
                        let mut args = self.mutation_args(mi);
                        args.push(("lane", ArgValue::U64(lane as u64)));
                        self.trace.instant(sched, "ingest-stall", now_ns, args);
                    }
                }
                return Ok(());
            }
            if let Some(since) = self.stalled_since.take() {
                self.ingest_stall_ns += now_ns - since;
            }
            self.mut_waiting.pop_front();
            self.admit_mutation(now_ns, mi)?;
        }
        Ok(())
    }

    /// Admit one mutation: bump the epoch, apply it to the engine (the
    /// snapshot point), compile its lane chains and start them.
    fn admit_mutation(&mut self, now_ns: f64, mi: usize) -> Result<(), SchedError> {
        self.record(now_ns, EventKind::MutationAdmit, mi, None);
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let mut args = self.mutation_args(mi);
            let arrive = self.workload.mutation_arrivals()[mi].at_ns;
            args.push(("queued_ns", ArgValue::F64(now_ns - arrive)));
            self.trace.instant(sched, "ingest-admit", now_ns, args);
        }
        self.epoch += 1;
        let m = &self.workload.mutations()[self.workload.mutation_arrivals()[mi].mutation];
        let applied = self.cluster.apply_mutation(m)?;
        let contention = self.cluster.contention();
        let demand = match self.cluster.host_config() {
            Some(host) => {
                compile_mutation_demand(m.label(), &applied, &host, contention, self.want_detail)
            }
            None => compile_mutation_demand(m.label(), &[], &HostConfig::default(), false, false),
        };
        for ld in &demand.lanes {
            self.shard_endurance[ld.shard] =
                self.shard_endurance[ld.shard].max(ld.required_endurance);
        }
        let n_lanes = demand.lanes.len();
        let epoch = self.epoch;
        self.mut_demands[mi] = Some(demand);
        if n_lanes == 0 {
            // Zone maps admitted nothing (or the engine absorbed the
            // mutation without PIM work): durable at admission.
            self.complete_mutation(
                now_ns,
                mi,
                MutProgress { admit_ns: now_ns, remaining: 0, epoch },
            );
            return Ok(());
        }
        for lp in 0..n_lanes {
            let lane = self.md(mi).lanes[lp].shard;
            self.lane_inflight[lane] += 1;
            self.start_mut_slice(now_ns, mi, lp, 0);
        }
        self.mut_progress[mi] = Some(MutProgress { admit_ns: now_ns, remaining: n_lanes, epoch });
        self.trace_queue_counters(now_ns);
        Ok(())
    }

    /// Admit queries from the queue while in-flight slots are free,
    /// resolving each one's demand against the current (admitted-
    /// mutation) engine state.
    fn try_admit_queries(&mut self, now_ns: f64) -> Result<(), SchedError> {
        while self.in_flight < self.cfg.max_in_flight && !self.waiting.is_empty() {
            let ai = self.waiting.remove(self.pick_next());
            self.record(now_ns, EventKind::Admit, ai, None);
            if let Some(tracks) = &self.tracks {
                let sched = tracks.sched;
                let mut args = self.query_args(ai);
                let arrive = self.workload.arrivals()[ai].at_ns;
                args.push(("queued_ns", ArgValue::F64(now_ns - arrive)));
                self.trace.instant(sched, "admit", now_ns, args);
            }
            // Snapshot-consistent resolution: plan and execute against
            // exactly the mutations admitted so far, caching per
            // (query, epoch) so repeated arrivals between ingests share
            // one deterministic, read-only resolution.
            let qi = self.workload.arrivals()[ai].query;
            let key = (qi, self.epoch);
            if !self.by_query.contains_key(&key) {
                let query = &self.workload.queries()[qi];
                let resolved = resolve_query_demand(&mut *self.cluster, query, self.want_detail)?;
                for sd in &resolved.0.shards {
                    self.shard_endurance[sd.shard] =
                        self.shard_endurance[sd.shard].max(sd.required_endurance);
                }
                self.by_query.insert(key, resolved);
            }
            let (demand, merged) = self.by_query.get(&key).expect("resolved above");
            self.demands[ai] = Some(demand.clone());
            self.executions[ai] = Some(merged.clone());
            let (n_shards, merge_ns) = (self.qd(ai).shards.len(), self.qd(ai).merge_ns);
            let epoch = self.epoch;
            if n_shards == 0 {
                // The planner answered the query: nothing to dispatch,
                // the (empty) merge is free, the slot never fills.
                debug_assert_eq!(merge_ns, 0.0, "empty merges cost nothing");
                self.complete(
                    now_ns,
                    ai,
                    Progress { admit_ns: now_ns, first_service_ns: now_ns, remaining: 0, epoch },
                );
                self.trace_queue_counters(now_ns);
                continue;
            }
            self.in_flight += 1;
            // The host opens every candidate shard's chain; the first
            // slice of each (the per-page dispatch) serialises on the
            // bus against everything else in flight.
            let mut first_service_ns = f64::INFINITY;
            for sp in 0..n_shards {
                if let Some(start) = self.start_slice(now_ns, ai, sp, 0) {
                    first_service_ns = first_service_ns.min(start);
                }
            }
            if !first_service_ns.is_finite() {
                first_service_ns = now_ns;
            }
            self.progress[ai] =
                Some(Progress { admit_ns: now_ns, first_service_ns, remaining: n_shards, epoch });
            self.trace_queue_counters(now_ns);
        }
        Ok(())
    }

    fn complete(&mut self, now_ns: f64, ai: usize, p: Progress) {
        self.record(now_ns, EventKind::Complete, ai, None);
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let mut args = self.query_args(ai);
            let arrive = self.workload.arrivals()[ai].at_ns;
            args.push(("latency_ns", ArgValue::F64(now_ns - arrive)));
            self.trace.instant(sched, "complete", now_ns, args);
        }
        let d = self.qd(ai);
        self.completions.push(QueryCompletion {
            arrival: ai,
            query_id: d.query_id.clone(),
            arrive_ns: self.workload.arrivals()[ai].at_ns,
            admit_ns: p.admit_ns,
            first_service_ns: p.first_service_ns,
            complete_ns: now_ns,
            shards_dispatched: d.shards.len(),
            shards_pruned: d.shards_pruned,
            epoch: p.epoch,
        });
    }

    fn complete_mutation(&mut self, now_ns: f64, mi: usize, p: MutProgress) {
        self.record(now_ns, EventKind::MutationComplete, mi, None);
        if let Some(tracks) = &self.tracks {
            let sched = tracks.sched;
            let mut args = self.mutation_args(mi);
            let arrive = self.workload.mutation_arrivals()[mi].at_ns;
            args.push(("latency_ns", ArgValue::F64(now_ns - arrive)));
            self.trace.instant(sched, "ingest-complete", now_ns, args);
        }
        let d = self.md(mi);
        self.mutation_completions.push(MutationCompletion {
            arrival: mi,
            label: d.label.clone(),
            arrive_ns: self.workload.mutation_arrivals()[mi].at_ns,
            admit_ns: p.admit_ns,
            complete_ns: now_ns,
            lanes: d.lanes.len(),
            records_updated: d.records_updated,
            records_inserted: d.records_inserted,
            epoch: p.epoch,
        });
    }

    /// A query's shard chain finished its last slice.
    fn shard_done(&mut self, t: f64, ai: usize, sp: usize, shard: usize) {
        self.record(t, EventKind::ShardDone, ai, Some(shard));
        self.shard_cell_writes[shard] += self.qd(ai).shards[sp].cell_writes;
        let p = self.progress[ai].as_mut().expect("in-flight query has progress");
        p.remaining -= 1;
        if p.remaining == 0 {
            let merge_ns = self.qd(ai).merge_ns;
            let grant = self.host.acquire(t, merge_ns);
            self.push_event(grant.end_ns, Ev::MergeDone(ai));
            if merge_ns > 0.0 {
                if let Some(tracks) = &self.tracks {
                    let host = tracks.host;
                    let mut args = self.query_args(ai);
                    args.push(("wait_ns", ArgValue::F64(grant.start_ns - t)));
                    self.trace.span(host, "merge", grant.start_ns, merge_ns, args);
                }
            }
        }
    }

    /// A mutation's lane chain finished its last slice: free the lane's
    /// ingest-buffer slot (the stalled head may now clear) and complete
    /// the mutation when it was the last lane.
    fn mut_lane_done(
        &mut self,
        t: f64,
        mi: usize,
        lp: usize,
        lane: usize,
    ) -> Result<(), SchedError> {
        self.record(t, EventKind::MutationLaneDone, mi, Some(lane));
        self.shard_cell_writes[lane] += self.md(mi).lanes[lp].cell_writes;
        self.lane_inflight[lane] -= 1;
        let p = self.mut_progress[mi].as_mut().expect("in-flight mutation has progress");
        p.remaining -= 1;
        if p.remaining == 0 {
            let p = self.mut_progress[mi].take().expect("taken once");
            self.complete_mutation(t, mi, p);
        }
        self.trace_queue_counters(t);
        self.try_admit(t)
    }

    /// Emit the module-track spans for one local window
    /// `[start_ns, start_ns + local_ns]`: the per-phase composition
    /// when the chain was compiled with detail, one opaque `local`
    /// span otherwise.
    fn trace_local(&mut self, ai: usize, sp: usize, idx: usize, start_ns: f64, local_ns: f64) {
        let Some(tracks) = &self.tracks else { return };
        let shard = self.qd(ai).shards[sp].shard;
        let module = tracks.modules[shard];
        let detail = self.qd(ai).shards[sp].detail.get(idx).cloned().unwrap_or_default();
        if detail.is_empty() {
            let args = self.query_args(ai);
            self.trace.span(module, "local", start_ns, local_ns, args);
            return;
        }
        let mut at = start_ns;
        for (kind, dt) in detail {
            let args = self.query_args(ai);
            self.trace.span(module, kind.label(), at, dt, args);
            at += dt;
        }
    }

    /// Module-track spans for one mutation local window.
    fn trace_mut_local(&mut self, mi: usize, lp: usize, idx: usize, start_ns: f64, local_ns: f64) {
        let Some(tracks) = &self.tracks else { return };
        let lane = self.md(mi).lanes[lp].shard;
        let module = tracks.modules[lane];
        let detail = self.md(mi).lanes[lp].detail.get(idx).cloned().unwrap_or_default();
        if detail.is_empty() {
            let args = self.mutation_args(mi);
            self.trace.span(module, "ingest", start_ns, local_ns, args);
            return;
        }
        let mut at = start_ns;
        for (kind, dt) in detail {
            let args = self.mutation_args(mi);
            self.trace.span(module, kind.label(), at, dt, args);
            at += dt;
        }
    }

    fn run(mut self) -> Result<StreamOutcome, SchedError> {
        let policy = self.cfg.policy;
        while let Some(entry) = self.events.pop() {
            let t = entry.t_ns;
            match entry.ev {
                Ev::Arrive(ai) => {
                    self.record(t, EventKind::Arrive, ai, None);
                    if let Some(tracks) = &self.tracks {
                        let sched = tracks.sched;
                        let args = self.query_args(ai);
                        self.trace.instant(sched, "arrive", t, args);
                    }
                    // SCSF's size estimate, planned against the zone
                    // maps as they stand at arrival (heuristic only —
                    // the real demand is planned at admission).
                    let qi = self.workload.arrivals()[ai].query;
                    let filter = &self.workload.queries()[qi].filter;
                    self.cand_est[ai] =
                        self.cluster.plan_shards(filter)?.iter().filter(|&&b| b).count();
                    self.waiting.push(ai);
                    self.trace_queue_counters(t);
                    self.try_admit(t)?;
                }
                Ev::MutArrive(mi) => {
                    self.record(t, EventKind::MutationArrive, mi, None);
                    if let Some(tracks) = &self.tracks {
                        let sched = tracks.sched;
                        let args = self.mutation_args(mi);
                        self.trace.instant(sched, "ingest-arrive", t, args);
                    }
                    self.mut_waiting.push_back(mi);
                    self.trace_queue_counters(t);
                    self.try_admit(t)?;
                }
                Ev::BusDone(ai, sp, idx) => {
                    let (shard, slice) = {
                        let d = &self.qd(ai).shards[sp];
                        (d.shard, d.slices[idx])
                    };
                    if idx == 0 {
                        self.record(t, EventKind::Dispatched, ai, Some(shard));
                    }
                    if slice.local_ns > 0.0 {
                        let grant = self.shard_bus[shard].acquire(t, slice.local_ns);
                        self.push_event(grant.end_ns, Ev::LocalDone(ai, sp, idx));
                        self.trace_local(ai, sp, idx, grant.start_ns, slice.local_ns);
                    } else {
                        self.push_event(t, Ev::LocalDone(ai, sp, idx));
                    }
                }
                Ev::LocalDone(ai, sp, idx) => {
                    let (shard, len) = {
                        let d = &self.qd(ai).shards[sp];
                        (d.shard, d.slices.len())
                    };
                    if idx + 1 < len {
                        self.start_slice(t, ai, sp, idx + 1);
                    } else {
                        self.shard_done(t, ai, sp, shard);
                    }
                }
                Ev::MergeDone(ai) => {
                    let p = self.progress[ai].take().expect("merging query has progress");
                    self.complete(t, ai, p);
                    self.in_flight -= 1;
                    self.trace_queue_counters(t);
                    self.try_admit(t)?;
                }
                Ev::MutBusDone(mi, lp, idx) => {
                    let (lane, slice) = {
                        let d = &self.md(mi).lanes[lp];
                        (d.shard, d.slices[idx])
                    };
                    if slice.local_ns > 0.0 {
                        let grant = self.shard_bus[lane].acquire(t, slice.local_ns);
                        self.push_event(grant.end_ns, Ev::MutLocalDone(mi, lp, idx));
                        self.trace_mut_local(mi, lp, idx, grant.start_ns, slice.local_ns);
                    } else {
                        self.push_event(t, Ev::MutLocalDone(mi, lp, idx));
                    }
                }
                Ev::MutLocalDone(mi, lp, idx) => {
                    let (lane, len) = {
                        let d = &self.md(mi).lanes[lp];
                        (d.shard, d.slices.len())
                    };
                    if idx + 1 < len {
                        self.start_mut_slice(t, mi, lp, idx + 1);
                    } else {
                        self.mut_lane_done(t, mi, lp, lane)?;
                    }
                }
            }
        }
        let makespan_ns = self
            .completions
            .iter()
            .map(|c| c.complete_ns)
            .chain(self.mutation_completions.iter().map(|c| c.complete_ns))
            .fold(0.0, f64::max);
        let executions = self
            .executions
            .into_iter()
            .map(|e| e.expect("every arrival admits and completes"))
            .collect();
        Ok(StreamOutcome {
            policy,
            completions: self.completions,
            mutation_completions: self.mutation_completions,
            executions,
            timeline: self.timeline,
            makespan_ns,
            host_busy_ns: self.host.busy_ns(),
            shard_busy_ns: self.shard_bus.iter().map(SharedBus::busy_ns).collect(),
            shard_cell_writes: self.shard_cell_writes,
            shard_required_endurance: self.shard_endurance,
            ingest_stalls: self.ingest_stalls,
            ingest_stall_ns: self.ingest_stall_ns,
        })
    }
}

/// Stream `workload` through `cluster` — any [`StreamEngine`]: the
/// pre-joined [`ClusterEngine`] or the normalized star-join cluster —
/// under `cfg`.
///
/// Query service demands come from real per-shard executions resolved
/// *at admission* against exactly the mutations admitted before them,
/// so each merged answer in [`StreamOutcome::executions`] is
/// bit-identical to a fresh engine that replayed that admission prefix
/// and ran the query (for pure-query workloads: bit-identical to
/// [`ClusterEngine::run_batch`] over the same arrived queries). The
/// discrete-event timeline then decides *when* each query's slices and
/// each mutation's write phases run under admission control, bounded
/// per-lane ingest buffers, per-shard FIFO queues and the shared host
/// channel. With [`StreamEngine::contention`] on (the default), every
/// tagged host phase — dispatch, mask transfers, result reads, host-gb
/// fetches, ingest writes — queues on the one bus; with it off only
/// dispatch and merge do.
///
/// # Errors
///
/// [`SchedError::InvalidConfig`] for a zero in-flight bound or a zero
/// ingest buffer; cluster/planner failures otherwise.
pub fn run_stream<E: StreamEngine>(
    cluster: &mut E,
    workload: &Workload,
    cfg: &SchedConfig,
) -> Result<StreamOutcome, SchedError> {
    let mut trace = TraceRecorder::disabled();
    run_stream_traced(cluster, workload, cfg, &mut trace)
}

/// [`run_stream`] with a [`TraceRecorder`]: when the recorder is
/// enabled, every scheduler admission/completion, every ingest
/// stall/admission, every host-bus grant (with its queueing wait and
/// byte payload) and every module-local phase window is recorded on
/// named tracks — `scheduler`, `host-bus`, `module-<k>`, and
/// `ingest-lane-<d>` for auxiliary ingest lanes — on the simulated
/// clock. The recorder **never** changes the simulation: the event
/// timeline, completions and merged executions are identical with
/// tracing on, off, or disabled (the oracle-equivalence suites assert
/// exactly this).
///
/// # Errors
///
/// Same as [`run_stream`].
pub fn run_stream_traced<E: StreamEngine>(
    cluster: &mut E,
    workload: &Workload,
    cfg: &SchedConfig,
    trace: &mut TraceRecorder,
) -> Result<StreamOutcome, SchedError> {
    if cfg.max_in_flight == 0 {
        return Err(SchedError::InvalidConfig("max_in_flight must be at least 1".into()));
    }
    if cfg.ingest_buffer == 0 {
        return Err(SchedError::InvalidConfig("ingest_buffer must be at least 1".into()));
    }
    let want_detail = trace.is_enabled();
    let active_shards = cluster.active_shards();
    // Pure-query runs keep the per-shard shape; ingest runs widen the
    // lane vectors to every ingest lane (star dimension modules after
    // the fact shards).
    let lanes = if workload.has_mutations() {
        cluster.ingest_lanes().max(active_shards)
    } else {
        active_shards
    };
    let tracks = Tracks::new(trace, active_shards, lanes);
    let mut sim = Sim {
        cfg,
        workload,
        cluster,
        want_detail,
        epoch: 0,
        by_query: HashMap::new(),
        demands: vec![None; workload.len()],
        executions: vec![None; workload.len()],
        cand_est: vec![0; workload.len()],
        mut_demands: vec![None; workload.mutation_arrivals().len()],
        events: BinaryHeap::new(),
        seq: 0,
        host: SharedBus::new(),
        shard_bus: vec![SharedBus::new(); lanes],
        waiting: Vec::new(),
        mut_waiting: VecDeque::new(),
        in_flight: 0,
        lane_inflight: vec![0; lanes],
        stalled_since: None,
        ingest_stalls: 0,
        ingest_stall_ns: 0.0,
        progress: vec![None; workload.len()],
        mut_progress: vec![None; workload.mutation_arrivals().len()],
        completions: Vec::with_capacity(workload.len()),
        mutation_completions: Vec::with_capacity(workload.mutation_arrivals().len()),
        timeline: Vec::new(),
        shard_cell_writes: vec![0; lanes],
        shard_endurance: vec![0.0; lanes],
        trace,
        tracks,
    };
    for (ai, arrival) in workload.arrivals().iter().enumerate() {
        sim.push_event(arrival.at_ns, Ev::Arrive(ai));
    }
    for (mi, arrival) in workload.mutation_arrivals().iter().enumerate() {
        sim.push_event(arrival.at_ns, Ev::MutArrive(mi));
    }
    sim.run()
}

/// The horizon the per-module required-endurance figures assume (the
/// paper's Fig. 9 runs each query back-to-back for ten years).
pub const ENDURANCE_YEARS: f64 = 10.0;
