//! The deterministic discrete-event streaming scheduler.
//!
//! [`run_stream`] admits a [`Workload`]'s timestamped arrivals into a
//! [`ClusterEngine`] under admission control and plays the resulting
//! contention out on a discrete-event timeline:
//!
//! * **Admission control** — at most [`SchedConfig::max_in_flight`]
//!   queries hold execution state at once; excess arrivals wait in the
//!   admission queue (backpressure). When a slot frees, the next
//!   admitted query is picked by [`AdmissionPolicy`]: FIFO, or
//!   shortest-candidate-set-first (the zone-map planner's candidate
//!   shard count is a free size estimate, so heavily pruned — short —
//!   queries overtake broad ones).
//! * **Planning** — each admitted query is planned through the zone-map
//!   planner ([`ClusterEngine::plan_shards`]); pruned shards receive no
//!   work, and a query whose candidate set is empty is answered by the
//!   planner alone, completing at admission.
//! * **Per-shard queues** — each candidate shard receives the query's
//!   shard slice on its own FIFO queue; PIM phases of *different*
//!   queries on *different* shards overlap freely, which is where
//!   out-of-order completion comes from.
//! * **Shared dispatch bus** — the host's per-page orchestration is one
//!   resource ([`SharedBus`]): dispatch slices of concurrent queries
//!   serialise, extending within-query host-serial dispatch (PR 2's
//!   wall-clock model) across in-flight queries. The host-side merge of
//!   each query's partials rides the same bus.
//!
//! Every service demand is taken from real per-shard executions
//! ([`ClusterEngine::run_on_shard`]), and the merged answers are folded
//! with [`ClusterEngine::merge_executions`] in shard order — so the
//! streamed results are bit-identical to
//! [`ClusterEngine::run_batch`] over the same queries; only timing and
//! completion order differ. The event timeline is a pure function of
//! `(cluster, workload, config)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bbpim_cluster::{ClusterEngine, ClusterExecution};
use bbpim_core::result::QueryExecution;
use bbpim_sim::hostbus::SharedBus;
use bbpim_sim::timeline::PhaseKind;

use crate::error::SchedError;
use crate::report::LatencySummary;
use crate::workload::Workload;

/// How the admission queue picks the next query when a slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Fewest candidate shards first (ties broken by arrival order).
    /// The planner's candidate set size is a zero-cost service-demand
    /// estimate: a query pruned down to one shard is almost surely
    /// shorter than one touching every shard.
    ShortestCandidateFirst,
}

impl AdmissionPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::ShortestCandidateFirst => "scsf",
        }
    }

    /// Both policies, for sweeps.
    pub fn all() -> [AdmissionPolicy; 2] {
        [AdmissionPolicy::Fifo, AdmissionPolicy::ShortestCandidateFirst]
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Bound on concurrently in-flight queries (admission control).
    pub max_in_flight: usize,
    /// Admission order under backpressure.
    pub policy: AdmissionPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { max_in_flight: 8, policy: AdmissionPolicy::Fifo }
    }
}

/// What happened at one point of the simulated timeline (determinism
/// tests compare full traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The query arrived (entered the admission queue).
    Arrive,
    /// The query was admitted (left the admission queue).
    Admit,
    /// The host bus finished dispatching the query's pages to a shard.
    Dispatched,
    /// A shard finished the query's PIM slice.
    ShardDone,
    /// The query's partials merged; the query is complete.
    Complete,
}

/// One record of the simulated event timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: f64,
    /// What happened.
    pub kind: EventKind,
    /// Which arrival (index into the workload's trace).
    pub arrival: usize,
    /// The shard involved, for [`EventKind::Dispatched`] /
    /// [`EventKind::ShardDone`].
    pub shard: Option<usize>,
}

/// Latency accounting for one completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCompletion {
    /// Index into the workload's arrival trace.
    pub arrival: usize,
    /// Query identifier.
    pub query_id: String,
    /// When the query arrived.
    pub arrive_ns: f64,
    /// When admission control let it in.
    pub admit_ns: f64,
    /// When its first dispatch slice started on the host bus (equals
    /// `admit_ns` for planner-only answers).
    pub first_service_ns: f64,
    /// When its merged answer was ready.
    pub complete_ns: f64,
    /// Candidate shards dispatched.
    pub shards_dispatched: usize,
    /// Active shards pruned by the zone-map planner.
    pub shards_pruned: usize,
}

impl QueryCompletion {
    /// End-to-end sojourn time (arrival → merged answer).
    pub fn latency_ns(&self) -> f64 {
        self.complete_ns - self.arrive_ns
    }

    /// Time spent waiting (admission queue + host-bus queue) before any
    /// service.
    pub fn wait_ns(&self) -> f64 {
        self.first_service_ns - self.arrive_ns
    }

    /// Time from first service to completion.
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.first_service_ns
    }
}

/// Everything one streamed run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The admission policy that ran.
    pub policy: AdmissionPolicy,
    /// Per-query latency records, in completion order (compare with
    /// arrival indices to observe out-of-order completion).
    pub completions: Vec<QueryCompletion>,
    /// Merged executions in arrival order — bit-identical to
    /// [`ClusterEngine::run_batch`] over
    /// [`Workload::arrived_queries`].
    pub executions: Vec<ClusterExecution>,
    /// The full event timeline (deterministic per input).
    pub timeline: Vec<TimelineEvent>,
    /// When the last query completed.
    pub makespan_ns: f64,
    /// Host-bus busy time (dispatch + merge).
    pub host_busy_ns: f64,
    /// Per-active-shard PIM busy time.
    pub shard_busy_ns: Vec<f64>,
}

impl StreamOutcome {
    /// Latency distribution over all completions.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::of(&self.completions)
    }

    /// Completed queries per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_ns / 1e9)
        }
    }

    /// Fraction of the makespan the host bus was busy.
    pub fn host_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.host_busy_ns / self.makespan_ns
        }
    }

    /// Mean per-shard PIM utilisation over the makespan.
    pub fn mean_shard_utilisation(&self) -> f64 {
        if self.makespan_ns <= 0.0 || self.shard_busy_ns.is_empty() {
            return 0.0;
        }
        let mean_busy = self.shard_busy_ns.iter().sum::<f64>() / self.shard_busy_ns.len() as f64;
        mean_busy / self.makespan_ns
    }

    /// The first completion that finished while an earlier arrival was
    /// still pending — the concrete out-of-order evidence, if any.
    pub fn first_overtaker(&self) -> Option<&QueryCompletion> {
        let slots = self.completions.iter().map(|c| c.arrival + 1).max().unwrap_or(0);
        let mut completed = vec![false; slots];
        self.completions.iter().find(|c| {
            completed[c.arrival] = true;
            (0..c.arrival).any(|i| !completed[i])
        })
    }

    /// Queries that finished *after* a later arrival did — i.e. they
    /// were overtaken. Nonzero means out-of-order completion happened.
    pub fn overtaken(&self) -> usize {
        let mut max_seen = None::<usize>;
        let mut n = 0;
        for c in &self.completions {
            if max_seen.is_some_and(|m| m > c.arrival) {
                n += 1;
            }
            max_seen = Some(max_seen.map_or(c.arrival, |m| m.max(c.arrival)));
        }
        n
    }
}

/// The service demand of one query on one shard (from a real
/// execution).
#[derive(Clone)]
struct ShardDemand {
    shard: usize,
    dispatch_ns: f64,
    pim_ns: f64,
}

/// Per-arrival resolved demand.
#[derive(Clone)]
struct Demand {
    query_id: String,
    shards: Vec<ShardDemand>,
    shards_pruned: usize,
    merge_ns: f64,
}

/// Mutable per-arrival simulation state.
#[derive(Clone, Copy)]
struct Progress {
    admit_ns: f64,
    first_service_ns: f64,
    remaining: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrive(usize),
    DispatchDone(usize, usize),
    PimDone(usize, usize),
    MergeDone(usize),
}

/// Heap entry ordered by (time, insertion sequence) — the sequence
/// makes simultaneous events deterministic.
struct HeapEntry {
    t_ns: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t_ns.total_cmp(&other.t_ns) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so `BinaryHeap` pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.t_ns.total_cmp(&self.t_ns).then(other.seq.cmp(&self.seq))
    }
}

/// The simulation state machine.
struct Sim<'a> {
    cfg: &'a SchedConfig,
    workload: &'a Workload,
    demands: Vec<Demand>,
    events: BinaryHeap<HeapEntry>,
    seq: u64,
    host: SharedBus,
    shard_bus: Vec<SharedBus>,
    waiting: Vec<usize>,
    in_flight: usize,
    progress: Vec<Option<Progress>>,
    completions: Vec<QueryCompletion>,
    timeline: Vec<TimelineEvent>,
}

impl Sim<'_> {
    fn push_event(&mut self, t_ns: f64, ev: Ev) {
        self.events.push(HeapEntry { t_ns, seq: self.seq, ev });
        self.seq += 1;
    }

    fn record(&mut self, t_ns: f64, kind: EventKind, arrival: usize, shard: Option<usize>) {
        self.timeline.push(TimelineEvent { t_ns, kind, arrival, shard });
    }

    /// Pick the next admission per policy; `waiting` keeps arrival
    /// order, so FIFO is the front and SCSF is the min candidate count
    /// with arrival order as tiebreak.
    fn pick_next(&self) -> usize {
        match self.cfg.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::ShortestCandidateFirst => self
                .waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, &ai)| (self.demands[ai].shards.len(), ai))
                .map(|(pos, _)| pos)
                .expect("pick_next on an empty queue"),
        }
    }

    /// Admit from the queue while in-flight slots are free.
    fn try_admit(&mut self, now_ns: f64) {
        while self.in_flight < self.cfg.max_in_flight && !self.waiting.is_empty() {
            let ai = self.waiting.remove(self.pick_next());
            self.record(now_ns, EventKind::Admit, ai, None);
            let (n_shards, merge_ns) = (self.demands[ai].shards.len(), self.demands[ai].merge_ns);
            if n_shards == 0 {
                // The planner answered the query: nothing to dispatch,
                // the (empty) merge is free, the slot never fills.
                debug_assert_eq!(merge_ns, 0.0, "empty merges cost nothing");
                self.complete(
                    now_ns,
                    ai,
                    Progress { admit_ns: now_ns, first_service_ns: now_ns, remaining: 0 },
                );
                continue;
            }
            self.in_flight += 1;
            // The host posts this query's descriptors shard by shard;
            // the bus serialises them against everything else in
            // flight.
            let mut first_service_ns = f64::INFINITY;
            for si in 0..n_shards {
                let (shard, dispatch_ns) = {
                    let d = &self.demands[ai].shards[si];
                    (d.shard, d.dispatch_ns)
                };
                let grant = self.host.acquire(now_ns, dispatch_ns);
                first_service_ns = first_service_ns.min(grant.start_ns);
                self.push_event(grant.end_ns, Ev::DispatchDone(ai, shard));
            }
            self.progress[ai] =
                Some(Progress { admit_ns: now_ns, first_service_ns, remaining: n_shards });
        }
    }

    fn complete(&mut self, now_ns: f64, ai: usize, p: Progress) {
        self.record(now_ns, EventKind::Complete, ai, None);
        let d = &self.demands[ai];
        self.completions.push(QueryCompletion {
            arrival: ai,
            query_id: d.query_id.clone(),
            arrive_ns: self.workload.arrivals()[ai].at_ns,
            admit_ns: p.admit_ns,
            first_service_ns: p.first_service_ns,
            complete_ns: now_ns,
            shards_dispatched: d.shards.len(),
            shards_pruned: d.shards_pruned,
        });
    }

    fn run(mut self, executions: Vec<ClusterExecution>) -> StreamOutcome {
        let policy = self.cfg.policy;
        while let Some(entry) = self.events.pop() {
            let t = entry.t_ns;
            match entry.ev {
                Ev::Arrive(ai) => {
                    self.record(t, EventKind::Arrive, ai, None);
                    self.waiting.push(ai);
                    self.try_admit(t);
                }
                Ev::DispatchDone(ai, shard) => {
                    self.record(t, EventKind::Dispatched, ai, Some(shard));
                    let pim_ns = self.demands[ai]
                        .shards
                        .iter()
                        .find(|d| d.shard == shard)
                        .expect("dispatched shard has a demand")
                        .pim_ns;
                    let grant = self.shard_bus[shard].acquire(t, pim_ns);
                    self.push_event(grant.end_ns, Ev::PimDone(ai, shard));
                }
                Ev::PimDone(ai, shard) => {
                    self.record(t, EventKind::ShardDone, ai, Some(shard));
                    let p = self.progress[ai].as_mut().expect("in-flight query has progress");
                    p.remaining -= 1;
                    if p.remaining == 0 {
                        let grant = self.host.acquire(t, self.demands[ai].merge_ns);
                        self.push_event(grant.end_ns, Ev::MergeDone(ai));
                    }
                }
                Ev::MergeDone(ai) => {
                    let p = self.progress[ai].take().expect("merging query has progress");
                    self.complete(t, ai, p);
                    self.in_flight -= 1;
                    self.try_admit(t);
                }
            }
        }
        let makespan_ns = self.completions.iter().map(|c| c.complete_ns).fold(0.0, f64::max);
        StreamOutcome {
            policy,
            completions: self.completions,
            executions,
            timeline: self.timeline,
            makespan_ns,
            host_busy_ns: self.host.busy_ns(),
            shard_busy_ns: self.shard_bus.iter().map(SharedBus::busy_ns).collect(),
        }
    }
}

/// The host-dispatch slice of one shard execution.
fn dispatch_ns(exec: &QueryExecution) -> f64 {
    exec.report.phases.time_in(PhaseKind::HostDispatch)
}

/// Stream `workload` through `cluster` under `cfg`.
///
/// Service demands come from real per-shard executions, so the merged
/// answers in [`StreamOutcome::executions`] are bit-identical to
/// [`ClusterEngine::run_batch`] over the same arrived queries; the
/// discrete-event timeline then decides *when* each query's slices run
/// under admission control, per-shard FIFO queues and the shared
/// dispatch bus.
///
/// # Errors
///
/// [`SchedError::InvalidConfig`] for a zero in-flight bound;
/// cluster/planner failures otherwise.
pub fn run_stream(
    cluster: &mut ClusterEngine,
    workload: &Workload,
    cfg: &SchedConfig,
) -> Result<StreamOutcome, SchedError> {
    if cfg.max_in_flight == 0 {
        return Err(SchedError::InvalidConfig("max_in_flight must be at least 1".into()));
    }

    // Resolve every *distinct* query's service demand once by
    // executing its shard slices (deterministic and read-only, so
    // repeated arrivals of the same query share the computation) and
    // merging the partials exactly as `run`/`run_batch` would.
    let mut by_query: Vec<Option<(Demand, ClusterExecution)>> = Vec::new();
    by_query.resize_with(workload.queries().len(), || None);
    let mut demands = Vec::with_capacity(workload.len());
    let mut executions = Vec::with_capacity(workload.len());
    for arrival in workload.arrivals() {
        if by_query[arrival.query].is_none() {
            let query = &workload.queries()[arrival.query];
            let mask = cluster.plan_shards(&query.filter)?;
            let candidates: Vec<usize> =
                mask.iter().enumerate().filter(|(_, &d)| d).map(|(s, _)| s).collect();
            let mut shard_execs = Vec::with_capacity(candidates.len());
            for &s in &candidates {
                shard_execs.push((s, cluster.run_on_shard(s, query)?));
            }
            let refs: Vec<&QueryExecution> = shard_execs.iter().map(|(_, e)| e).collect();
            let shards_pruned = mask.len() - candidates.len();
            let merged = cluster.merge_executions(query, &refs, shards_pruned);
            let demand = Demand {
                query_id: query.id.clone(),
                shards: shard_execs
                    .iter()
                    .map(|(s, e)| ShardDemand {
                        shard: *s,
                        dispatch_ns: dispatch_ns(e),
                        pim_ns: e.report.time_ns - dispatch_ns(e),
                    })
                    .collect(),
                shards_pruned,
                merge_ns: merged.report.merge_time_ns,
            };
            by_query[arrival.query] = Some((demand, merged));
        }
        let (demand, merged) = by_query[arrival.query].as_ref().expect("resolved above");
        demands.push(demand.clone());
        executions.push(merged.clone());
    }

    let mut sim = Sim {
        cfg,
        workload,
        demands,
        events: BinaryHeap::new(),
        seq: 0,
        host: SharedBus::new(),
        shard_bus: vec![SharedBus::new(); cluster.active_shards()],
        waiting: Vec::new(),
        in_flight: 0,
        progress: vec![None; workload.len()],
        completions: Vec::with_capacity(workload.len()),
        timeline: Vec::new(),
    };
    for (ai, arrival) in workload.arrivals().iter().enumerate() {
        sim.push_event(arrival.at_ns, Ev::Arrive(ai));
    }
    Ok(sim.run(executions))
}
