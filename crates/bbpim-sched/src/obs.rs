//! Fold a [`StreamOutcome`] into the metrics registry.
//!
//! One call turns everything a streamed run measured — latency
//! distribution, host-channel utilisation *and* raw demand, queue
//! behaviour, per-phase-kind time/energy/bytes, per-module cell wear —
//! into named registry series, so bench bins and the CI gate read one
//! surface instead of scraping ad-hoc printouts.

use bbpim_trace::phases::record_run_log;
use bbpim_trace::MetricsRegistry;

use crate::sched::StreamOutcome;
use crate::EventKind;

/// Completed queries, counter.
pub const COMPLETIONS: &str = "bbpim_stream_completions_total";
/// Queries that finished after a later arrival (out-of-order), counter.
pub const OVERTAKEN: &str = "bbpim_stream_overtaken_total";
/// Saturated host-channel utilisation over the makespan, gauge.
pub const HOST_UTILISATION: &str = "bbpim_host_bus_utilisation";
/// Raw (unclamped) host-channel demand ratio, gauge.
pub const HOST_DEMAND: &str = "bbpim_host_bus_demand_ratio";
/// Mean per-shard PIM utilisation, gauge.
pub const SHARD_UTILISATION: &str = "bbpim_shard_utilisation_mean";
/// Completed queries per simulated second, gauge.
pub const THROUGHPUT_QPS: &str = "bbpim_stream_throughput_qps";
/// Simulated makespan, gauge (ns).
pub const MAKESPAN_NS: &str = "bbpim_stream_makespan_ns";
/// Peak admission-queue depth, gauge.
pub const QUEUE_PEAK: &str = "bbpim_admission_queue_peak";
/// End-to-end latency histogram (ns) plus
/// `_p50/_p95/_p99/_p999/_mean/_max` gauges.
pub const LATENCY_NS: &str = "bbpim_stream_latency_ns";
/// Pre-service wait histogram (ns).
pub const WAIT_NS: &str = "bbpim_stream_wait_ns";
/// Service-time histogram (ns).
pub const SERVICE_NS: &str = "bbpim_stream_service_ns";
/// Mutations durably applied, counter (absent for pure-query runs).
pub const INGEST_COMPLETIONS: &str = "bbpim_ingest_completions_total";
/// Backpressure stall episodes at the ingest-queue head, counter.
pub const INGEST_STALLS: &str = "bbpim_ingest_stalls_total";
/// Total simulated time the ingest-queue head spent stalled, gauge (ns).
pub const INGEST_STALL_NS: &str = "bbpim_ingest_stall_ns";
/// Mutation arrival→durable latency histogram (ns) plus
/// `_p50/_p95/_p99/_mean/_max` gauges.
pub const INGEST_LATENCY_NS: &str = "bbpim_ingest_latency_ns";
/// Mutation ingest-queue wait histogram (ns), backpressure included.
pub const INGEST_WAIT_NS: &str = "bbpim_ingest_wait_ns";
/// Records rewritten in place by admitted UPDATEs, counter.
pub const INGEST_RECORDS_UPDATED: &str = "bbpim_ingest_records_updated_total";
/// Records appended by admitted INSERTs, counter.
pub const INGEST_RECORDS_INSERTED: &str = "bbpim_ingest_records_inserted_total";
pub use bbpim_trace::phases::{CELL_WRITES, REQUIRED_ENDURANCE};

/// Record everything `outcome` measured into `reg`, labelling every
/// series with `labels` (typically `run=<study row>`); per-module
/// series additionally carry `module=<active shard index>`.
pub fn record_stream_metrics(
    reg: &mut MetricsRegistry,
    outcome: &StreamOutcome,
    labels: &[(&str, &str)],
) {
    reg.counter_add(COMPLETIONS, labels, outcome.completions.len() as f64);
    reg.counter_add(OVERTAKEN, labels, outcome.overtaken() as f64);
    reg.gauge_set(HOST_UTILISATION, labels, outcome.host_utilisation());
    reg.gauge_set(HOST_DEMAND, labels, outcome.host_demand());
    reg.gauge_set(SHARD_UTILISATION, labels, outcome.mean_shard_utilisation());
    reg.gauge_set(THROUGHPUT_QPS, labels, outcome.throughput_qps());
    reg.gauge_set(MAKESPAN_NS, labels, outcome.makespan_ns);

    let s = outcome.latency_summary();
    for (suffix, v) in [
        ("_p50", s.p50_ns),
        ("_p95", s.p95_ns),
        ("_p99", s.p99_ns),
        ("_p999", s.p999_ns),
        ("_mean", s.mean_ns),
        ("_max", s.max_ns),
    ] {
        reg.gauge_set(&format!("{LATENCY_NS}{suffix}"), labels, v);
    }
    for c in &outcome.completions {
        reg.observe(LATENCY_NS, labels, c.latency_ns());
        reg.observe(WAIT_NS, labels, c.wait_ns());
        reg.observe(SERVICE_NS, labels, c.service_ns());
    }

    // Ingest series only when the run actually streamed mutations —
    // pure-query runs keep exactly the metric surface they always had.
    if !outcome.mutation_completions.is_empty() || outcome.ingest_stalls > 0 {
        reg.counter_add(INGEST_COMPLETIONS, labels, outcome.mutation_completions.len() as f64);
        reg.counter_add(INGEST_STALLS, labels, outcome.ingest_stalls as f64);
        reg.gauge_set(INGEST_STALL_NS, labels, outcome.ingest_stall_ns);
        let m = outcome.mutation_latency_summary();
        for (suffix, v) in [
            ("_p50", m.p50_ns),
            ("_p95", m.p95_ns),
            ("_p99", m.p99_ns),
            ("_mean", m.mean_ns),
            ("_max", m.max_ns),
        ] {
            reg.gauge_set(&format!("{INGEST_LATENCY_NS}{suffix}"), labels, v);
        }
        let mut updated = 0u64;
        let mut inserted = 0u64;
        for c in &outcome.mutation_completions {
            reg.observe(INGEST_LATENCY_NS, labels, c.latency_ns());
            reg.observe(INGEST_WAIT_NS, labels, c.wait_ns());
            updated += c.records_updated;
            inserted += c.records_inserted;
        }
        reg.counter_add(INGEST_RECORDS_UPDATED, labels, updated as f64);
        reg.counter_add(INGEST_RECORDS_INSERTED, labels, inserted as f64);
    }

    // Peak admission-queue depth, replayed from the event timeline.
    let mut depth = 0i64;
    let mut peak = 0i64;
    for ev in &outcome.timeline {
        match ev.kind {
            EventKind::Arrive => {
                depth += 1;
                peak = peak.max(depth);
            }
            EventKind::Admit => depth -= 1,
            _ => {}
        }
    }
    reg.gauge_set(QUEUE_PEAK, labels, peak as f64);

    // Per-phase-kind time / energy / host bytes over every executed
    // shard slice (per arrival: repeated queries cost the channel each
    // time they run).
    for exec in &outcome.executions {
        for shard in &exec.report.per_shard {
            record_run_log(reg, &shard.phases, labels);
        }
    }

    // Per-module cell wear (the dormant endurance model, surfaced).
    for (m, writes) in outcome.shard_cell_writes.iter().enumerate() {
        if *writes == 0 {
            continue;
        }
        let module = m.to_string();
        let mut with_module = labels.to_vec();
        with_module.push(("module", module.as_str()));
        reg.counter_add(CELL_WRITES, &with_module, *writes as f64);
    }
    for (m, req) in outcome.shard_required_endurance.iter().enumerate() {
        if *req <= 0.0 {
            continue;
        }
        let module = m.to_string();
        let mut with_module = labels.to_vec();
        with_module.push(("module", module.as_str()));
        reg.gauge_max(REQUIRED_ENDURANCE, &with_module, *req);
    }
}
