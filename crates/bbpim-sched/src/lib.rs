//! # bbpim-sched — streaming query scheduling for the PIM cluster
//!
//! The batch layers answer "how fast is one query / one closed batch";
//! this crate answers the serving question the ROADMAP's north star
//! asks: what happens when queries *arrive over time* — heavy traffic
//! from many independent users — against a sharded PIM cluster?
//!
//! * [`workload::Workload`] — timestamped arrival traces over a query
//!   set: seeded Poisson ([`Workload::poisson`]), closed bursts
//!   ([`Workload::burst`]), hand-written traces, or mixed HTAP streams
//!   interleaving queries with mutations on one seeded clock
//!   ([`Workload::poisson_htap`]).
//! * [`sched::run_stream`] — a deterministic discrete-event scheduler:
//!   admission control bounds in-flight queries (backpressure, FIFO or
//!   shortest-candidate-set-first order), each admitted query is
//!   zone-map-planned to its candidate shards, shard slices queue on
//!   per-shard FIFO servers (PIM phases on different modules overlap),
//!   and every per-page dispatch serialises on one shared host bus
//!   ([`bbpim_sim::hostbus::SharedBus`]). Queries complete out of
//!   order; answers are **bit-identical** to
//!   [`bbpim_cluster::ClusterEngine::run_batch`] over the same queries
//!   — only timing and order differ.
//! * **Streaming ingest** — mutation arrivals are first-class
//!   scheduler citizens: strict-FIFO admission behind a bounded
//!   per-lane ingest buffer ([`SchedConfig::ingest_buffer`],
//!   deterministic backpressure stalls), write phases on the shared
//!   host channel alongside query traffic, and snapshot-consistent
//!   queries — each answer reflects exactly the mutations admitted
//!   before it ([`QueryCompletion::epoch`]), bit-identical to a
//!   prefix-replay oracle.
//! * [`report::LatencySummary`] — per-query queue-wait vs service
//!   decomposition, p50/p95/p99/mean/max latency, plus throughput and
//!   host/shard utilisation on [`sched::StreamOutcome`].
//!
//! ```
//! use bbpim_cluster::{ClusterEngine, Partitioner};
//! use bbpim_core::modes::EngineMode;
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_sched::{run_stream, SchedConfig, Workload};
//! use bbpim_sim::SimConfig;
//!
//! let wide = SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin();
//! let mut cluster = ClusterEngine::new(
//!     SimConfig::default(), wide, EngineMode::OneXb, 4, Partitioner::range_by_attr("d_year"))?;
//! // Four Q1-style arrivals over 2 ms, admission bounded to 2 in flight.
//! let qs: Vec<_> =
//!     ["Q1.1", "Q1.2", "Q1.3"].iter().map(|id| queries::standard_query(id).unwrap()).collect();
//! let workload = Workload::poisson(qs, 4, 500_000.0, 7);
//! let out = run_stream(&mut cluster, &workload, &SchedConfig { max_in_flight: 2, ..Default::default() })?;
//! assert_eq!(out.completions.len(), 4);
//! let s = out.latency_summary();
//! println!("p50 {:.3} ms, p99 {:.3} ms, {:.0} q/s", s.p50_ns / 1e6, s.p99_ns / 1e6,
//!     out.throughput_qps());
//! # Ok::<(), bbpim_sched::SchedError>(())
//! ```

pub mod demand;
pub mod error;
pub mod obs;
pub mod report;
pub mod sched;
pub mod workload;

pub use demand::{
    compile_log_slices, compile_mutation_demand, resolve_query_demand, MutationDemand, QueryDemand,
    ShardDemand, Slice, SliceChain,
};
pub use error::SchedError;
pub use obs::record_stream_metrics;
pub use report::LatencySummary;
pub use sched::{
    run_stream, run_stream_traced, AdmissionPolicy, EventKind, MutationCompletion, QueryCompletion,
    SchedConfig, StreamEngine, StreamOutcome, TimelineEvent, ENDURANCE_YEARS,
};
pub use workload::{Arrival, MutationArrival, Workload};

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_cluster::{ClusterEngine, Partitioner};
    use bbpim_core::modes::EngineMode;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, Query};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::config::SimConfig;

    fn relation(rows: u64) -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_year", 3),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[(3 * i + 1) % 251, i % 11, i % 7]).unwrap();
        }
        rel
    }

    fn year_probe(y: u64) -> Query {
        Query::single(
            format!("y{y}"),
            vec![Atom::Eq { attr: "d_year".into(), value: y.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        )
    }

    fn broad() -> Query {
        Query::single(
            "broad",
            vec![Atom::Gt { attr: "lo_price".into(), value: 0u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Mul("lo_price".into(), "lo_disc".into()),
        )
    }

    fn cluster(shards: usize) -> ClusterEngine {
        ClusterEngine::new(
            SimConfig::small_for_tests(),
            relation(1400),
            EngineMode::OneXb,
            shards,
            Partitioner::range_by_attr("d_year"),
        )
        .unwrap()
    }

    #[test]
    fn streamed_answers_match_run_batch_and_complete_all() {
        let mut c = cluster(7);
        let workload = Workload::poisson(
            vec![broad(), year_probe(1), year_probe(3), year_probe(5)],
            12,
            50_000.0,
            11,
        );
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.completions.len(), 12);
        assert_eq!(out.executions.len(), 12);
        let batch = c.run_batch(&workload.arrived_queries()).unwrap();
        for (streamed, batched) in out.executions.iter().zip(&batch.executions) {
            assert_eq!(streamed.groups, batched.groups);
            assert_eq!(streamed.report, batched.report);
        }
    }

    #[test]
    fn short_pruned_query_overtakes_a_broad_one() {
        // Zone-map pruning makes the two candidate sets disjoint: the
        // long query covers years 0..=5 (six shards of expression
        // work), the probe needs only the year-6 shard — which the
        // long query never touches. The probe arrives later, pays only
        // its turn on the shared dispatch bus, runs on an idle module
        // and finishes first.
        let mut c = cluster(7);
        let long = Query::single(
            "long",
            vec![Atom::Between { attr: "d_year".into(), lo: 0u64.into(), hi: 5u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Mul("lo_price".into(), "lo_disc".into()),
        );
        let workload = Workload::new(
            vec![long, year_probe(6)],
            vec![Arrival { at_ns: 0.0, query: 0 }, Arrival { at_ns: 1.0, query: 1 }],
        )
        .unwrap();
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.completions[0].arrival, 1, "the pruned probe completes first");
        assert_eq!(out.completions[1].arrival, 0);
        assert_eq!(out.overtaken(), 1);
        assert_eq!(out.first_overtaker().map(|c| c.arrival), Some(1), "the probe overtook");
        assert_eq!(out.completions[0].shards_pruned, 6);
        assert_eq!(out.completions[1].shards_dispatched, 6);
        // its wait is the long query's bus occupancy, not its service
        assert!(out.completions[0].wait_ns() > 0.0);
        assert!(
            out.completions[0].latency_ns() < out.completions[1].latency_ns(),
            "pruning must shield the short query from the long one"
        );
    }

    #[test]
    fn same_seed_same_timeline() {
        let workload =
            Workload::poisson(vec![broad(), year_probe(2), year_probe(4)], 16, 30_000.0, 5);
        let run = |policy| {
            let mut c = cluster(5);
            run_stream(
                &mut c,
                &workload,
                &SchedConfig { max_in_flight: 3, policy, ..SchedConfig::default() },
            )
            .unwrap()
        };
        for policy in AdmissionPolicy::all() {
            let a = run(policy);
            let b = run(policy);
            assert_eq!(a.timeline, b.timeline, "{}", policy.label());
            assert_eq!(a.completions, b.completions, "{}", policy.label());
            assert_eq!(a.makespan_ns, b.makespan_ns, "{}", policy.label());
        }
    }

    #[test]
    fn admission_bound_creates_backpressure() {
        let workload = Workload::burst(vec![broad(); 6]);
        let mut c = cluster(3);
        let tight = run_stream(
            &mut c,
            &workload,
            &SchedConfig {
                max_in_flight: 1,
                policy: AdmissionPolicy::Fifo,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let wide = run_stream(
            &mut c,
            &workload,
            &SchedConfig {
                max_in_flight: 6,
                policy: AdmissionPolicy::Fifo,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        // One-at-a-time admission serialises identical queries end to
        // end; with all six admitted the host bus still serialises
        // dispatch but PIM work pipelines, so waiting shrinks.
        assert!(tight.latency_summary().mean_wait_ns > wide.latency_summary().mean_wait_ns);
        assert!(tight.makespan_ns >= wide.makespan_ns);
        // In-flight bound respected: with max 1, every query is
        // admitted only after the previous completed.
        let mut last_complete = 0.0f64;
        for c in &tight.completions {
            assert!(c.admit_ns >= last_complete);
            last_complete = c.complete_ns;
        }
    }

    #[test]
    fn scsf_prefers_pruned_queries_under_backpressure() {
        // Queue three broad queries and one pruned probe behind a
        // 1-slot admission gate: FIFO admits in arrival order, SCSF
        // jumps the probe (1 candidate shard) ahead of the waiting
        // broad queries (7 candidate shards).
        let queries = vec![broad(), year_probe(5)];
        let arrivals = vec![
            Arrival { at_ns: 0.0, query: 0 },
            Arrival { at_ns: 1.0, query: 0 },
            Arrival { at_ns: 2.0, query: 0 },
            Arrival { at_ns: 3.0, query: 1 },
        ];
        let workload = Workload::new(queries, arrivals).unwrap();
        let run = |policy| {
            let mut c = cluster(7);
            run_stream(
                &mut c,
                &workload,
                &SchedConfig { max_in_flight: 1, policy, ..SchedConfig::default() },
            )
            .unwrap()
        };
        let fifo = run(AdmissionPolicy::Fifo);
        let scsf = run(AdmissionPolicy::ShortestCandidateFirst);
        let order = |o: &StreamOutcome| -> Vec<usize> {
            o.completions.iter().map(|c| c.arrival).collect::<Vec<_>>()
        };
        assert_eq!(order(&fifo), vec![0, 1, 2, 3]);
        assert_eq!(order(&scsf), vec![0, 3, 1, 2], "the probe jumps the queue");
        let probe_latency =
            |o: &StreamOutcome| o.completions.iter().find(|c| c.arrival == 3).unwrap().latency_ns();
        assert!(probe_latency(&scsf) < probe_latency(&fifo));
        // identical answers under both policies
        for (a, b) in fifo.executions.iter().zip(&scsf.executions) {
            assert_eq!(a.groups, b.groups);
        }
    }

    #[test]
    fn planner_only_queries_complete_at_admission() {
        let mut c = cluster(4);
        let impossible = Query::single(
            "never",
            vec![Atom::Gt { attr: "lo_price".into(), value: 254u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_price".into()),
        );
        let workload =
            Workload::new(vec![impossible], vec![Arrival { at_ns: 40.0, query: 0 }]).unwrap();
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.completions.len(), 1);
        let c0 = &out.completions[0];
        assert_eq!(c0.complete_ns, 40.0);
        assert_eq!(c0.latency_ns(), 0.0);
        assert_eq!(c0.shards_dispatched, 0);
        assert!(out.executions[0].groups.is_empty());
        assert_eq!(out.makespan_ns, 40.0);
    }

    #[test]
    fn utilisation_and_throughput_are_consistent() {
        let mut c = cluster(4);
        let workload = Workload::poisson(vec![broad(), year_probe(3)], 10, 20_000.0, 3);
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert!(out.makespan_ns > 0.0);
        assert!(out.throughput_qps() > 0.0);
        assert!(out.host_utilisation() > 0.0 && out.host_utilisation() <= 1.0);
        assert!(out.mean_shard_utilisation() > 0.0 && out.mean_shard_utilisation() <= 1.0);
        // host busy time equals the channel-occupancy + merge demand
        // total (under contention every tagged transfer rides the bus)
        let demand: f64 =
            out.executions.iter().map(|e| e.report.host_bus_time_ns + e.report.merge_time_ns).sum();
        assert!((out.host_busy_ns - demand).abs() < 1e-6);
        assert!(
            demand
                > out
                    .executions
                    .iter()
                    .map(|e| e.report.dispatch_time_ns + e.report.merge_time_ns)
                    .sum::<f64>(),
            "transfers must add bused work beyond dispatch + merge"
        );
    }

    #[test]
    fn zero_in_flight_bound_is_rejected() {
        let mut c = cluster(2);
        let workload = Workload::burst(vec![broad()]);
        let r = run_stream(
            &mut c,
            &workload,
            &SchedConfig {
                max_in_flight: 0,
                policy: AdmissionPolicy::Fifo,
                ..SchedConfig::default()
            },
        );
        assert!(matches!(r, Err(SchedError::InvalidConfig(_))));
    }

    #[test]
    fn empty_workload_is_a_quiet_success() {
        let mut c = cluster(2);
        let workload = Workload::new(vec![broad()], vec![]).unwrap();
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert!(out.completions.is_empty());
        assert_eq!(out.makespan_ns, 0.0);
        assert_eq!(out.throughput_qps(), 0.0);
        assert_eq!(out.ingest_stalls, 0);
    }

    // ---- streaming ingest (mutations as first-class arrivals) ----

    use bbpim_core::mutation::Mutation;
    use bbpim_db::builder::col;
    use workload::MutationArrival;

    fn disc_probe(y: u64) -> Query {
        Query::single(
            format!("disc{y}"),
            vec![Atom::Eq { attr: "d_year".into(), value: y.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::Attr("lo_disc".into()),
        )
    }

    fn disc_update(y: u64, v: u64) -> Mutation {
        Mutation::update().filter(col("d_year").eq(y)).set("lo_disc", v).build_unchecked()
    }

    #[test]
    fn queries_observe_exactly_the_mutations_admitted_before_them() {
        let mut c = cluster(3);
        // q at t=0 (epoch 0), UPDATE at t=10, q again well after (epoch 1)
        let workload = Workload::with_mutations(
            vec![disc_probe(3)],
            vec![Arrival { at_ns: 0.0, query: 0 }, Arrival { at_ns: 1e9, query: 0 }],
            vec![disc_update(3, 15)],
            vec![MutationArrival { at_ns: 10.0, mutation: 0 }],
        )
        .unwrap();
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.completions.len(), 2);
        assert_eq!(out.mutation_completions.len(), 1);
        let by_arrival = |a: usize| out.completions.iter().find(|x| x.arrival == a).unwrap();
        assert_eq!(by_arrival(0).epoch, 0, "first query pre-dates the ingest");
        assert_eq!(by_arrival(1).epoch, 1, "second query observes the update");
        let mc = &out.mutation_completions[0];
        assert!(mc.records_updated > 0);
        assert_eq!(mc.epoch, 1);
        assert!(mc.complete_ns >= mc.admit_ns && mc.admit_ns >= mc.arrive_ns);
        // prefix-replay oracle: epoch-0 answer on a fresh cluster,
        // epoch-1 answer after applying the mutation
        let mut fresh = cluster(3);
        let before = fresh.run(&disc_probe(3)).unwrap();
        assert_eq!(out.executions[0].groups, before.groups);
        fresh.mutate(&disc_update(3, 15)).unwrap();
        let after = fresh.run(&disc_probe(3)).unwrap();
        assert_eq!(out.executions[1].groups, after.groups);
        assert_ne!(before.groups, after.groups, "the update must change the answer");
    }

    #[test]
    fn bounded_ingest_buffer_stalls_and_drains_fifo() {
        let mut c = cluster(3);
        // Four updates on the same zone-planned lane at (almost) once
        // behind a 1-deep buffer: the head admits, the rest stall.
        let arrivals = (0..4).map(|i| MutationArrival { at_ns: i as f64, mutation: 0 }).collect();
        let workload = Workload::with_mutations(
            vec![disc_probe(1)],
            vec![Arrival { at_ns: 2.0, query: 0 }],
            vec![disc_update(3, 9)],
            arrivals,
        )
        .unwrap();
        let cfg = SchedConfig { ingest_buffer: 1, ..SchedConfig::default() };
        let out = run_stream(&mut c, &workload, &cfg).unwrap();
        assert_eq!(out.mutation_completions.len(), 4, "backpressure must not deadlock");
        assert!(out.ingest_stalls > 0, "a 1-deep buffer under 4 back-to-back writes stalls");
        assert!(out.ingest_stall_ns > 0.0);
        assert!(out.timeline.iter().any(|e| e.kind == EventKind::MutationStall));
        // strict FIFO: admissions in arrival order, one in flight at a time
        let admits: Vec<usize> = out
            .timeline
            .iter()
            .filter(|e| e.kind == EventKind::MutationAdmit)
            .map(|e| e.arrival)
            .collect();
        assert_eq!(admits, vec![0, 1, 2, 3]);
        let epochs: Vec<usize> = out.mutation_completions.iter().map(|m| m.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3, 4]);
        // the query still completes, against some well-defined prefix
        assert_eq!(out.completions.len(), 1);
        // and the run is deterministic, stalls included
        let mut c2 = cluster(3);
        let again = run_stream(&mut c2, &workload, &cfg).unwrap();
        assert_eq!(out.timeline, again.timeline);
        assert_eq!(out.ingest_stall_ns, again.ingest_stall_ns);
    }

    #[test]
    fn inserts_route_round_robin_and_later_queries_see_them() {
        let mut c = cluster(3);
        let schema = relation(1).schema().clone();
        let ins =
            Mutation::insert().row([200u64, 5, 6]).row([201u64, 5, 6]).build(&schema).unwrap();
        let workload = Workload::with_mutations(
            vec![disc_probe(6)],
            vec![Arrival { at_ns: 0.0, query: 0 }, Arrival { at_ns: 1e9, query: 0 }],
            vec![ins.clone()],
            vec![MutationArrival { at_ns: 100.0, mutation: 0 }],
        )
        .unwrap();
        let out = run_stream(&mut c, &workload, &SchedConfig::default()).unwrap();
        assert_eq!(out.mutation_completions[0].records_inserted, 2);
        let mut fresh = cluster(3);
        let before = fresh.run(&disc_probe(6)).unwrap();
        fresh.mutate(&ins).unwrap();
        let after = fresh.run(&disc_probe(6)).unwrap();
        assert_eq!(out.executions[0].groups, before.groups);
        assert_eq!(out.executions[1].groups, after.groups);
        assert_ne!(before.groups, after.groups, "inserted rows must show up");
        // ingest wear is accounted on the lanes the rows landed on
        assert!(out.shard_cell_writes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn mutation_write_phases_ride_the_shared_bus() {
        // With contention on, a mutation's host bus occupancy joins
        // host_busy_ns: the streamed busy time must exceed what the
        // queries alone account for.
        let workload_q =
            Workload::new(vec![disc_probe(3)], vec![Arrival { at_ns: 0.0, query: 0 }]).unwrap();
        let workload_m = Workload::with_mutations(
            vec![disc_probe(3)],
            vec![Arrival { at_ns: 0.0, query: 0 }],
            vec![disc_update(3, 9)],
            vec![MutationArrival { at_ns: 0.0, mutation: 0 }],
        )
        .unwrap();
        let mut c1 = cluster(3);
        let queries_only = run_stream(&mut c1, &workload_q, &SchedConfig::default()).unwrap();
        let mut c2 = cluster(3);
        let with_ingest = run_stream(&mut c2, &workload_m, &SchedConfig::default()).unwrap();
        assert!(
            with_ingest.host_busy_ns > queries_only.host_busy_ns,
            "ingest write phases must occupy the shared channel"
        );
        assert!(with_ingest.shard_required_endurance.iter().any(|&e| e > 0.0));
    }

    #[test]
    fn zero_ingest_buffer_is_rejected() {
        let mut c = cluster(2);
        let workload = Workload::burst(vec![broad()]);
        let r = run_stream(
            &mut c,
            &workload,
            &SchedConfig { ingest_buffer: 0, ..SchedConfig::default() },
        );
        assert!(matches!(r, Err(SchedError::InvalidConfig(_))));
    }
}
