//! # bbpim-core — the bulk-bitwise PIM OLAP engine
//!
//! This crate implements the contribution of *"Enabling Relational
//! Database Analytical Processing in Bulk-Bitwise Processing-In-Memory"*
//! (Perach, Ronen, Kvatinsky — SOCC 2023) on top of the
//! [`bbpim_sim`] hardware substrate and the [`bbpim_db`] relational
//! substrate:
//!
//! * **Pre-joined relations in PIM** — [`layout`] maps the wide
//!   (denormalised) relation onto crossbar rows, either whole
//!   (`one-xb`) or vertically partitioned fact/dimension (`two-xb`,
//!   Section III), and [`loader`] installs it bit-exactly.
//! * **Full-query execution** — [`engine::PimQueryEngine`] runs SSB-style
//!   queries end to end: compiled bulk-bitwise filters
//!   ([`filter_exec`]), in-crossbar arithmetic for aggregate
//!   expressions, and aggregation through the peripheral circuit or the
//!   pure bulk-bitwise PIMDB baseline ([`agg_exec`], [`modes`]).
//! * **Hybrid GROUP-BY** (Section IV) — [`groupby`] samples one 2 MB
//!   page, estimates subgroup sizes, fits/evaluates the empirical
//!   latency model (Eqs. 1–3), assigns the k largest subgroups to
//!   *pim-gb* and the tail to *host-gb*.
//! * **Mutations via the PIM multiplexer** (Algorithm 1) — [`mutation`]
//!   (API v2) maintains PIM-resident data with zero reads: UPDATE with
//!   full `And`/`Or` filter trees and multi-column SET, plus INSERT
//!   appending rows online ([`update`] is the deprecated v1 shim).
//! * **Zone-map-driven physical planning** — [`planner`] tests a
//!   query's bound intervals ([`bbpim_db::plan::FilterBounds`]) against
//!   per-page min/max zone maps built at load time, and every execution
//!   stage (filter, aggregation, GROUP BY, UPDATE) runs only over the
//!   planned [`planner::PageSet`]; pruned pages are never activated and
//!   cost no per-page host orchestration.
//!
//! ```no_run
//! use bbpim_core::engine::PimQueryEngine;
//! use bbpim_core::modes::EngineMode;
//! use bbpim_db::ssb::{queries, SsbDb, SsbParams};
//! use bbpim_sim::SimConfig;
//!
//! let db = SsbDb::generate(&SsbParams::uniform(0.01));
//! let wide = db.prejoin();
//! let mut engine = PimQueryEngine::new(SimConfig::default(), wide, EngineMode::OneXb)?;
//! let q = bbpim_db::ssb::queries::standard_query("Q1.1").unwrap();
//! let out = engine.run(&q)?;
//! println!("{} in {:.3} ms", q.id, out.report.time_ns / 1e6);
//! # Ok::<(), bbpim_core::CoreError>(())
//! ```

pub mod agg_exec;
pub mod engine;
pub mod error;
pub mod filter_exec;
pub mod groupby;
pub mod layout;
pub mod loader;
pub mod modes;
pub mod mutation;
pub mod obs;
pub mod planner;
pub mod result;
pub mod semijoin;
pub mod update;

pub use engine::PimQueryEngine;
pub use error::CoreError;
pub use modes::EngineMode;
pub use mutation::{Mutation, MutationBuilder, MutationReport};
