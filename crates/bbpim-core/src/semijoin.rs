//! Semijoin mask programs: AND a dimension's key bitmap into the fact
//! mask *through the foreign-key column*, entirely on-module.
//!
//! A star join runs each dimension's filter on the dimension's own
//! module, yielding a bitmap over that dimension's (dense) key space.
//! The bitmap crosses the host channel once, compressed; expanding it
//! against millions of fact rows must NOT — the host would have to
//! write a bit per fact record, which is exactly the wide-mask traffic
//! the normalized storage model exists to avoid. Instead the bitmap is
//! decomposed into *runs* of consecutive selected keys, and each run
//! compiles to a range predicate over the fact table's FK column: a
//! run of width 1 is an equality, wider runs a BETWEEN. The fact-side
//! program then evaluates
//!
//! ```text
//! mask = OR over disjuncts ( AND(fact atoms)
//!                            AND per-dim OR(run predicates) )
//!        AND validity
//! ```
//!
//! in one [`Microprogram`] — bulk-bitwise cycles on the fact module,
//! zero channel bytes. Selective dimension filters (the Q1.x class)
//! produce few runs and tiny programs; scattered bitmaps (a region
//! filter selecting every fifth customer) produce many runs, which
//! costs PIM-logic time but still no bus traffic — the trade the
//! paper's channel-bound analysis argues for.
//!
//! The builder mirrors
//! [`crate::filter_exec::build_dnf_mask_program_in`], adding the inner
//! OR level; run predicates reuse the same compiled-predicate library
//! via [`compile_atom`].

use bbpim_db::plan::ResolvedAtom;
use bbpim_sim::compiler::{CodeBuilder, ColRange, ScratchPool};
use bbpim_sim::isa::Microprogram;

use crate::error::CoreError;
use crate::filter_exec::{compile_atom, copy_col};

/// One dimension's contribution to a disjunct: the key runs its
/// filtered bitmap decomposed into, anchored at the fact FK column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemijoinTerm {
    /// The fact-partition column range holding the foreign key.
    pub fk_range: ColRange,
    /// Inclusive `[lo, hi]` runs of selected key *values* (not rows),
    /// ascending and non-overlapping. Empty = the dimension filter
    /// selected nothing, so the term (and its disjunct) is false.
    pub runs: Vec<(u64, u64)>,
}

impl SemijoinTerm {
    /// Decompose a dense key bitmap into runs. `key_base` is the key
    /// value of bit 0 (dimension keys are dense in
    /// `key_base..key_base+len`).
    pub fn from_bitmap(fk_range: ColRange, bits: &[bool], key_base: u64) -> SemijoinTerm {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for (i, &set) in bits.iter().enumerate() {
            if !set {
                continue;
            }
            let key = key_base + i as u64;
            match runs.last_mut() {
                Some((_, hi)) if *hi + 1 == key => *hi = key,
                _ => runs.push((key, key)),
            }
        }
        SemijoinTerm { fk_range, runs }
    }

    /// Selected keys (sum of run widths).
    pub fn keys_selected(&self) -> u64 {
        self.runs.iter().map(|(lo, hi)| hi - lo + 1).sum()
    }

    /// The convex hull `[lo, hi]` of every run — `None` when nothing
    /// is selected. The planner turns this into a BETWEEN bound on the
    /// FK attribute for zone pruning.
    pub fn hull(&self) -> Option<(u64, u64)> {
        match (self.runs.first(), self.runs.last()) {
            (Some(&(lo, _)), Some(&(_, hi))) => Some((lo, hi)),
            _ => None,
        }
    }
}

/// One disjunct of a star-join filter as the fact module sees it:
/// local atoms plus one semijoin term per participating dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemijoinDisjunct {
    /// Fact-table atoms, pre-resolved to column ranges.
    pub atoms: Vec<(ResolvedAtom, ColRange)>,
    /// Semijoin terms (one per dimension this disjunct filters).
    pub semijoins: Vec<SemijoinTerm>,
}

/// Emit the OR of a term's run predicates; returns the result column.
///
/// Runs are OR-accumulated pairwise so at most one accumulator and one
/// fresh predicate are live at a time — the program length grows with
/// the run count but scratch occupancy does not.
fn compile_runs(b: &mut CodeBuilder<'_>, term: &SemijoinTerm) -> Result<usize, CoreError> {
    if term.runs.is_empty() {
        return Ok(b.zero()?);
    }
    let mut acc: Option<usize> = None;
    for &(lo, hi) in &term.runs {
        let atom = if lo == hi {
            ResolvedAtom::Eq { idx: 0, value: lo }
        } else {
            ResolvedAtom::Between { idx: 0, lo, hi }
        };
        let col = compile_atom(b, &atom, term.fk_range)?;
        acc = Some(match acc {
            None => col,
            Some(a) => {
                let ored = b.emit_or(a, col)?;
                b.release(a);
                b.release(col);
                ored
            }
        });
    }
    Ok(acc.expect("at least one run"))
}

/// Build the fact-side program of a star join: per disjunct, AND the
/// fact atoms with every semijoin term's run-OR; OR across disjuncts;
/// AND `and_cols` (validity); write the result to `dst_col`. A
/// disjunct with no atoms and no semijoins contributes constant true;
/// zero disjuncts write an all-false mask (same conventions as
/// [`crate::filter_exec::build_dnf_mask_program_in`]).
///
/// # Errors
///
/// Propagates compiler failures (scratch exhaustion, bad constants).
pub fn build_semijoin_mask_program_in(
    scratch: ColRange,
    disjuncts: &[SemijoinDisjunct],
    and_cols: &[usize],
    dst_col: usize,
) -> Result<Microprogram, CoreError> {
    let mut pool = ScratchPool::new(scratch);
    let mut b = CodeBuilder::new(&mut pool);
    if disjuncts.is_empty() {
        let zero = b.zero()?;
        copy_col(&mut b, zero, dst_col)?;
        return Ok(b.finish());
    }
    let mut terms: Vec<usize> = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        if d.atoms.is_empty() && d.semijoins.is_empty() {
            terms.push(b.one()?);
            continue;
        }
        let mut cols: Vec<usize> = Vec::with_capacity(d.atoms.len() + d.semijoins.len());
        for (atom, range) in &d.atoms {
            cols.push(compile_atom(&mut b, atom, *range)?);
        }
        for sj in &d.semijoins {
            cols.push(compile_runs(&mut b, sj)?);
        }
        let term = b.emit_and_many(&cols)?;
        for c in cols {
            b.release(c);
        }
        terms.push(term);
    }
    let selected = if terms.len() == 1 {
        terms[0]
    } else {
        let ored = b.emit_or_many(terms.clone())?;
        for c in terms {
            b.release(c);
        }
        ored
    };
    let mut all: Vec<usize> = Vec::with_capacity(1 + and_cols.len());
    all.push(selected);
    all.extend_from_slice(and_cols);
    let combined = b.emit_and_many(&all)?;
    b.release(selected);
    copy_col(&mut b, combined, dst_col)?;
    b.release(combined);
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_exec::{count_mask_bits, mask_bits};
    use crate::layout::{RecordLayout, MASK_COL, VALID_COL};
    use crate::loader::{load_relation, LoadedRelation};
    use crate::modes::EngineMode;
    use crate::planner::PageSet;
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_db::Relation;
    use bbpim_sim::module::PimModule;
    use bbpim_sim::SimConfig;

    fn setup() -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("f", vec![Attribute::numeric("fk", 8), Attribute::numeric("v", 8)]);
        let mut rel = Relation::new(schema);
        for i in 0..700u64 {
            rel.push_row(&[(i * 7) % 200, i % 100]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, EngineMode::OneXb, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn run(
        module: &mut PimModule,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        disjuncts: &[SemijoinDisjunct],
    ) -> Vec<bool> {
        let prog =
            build_semijoin_mask_program_in(layout.scratch(0), disjuncts, &[VALID_COL], MASK_COL)
                .unwrap();
        let pages = PageSet::all(loaded.page_count());
        module.exec_program(&pages.ids(loaded, 0), &prog).unwrap();
        mask_bits(module, loaded, &pages, 0, MASK_COL)
    }

    #[test]
    fn bitmap_decomposes_into_maximal_runs() {
        let range = ColRange { lo: 0, width: 8 };
        let bits = [true, true, false, true, false, false, true, true];
        let t = SemijoinTerm::from_bitmap(range, &bits, 10);
        assert_eq!(t.runs, vec![(10, 11), (13, 13), (16, 17)]);
        assert_eq!(t.keys_selected(), 5);
        assert_eq!(t.hull(), Some((10, 17)));
        let empty = SemijoinTerm::from_bitmap(range, &[false; 4], 0);
        assert!(empty.runs.is_empty());
        assert_eq!(empty.hull(), None);
        assert_eq!(empty.keys_selected(), 0);
    }

    #[test]
    fn run_predicates_match_bitmap_semantics() {
        let (mut module, rel, layout, loaded) = setup();
        // keys 20..=35 and 100, 102 selected
        let mut bits = vec![false; 200];
        bits[20..=35].fill(true);
        bits[100] = true;
        bits[102] = true;
        let fk_range = layout.placement("fk").unwrap().range;
        let term = SemijoinTerm::from_bitmap(fk_range, &bits, 0);
        assert_eq!(term.runs.len(), 3);
        let d = SemijoinDisjunct { atoms: vec![], semijoins: vec![term] };
        let mask = run(&mut module, &layout, &loaded, &[d]);
        for (row, got) in mask.iter().enumerate() {
            let fk = rel.value(row, 0) as usize;
            assert_eq!(*got, bits[fk], "row {row} fk {fk}");
        }
    }

    #[test]
    fn semijoin_ands_with_fact_atoms() {
        let (mut module, rel, layout, loaded) = setup();
        let fk_range = layout.placement("fk").unwrap().range;
        let v_range = layout.placement("v").unwrap().range;
        let term = SemijoinTerm { fk_range, runs: vec![(0, 49)] };
        let d = SemijoinDisjunct {
            atoms: vec![(ResolvedAtom::Lt { idx: 1, value: 30 }, v_range)],
            semijoins: vec![term],
        };
        let mask = run(&mut module, &layout, &loaded, &[d]);
        for (row, got) in mask.iter().enumerate() {
            let expect = rel.value(row, 0) < 50 && rel.value(row, 1) < 30;
            assert_eq!(*got, expect, "row {row}");
        }
    }

    #[test]
    fn disjuncts_or_together() {
        let (mut module, rel, layout, loaded) = setup();
        let fk_range = layout.placement("fk").unwrap().range;
        let d1 = SemijoinDisjunct {
            atoms: vec![],
            semijoins: vec![SemijoinTerm { fk_range, runs: vec![(0, 9)] }],
        };
        let d2 = SemijoinDisjunct {
            atoms: vec![],
            semijoins: vec![SemijoinTerm { fk_range, runs: vec![(150, 199)] }],
        };
        let mask = run(&mut module, &layout, &loaded, &[d1, d2]);
        for (row, got) in mask.iter().enumerate() {
            let fk = rel.value(row, 0);
            assert_eq!(*got, !(10..150).contains(&fk), "row {row}");
        }
    }

    #[test]
    fn empty_runs_make_disjunct_false_and_no_disjuncts_make_all_false() {
        let (mut module, _rel, layout, loaded) = setup();
        let fk_range = layout.placement("fk").unwrap().range;
        let d = SemijoinDisjunct {
            atoms: vec![],
            semijoins: vec![SemijoinTerm { fk_range, runs: vec![] }],
        };
        assert!(run(&mut module, &layout, &loaded, &[d]).iter().all(|b| !b));
        assert!(run(&mut module, &layout, &loaded, &[]).iter().all(|b| !b));
    }

    #[test]
    fn empty_disjunct_selects_all_valid() {
        let (mut module, rel, layout, loaded) = setup();
        let d = SemijoinDisjunct { atoms: vec![], semijoins: vec![] };
        let mask = run(&mut module, &layout, &loaded, &[d]);
        assert_eq!(mask.iter().filter(|b| **b).count(), rel.len());
        let pages = PageSet::all(loaded.page_count());
        assert_eq!(count_mask_bits(&module, &pages.ids(&loaded, 0), MASK_COL), rel.len() as u64);
    }

    #[test]
    fn many_scattered_runs_stay_within_scratch() {
        let (mut module, rel, layout, loaded) = setup();
        let fk_range = layout.placement("fk").unwrap().range;
        // every third key: 67 single-key runs
        let bits: Vec<bool> = (0..200).map(|k| k % 3 == 0).collect();
        let term = SemijoinTerm::from_bitmap(fk_range, &bits, 0);
        assert!(term.runs.len() > 60);
        let d = SemijoinDisjunct { atoms: vec![], semijoins: vec![term] };
        let mask = run(&mut module, &layout, &loaded, &[d]);
        for (row, got) in mask.iter().enumerate() {
            assert_eq!(*got, rel.value(row, 0) % 3 == 0, "row {row}");
        }
    }
}
