//! Metrics glue for single-engine executions.
//!
//! One call folds a [`QueryExecution`]'s phase log and cell-wear
//! accounting into a [`MetricsRegistry`] — the engine-level unit the
//! cluster and scheduler layers aggregate over.

use bbpim_trace::phases::{record_run_log, CELL_WRITES, REQUIRED_ENDURANCE};
use bbpim_trace::MetricsRegistry;

use crate::result::QueryExecution;

/// The horizon the required-endurance gauge assumes (the paper's
/// Fig. 9 runs each query back-to-back for ten years).
pub const ENDURANCE_YEARS: f64 = 10.0;

/// Record one execution: per-phase-kind time / energy / host bytes,
/// plus — for queries that write PIM cells — the worst-row cell-write
/// counter and the required-endurance gauge (kept as a max across
/// recorded executions).
pub fn record_execution(reg: &mut MetricsRegistry, exec: &QueryExecution, labels: &[(&str, &str)]) {
    record_run_log(reg, &exec.report.phases, labels);
    if exec.report.max_row_cell_writes > 0 {
        reg.counter_add(CELL_WRITES, labels, exec.report.max_row_cell_writes as f64);
        reg.gauge_max(REQUIRED_ENDURANCE, labels, exec.report.required_endurance(ENDURANCE_YEARS));
    }
}
