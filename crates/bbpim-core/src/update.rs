//! UPDATE on pre-joined relations via the PIM multiplexer (Algorithm 1).
//!
//! Section III: with pre-joined relations an UPDATE duplicates one datum
//! into many records (a customer's city appears in every one of their
//! purchases). In bulk-bitwise PIM the maintenance is cheap: a filter
//! selects the affected records, and the Algorithm 1 MUX overwrites the
//! attribute wherever the select bit is set — *PIM operations only, no
//! reads*, eliminating data movement almost entirely.
//!
//! **API v1 shim.** This module is superseded by [`crate::mutation`]
//! (Mutation API v2: full `Pred` filter trees, multi-column SET,
//! INSERT). [`UpdateOp`] / [`run_update`] remain as deprecated wrappers
//! over [`crate::mutation::run_mutation`], and [`UpdateReport`] is now
//! an alias of [`crate::mutation::MutationReport`].

use bbpim_db::plan::{Atom, Const};
use bbpim_db::Relation;
use bbpim_sim::module::PimModule;

use crate::error::CoreError;
use crate::layout::RecordLayout;
use crate::loader::LoadedRelation;
use crate::mutation::{run_mutation, Mutation};

/// Outcome of an UPDATE (alias of the v2 report; `records_inserted` is
/// always 0 on this path).
pub type UpdateReport = crate::mutation::MutationReport;

/// One UPDATE statement: `UPDATE wide SET set_attr = set_value WHERE
/// filter`.
#[deprecated(note = "use bbpim_core::mutation::Mutation (API v2: Pred filters, multi-column SET)")]
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOp {
    /// Conjunctive WHERE clause.
    pub filter: Vec<Atom>,
    /// Attribute to overwrite.
    pub set_attr: String,
    /// New value (string constants resolved through the dictionary).
    pub set_value: Const,
}

/// Execute a v1 UPDATE: plan → filter → Algorithm 1 MUX → zone
/// widening. Deprecated wrapper over [`run_mutation`].
///
/// # Errors
///
/// Propagates resolution/compiler/simulator failures.
#[allow(deprecated)]
#[deprecated(note = "use bbpim_core::mutation::run_mutation")]
pub fn run_update(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    relation: &mut Relation,
    op: &UpdateOp,
    prune: bool,
) -> Result<UpdateReport, CoreError> {
    let mutation: Mutation = op.clone().into();
    run_mutation(module, layout, loaded, relation, &mutation, prune)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::loader::{load_relation, LoadedRelation};
    use crate::modes::EngineMode;
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::timeline::PhaseKind;
    use bbpim_sim::SimConfig;

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_city", 6)]);
        let mut rel = Relation::new(schema);
        for i in 0..500u64 {
            rel.push_row(&[i % 256, i % 40]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn read_attr(
        module: &PimModule,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        record: usize,
        name: &str,
    ) -> u64 {
        crate::groupby::host_gb::read_attr_value(module, layout, loaded, record, name).unwrap()
    }

    #[test]
    fn update_rewrites_only_matching_records() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let op = UpdateOp {
            filter: vec![Atom::Eq { attr: "d_city".into(), value: 7u64.into() }],
            set_attr: "d_city".into(),
            set_value: 39u64.into(),
        };
        let before: Vec<u64> = (0..rel.len()).map(|r| rel.value(r, 1)).collect();
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        assert_eq!(report.records_updated, before.iter().filter(|v| **v == 7).count() as u64);
        for (record, prior) in before.iter().enumerate() {
            let got = read_attr(&module, &layout, &loaded, record, "d_city");
            let expected = if *prior == 7 { 39 } else { *prior };
            assert_eq!(got, expected, "record {record}");
            // catalog copy matches PIM contents
            assert_eq!(rel.value(record, 1), expected);
        }
    }

    #[test]
    fn update_in_one_xb_needs_no_host_reads() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let op = UpdateOp {
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 10u64.into() }],
            set_attr: "lo_v".into(),
            set_value: 255u64.into(),
        };
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        // the paper's point: UPDATE uses PIM ops only — no data movement
        assert_eq!(report.phases.time_in(PhaseKind::HostRead), 0.0);
        assert_eq!(report.phases.time_in(PhaseKind::HostWrite), 0.0);
        assert!(report.records_updated > 0);
    }

    #[test]
    fn two_xb_update_of_dimension_attr_transfers_mask() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::TwoXb);
        let op = UpdateOp {
            // fact-side filter, dimension-side target: mask must travel
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 50u64.into() }],
            set_attr: "d_city".into(),
            set_value: 1u64.into(),
        };
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        assert!(report.phases.time_in(PhaseKind::HostWrite) > 0.0);
        for record in 0..rel.len() {
            let v = read_attr(&module, &layout, &loaded, record, "lo_v");
            let city = read_attr(&module, &layout, &loaded, record, "d_city");
            if v < 50 {
                assert_eq!(city, 1);
            }
        }
    }

    #[test]
    fn update_cost_independent_of_matched_count() {
        let (mut m1, mut r1, l1, mut ld1) = setup(EngineMode::OneXb);
        let (mut m2, mut r2, l2, mut ld2) = setup(EngineMode::OneXb);
        let narrow = UpdateOp {
            filter: vec![Atom::Eq { attr: "lo_v".into(), value: 3u64.into() }],
            set_attr: "d_city".into(),
            set_value: 0u64.into(),
        };
        let wide = UpdateOp {
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 250u64.into() }],
            set_attr: "d_city".into(),
            set_value: 0u64.into(),
        };
        let t1 = run_update(&mut m1, &l1, &mut ld1, &mut r1, &narrow, true).unwrap();
        let t2 = run_update(&mut m2, &l2, &mut ld2, &mut r2, &wide, true).unwrap();
        assert!(t2.records_updated > 50 * t1.records_updated.max(1));
        // The MUX pass itself is selection-size independent: the last
        // PIM-logic phase (the rewrite) takes identical time for 2 and
        // for 480 matched records. (Total times differ only because the
        // two filter *programs* compile to different cycle counts.)
        let mux_time = |rep: &UpdateReport| {
            rep.phases
                .phases()
                .iter()
                .rev()
                .find(|p| p.kind == PhaseKind::PimLogic)
                .map(|p| p.time_ns)
                .unwrap()
        };
        assert!((mux_time(&t1) - mux_time(&t2)).abs() < 1e-9);
    }
}
