//! UPDATE on pre-joined relations via the PIM multiplexer (Algorithm 1).
//!
//! Section III: with pre-joined relations an UPDATE duplicates one datum
//! into many records (a customer's city appears in every one of their
//! purchases). In bulk-bitwise PIM the maintenance is cheap: a filter
//! selects the affected records, and the Algorithm 1 MUX overwrites the
//! attribute wherever the select bit is set — *PIM operations only, no
//! reads*, eliminating data movement almost entirely.

use bbpim_db::plan::{Atom, Const, FilterBounds, Pred, Query, SelectItem};
use bbpim_db::Relation;
use bbpim_sim::compiler::{mux, CodeBuilder, ScratchPool};
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::error::CoreError;
use crate::filter_exec::{
    count_mask_bits, mask_bits, mask_transfer_phases, run_filter, write_transfer_bits_to,
};
use crate::layout::{RecordLayout, MASK_COL, TRANSFER_COL};
use crate::loader::LoadedRelation;
use crate::planner::{plan_pages, PageSet};

/// One UPDATE statement: `UPDATE wide SET set_attr = set_value WHERE
/// filter`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOp {
    /// Conjunctive WHERE clause.
    pub filter: Vec<Atom>,
    /// Attribute to overwrite.
    pub set_attr: String,
    /// New value (string constants resolved through the dictionary).
    pub set_value: Const,
}

/// Outcome of an UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Records rewritten.
    pub records_updated: u64,
    /// Pages the planner let the UPDATE touch (per partition).
    pub pages_scanned: usize,
    /// Simulated time, nanoseconds.
    pub time_ns: f64,
    /// Shared host-channel occupancy (dispatch + transfer bandwidth),
    /// nanoseconds — the slice of `time_ns` serialised across shards
    /// under contention (see `QueryReport::host_bus_ns`).
    pub host_bus_ns: f64,
    /// PIM energy, picojoules.
    pub energy_pj: f64,
    /// Phase log.
    pub phases: RunLog,
}

/// Execute an UPDATE: plan → filter → Algorithm 1 MUX → zone widening.
///
/// The WHERE conjunction is planned against the per-page zone maps
/// exactly like a query filter (pass `prune = false` for exhaustive
/// execution); the MUX then rewrites only candidate pages. Afterwards
/// every candidate page's zone map is *widened* to cover the written
/// immediate, so later pruning decisions stay sound — a page that now
/// holds the new value can no longer be skipped by a filter looking for
/// it.
///
/// Also patches `relation` (the host-side catalog copy) so later
/// catalog-derived statistics stay consistent with the PIM contents.
///
/// # Errors
///
/// Propagates resolution/compiler/simulator failures.
pub fn run_update(
    module: &mut PimModule,
    layout: &RecordLayout,
    loaded: &mut LoadedRelation,
    relation: &mut Relation,
    op: &UpdateOp,
    prune: bool,
) -> Result<UpdateReport, CoreError> {
    let mut log = RunLog::new();

    // Filter (reusing the query path, zone maps included). UPDATE WHERE
    // clauses stay conjunctive, so the resolved DNF has one disjunct.
    let probe = Query {
        id: "update".into(),
        filter: Pred::all(op.filter.clone()),
        group_by: vec![],
        select: vec![SelectItem::count("n")],
    };
    let schema = relation.schema();
    let dnf = probe.resolve_filter(schema)?;
    let disjuncts: Vec<Vec<_>> = dnf
        .iter()
        .map(|conj| {
            conj.iter()
                .map(|a| {
                    let name = &schema.attrs()[a.attr_index()].name;
                    Ok((a.clone(), layout.placement(name)?))
                })
                .collect::<Result<Vec<_>, CoreError>>()
        })
        .collect::<Result<_, CoreError>>()?;
    let pages = if prune {
        plan_pages(&FilterBounds::from_dnf(&dnf), loaded)
    } else {
        PageSet::all(loaded.page_count())
    };
    log.push(pages.dispatch_phase(&module.config().host, module.policy(), layout.partitions()));
    run_filter(module, layout, loaded, &disjuncts, &pages, &mut log)?;

    // Resolve destination attribute and immediate.
    let target = layout.placement(&op.set_attr)?;
    let attr_idx = relation.schema().index_of(&op.set_attr)?;
    let imm = match &op.set_value {
        Const::Num(v) => *v,
        Const::Str(s) => relation.schema().attrs()[attr_idx].encode_str(s)?,
    };

    let updated = if pages.is_empty() {
        0
    } else {
        // The select bit: partition 0's mask, transferred if the target
        // attribute lives elsewhere.
        let select_col = if target.partition == 0 {
            MASK_COL
        } else {
            let bits = mask_bits(module, loaded, &pages, 0, MASK_COL);
            for phase in mask_transfer_phases(module, loaded, &pages, &bits) {
                log.push(phase);
            }
            write_transfer_bits_to(module, loaded, &bits, target.partition, &pages)?;
            TRANSFER_COL
        };

        // Algorithm 1, on candidate pages only.
        let mut pool = ScratchPool::new(layout.scratch(target.partition));
        let mut b = CodeBuilder::new(&mut pool);
        mux::compile_mux_update(&mut b, target.range, imm, select_col)?;
        let prog = b.finish();
        let phase = module.exec_program(&pages.ids(loaded, target.partition), &prog)?;
        log.push(phase);

        // Zone maintenance: every candidate page may now hold `imm`.
        loaded.widen_zones(pages.indices(), attr_idx, imm);

        count_mask_bits(module, &pages.ids(loaded, 0), MASK_COL)
    };

    // Keep the host-side catalog copy in sync.
    let selected = bbpim_db::stats::filter_bitvec(&probe, relation)?;
    for (row, hit) in selected.into_iter().enumerate() {
        if hit {
            relation.set_value(row, attr_idx, imm)?;
        }
    }

    Ok(UpdateReport {
        records_updated: updated,
        pages_scanned: pages.len(),
        time_ns: log.total_time_ns(),
        host_bus_ns: bbpim_sim::hostbus::log_occupancy_ns(&module.config().host, &log),
        energy_pj: log.total_energy_pj(),
        phases: log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::loader::load_relation;
    use crate::modes::EngineMode;
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::timeline::PhaseKind;
    use bbpim_sim::SimConfig;

    fn setup(mode: EngineMode) -> (PimModule, Relation, RecordLayout, LoadedRelation) {
        let cfg = SimConfig::small_for_tests();
        let schema =
            Schema::new("t", vec![Attribute::numeric("lo_v", 8), Attribute::numeric("d_city", 6)]);
        let mut rel = Relation::new(schema);
        for i in 0..500u64 {
            rel.push_row(&[i % 256, i % 40]).unwrap();
        }
        let layout = RecordLayout::build(rel.schema(), &cfg, mode, &[]).unwrap();
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &rel, &layout).unwrap();
        (module, rel, layout, loaded)
    }

    fn read_attr(
        module: &PimModule,
        layout: &RecordLayout,
        loaded: &LoadedRelation,
        record: usize,
        name: &str,
    ) -> u64 {
        crate::groupby::host_gb::read_attr_value(module, layout, loaded, record, name).unwrap()
    }

    #[test]
    fn update_rewrites_only_matching_records() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let op = UpdateOp {
            filter: vec![Atom::Eq { attr: "d_city".into(), value: 7u64.into() }],
            set_attr: "d_city".into(),
            set_value: 39u64.into(),
        };
        let before: Vec<u64> = (0..rel.len()).map(|r| rel.value(r, 1)).collect();
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        assert_eq!(report.records_updated, before.iter().filter(|v| **v == 7).count() as u64);
        for (record, prior) in before.iter().enumerate() {
            let got = read_attr(&module, &layout, &loaded, record, "d_city");
            let expected = if *prior == 7 { 39 } else { *prior };
            assert_eq!(got, expected, "record {record}");
            // catalog copy matches PIM contents
            assert_eq!(rel.value(record, 1), expected);
        }
    }

    #[test]
    fn update_in_one_xb_needs_no_host_reads() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::OneXb);
        let op = UpdateOp {
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 10u64.into() }],
            set_attr: "lo_v".into(),
            set_value: 255u64.into(),
        };
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        // the paper's point: UPDATE uses PIM ops only — no data movement
        assert_eq!(report.phases.time_in(PhaseKind::HostRead), 0.0);
        assert_eq!(report.phases.time_in(PhaseKind::HostWrite), 0.0);
        assert!(report.records_updated > 0);
    }

    #[test]
    fn two_xb_update_of_dimension_attr_transfers_mask() {
        let (mut module, mut rel, layout, mut loaded) = setup(EngineMode::TwoXb);
        let op = UpdateOp {
            // fact-side filter, dimension-side target: mask must travel
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 50u64.into() }],
            set_attr: "d_city".into(),
            set_value: 1u64.into(),
        };
        let report = run_update(&mut module, &layout, &mut loaded, &mut rel, &op, true).unwrap();
        assert!(report.phases.time_in(PhaseKind::HostWrite) > 0.0);
        for record in 0..rel.len() {
            let v = read_attr(&module, &layout, &loaded, record, "lo_v");
            let city = read_attr(&module, &layout, &loaded, record, "d_city");
            if v < 50 {
                assert_eq!(city, 1);
            }
        }
    }

    #[test]
    fn update_cost_independent_of_matched_count() {
        let (mut m1, mut r1, l1, mut ld1) = setup(EngineMode::OneXb);
        let (mut m2, mut r2, l2, mut ld2) = setup(EngineMode::OneXb);
        let narrow = UpdateOp {
            filter: vec![Atom::Eq { attr: "lo_v".into(), value: 3u64.into() }],
            set_attr: "d_city".into(),
            set_value: 0u64.into(),
        };
        let wide = UpdateOp {
            filter: vec![Atom::Lt { attr: "lo_v".into(), value: 250u64.into() }],
            set_attr: "d_city".into(),
            set_value: 0u64.into(),
        };
        let t1 = run_update(&mut m1, &l1, &mut ld1, &mut r1, &narrow, true).unwrap();
        let t2 = run_update(&mut m2, &l2, &mut ld2, &mut r2, &wide, true).unwrap();
        assert!(t2.records_updated > 50 * t1.records_updated.max(1));
        // The MUX pass itself is selection-size independent: the last
        // PIM-logic phase (the rewrite) takes identical time for 2 and
        // for 480 matched records. (Total times differ only because the
        // two filter *programs* compile to different cycle counts.)
        let mux_time = |rep: &UpdateReport| {
            rep.phases
                .phases()
                .iter()
                .rev()
                .find(|p| p.kind == PhaseKind::PimLogic)
                .map(|p| p.time_ns)
                .unwrap()
        };
        assert!((mux_time(&t1) - mux_time(&t2)).abs() < 1e-9);
    }
}
