//! Query execution results and per-query reports.

use bbpim_db::stats::GroupedResult;
use bbpim_sim::endurance;
use bbpim_sim::timeline::RunLog;
use serde::Serialize;

use crate::modes::EngineMode;

/// Everything the paper reports per query (Figs. 6–9, Table II).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryReport {
    /// Query identifier.
    pub query_id: String,
    /// Engine mode that produced this report.
    pub mode: EngineMode,
    /// Execution latency, nanoseconds (Fig. 6).
    pub time_ns: f64,
    /// PIM-module energy, picojoules (Fig. 7).
    pub energy_pj: f64,
    /// Peak power of one PIM chip, watts (Fig. 8).
    pub peak_chip_power_w: f64,
    /// Worst per-row cell writes (input to Fig. 9).
    pub max_row_cell_writes: u64,
    /// Crossbar row width (for the endurance metric's wear-leveling).
    pub row_cells: usize,
    /// Records in the relation.
    pub records: usize,
    /// Pages per partition (`M`).
    pub pages: usize,
    /// Records passing the filter.
    pub selected: u64,
    /// Measured selectivity (Table II).
    pub selectivity: f64,
    /// Potential subgroups (`k_MAX`, Table II; 0 when no GROUP BY).
    pub total_subgroups: u64,
    /// Subgroups seen in the one-page sample (Table II).
    pub subgroups_in_sample: u64,
    /// Subgroups aggregated in PIM (`k`, Table II; Q1.x report 1).
    pub pim_agg_subgroups: u64,
    /// Full phase log.
    pub phases: RunLog,
}

impl QueryReport {
    /// Required cell endurance to run this query back-to-back for
    /// `years` (Fig. 9's metric).
    pub fn required_endurance(&self, years: f64) -> f64 {
        if self.time_ns <= 0.0 {
            return 0.0;
        }
        endurance::required_endurance(
            self.max_row_cell_writes,
            self.row_cells,
            self.time_ns,
            years,
        )
    }

    /// Lifetime in years at the RRAM endurance of the paper's ref. \[22\].
    pub fn lifetime_years(&self) -> f64 {
        if self.time_ns <= 0.0 {
            return f64::INFINITY;
        }
        endurance::lifetime_years(
            self.max_row_cell_writes,
            self.row_cells,
            self.time_ns,
            endurance::RRAM_ENDURANCE_WRITES,
        )
    }
}

/// A query's answer plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExecution {
    /// Grouped aggregates (single entry with an empty key when the query
    /// has no GROUP BY; empty map when nothing matched).
    pub groups: GroupedResult,
    /// The report.
    pub report: QueryReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_ns: f64, writes: u64) -> QueryReport {
        QueryReport {
            query_id: "t".into(),
            mode: EngineMode::OneXb,
            time_ns,
            energy_pj: 0.0,
            peak_chip_power_w: 0.0,
            max_row_cell_writes: writes,
            row_cells: 512,
            records: 0,
            pages: 0,
            selected: 0,
            selectivity: 0.0,
            total_subgroups: 0,
            subgroups_in_sample: 0,
            pim_agg_subgroups: 0,
            phases: RunLog::new(),
        }
    }

    #[test]
    fn endurance_matches_sim_formula() {
        let r = report(1e6, 512);
        let direct = bbpim_sim::endurance::required_endurance(512, 512, 1e6, 10.0);
        assert!((r.required_endurance(10.0) - direct).abs() < 1e-6);
    }

    #[test]
    fn zero_writes_means_infinite_lifetime() {
        let r = report(1e6, 0);
        assert!(r.lifetime_years().is_infinite());
        assert_eq!(r.required_endurance(10.0), 0.0);
    }
}
