//! Query execution results and per-query reports.

use bbpim_db::plan::PhysFunc;
use bbpim_db::stats::{self, GroupedResult, MultiGrouped};
use bbpim_sim::endurance;
use bbpim_sim::timeline::RunLog;
use serde::Serialize;

use crate::modes::EngineMode;

/// Everything the paper reports per query (Figs. 6–9, Table II).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryReport {
    /// Query identifier.
    pub query_id: String,
    /// Engine mode that produced this report.
    pub mode: EngineMode,
    /// Execution latency, nanoseconds (Fig. 6).
    pub time_ns: f64,
    /// PIM-module energy, picojoules (Fig. 7).
    pub energy_pj: f64,
    /// Peak power of one PIM chip, watts (Fig. 8).
    pub peak_chip_power_w: f64,
    /// Worst per-row cell writes (input to Fig. 9).
    pub max_row_cell_writes: u64,
    /// Crossbar row width (for the endurance metric's wear-leveling).
    pub row_cells: usize,
    /// Records in the relation.
    pub records: usize,
    /// Pages per partition (`M`).
    pub pages: usize,
    /// Pages the physical planner actually dispatched (zone-map pruning
    /// skips the rest; equals `pages` under exhaustive execution).
    pub pages_scanned: usize,
    /// Records passing the filter.
    pub selected: u64,
    /// Measured selectivity (Table II).
    pub selectivity: f64,
    /// Potential subgroups (`k_MAX`, Table II; 0 when no GROUP BY).
    pub total_subgroups: u64,
    /// Subgroups seen in the one-page sample (Table II).
    pub subgroups_in_sample: u64,
    /// Subgroups aggregated in PIM (`k`, Table II; Q1.x report 1).
    pub pim_agg_subgroups: u64,
    /// Shared host-channel occupancy of this execution, nanoseconds:
    /// per-page dispatch plus the bandwidth term of every host↔module
    /// transfer (mask transfers, result-line reads, host-gb record
    /// fetches). This is the slice of `time_ns` a multi-module host
    /// must *serialise* across shards and concurrent queries; the rest
    /// (PIM phases, host compute, latency stalls) overlaps freely.
    pub host_bus_ns: f64,
    /// Full phase log.
    pub phases: RunLog,
}

impl QueryReport {
    /// Required cell endurance to run this query back-to-back for
    /// `years` (Fig. 9's metric).
    pub fn required_endurance(&self, years: f64) -> f64 {
        if self.time_ns <= 0.0 {
            return 0.0;
        }
        endurance::required_endurance(self.max_row_cell_writes, self.row_cells, self.time_ns, years)
    }

    /// Lifetime in years at the RRAM endurance of the paper's ref. \[22\].
    pub fn lifetime_years(&self) -> f64 {
        if self.time_ns <= 0.0 {
            return f64::INFINITY;
        }
        endurance::lifetime_years(
            self.max_row_cell_writes,
            self.row_cells,
            self.time_ns,
            endurance::RRAM_ENDURANCE_WRITES,
        )
    }
}

/// A query's answer plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExecution {
    /// Finalised grouped answer: group key → one value per SELECT item,
    /// in SELECT order (single entry with an empty key when the query
    /// has no GROUP BY; empty map when nothing matched).
    pub groups: MultiGrouped,
    /// The *mergeable* per-physical-aggregate partials behind `groups`
    /// (one per [`bbpim_db::plan::PhysicalPlan::aggs`] entry, same
    /// order). The cluster layer merges these across shards and only
    /// then finalises, so derived aggregates (`AVG`) stay bit-exact
    /// under sharding.
    pub partials: Vec<PartialGroups>,
    /// The report.
    pub report: QueryReport,
}

/// A partial (per-shard or per-module) grouped aggregate component,
/// tagged with the physical function it carries so merging cannot mix
/// semantics.
///
/// Engines running over disjoint record slices each produce a
/// `PartialGroups` per physical aggregate; folding them with
/// [`PartialGroups::absorb`] reproduces the whole-relation component
/// bit-exactly, because SUM (wrapping), MIN, MAX and COUNT (addition)
/// are commutative and associative. This is the gather half of the
/// cluster layer's scatter–gather; derived outputs (`AVG`) are computed
/// from fully merged components afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialGroups {
    /// The physical component the group values carry.
    pub func: PhysFunc,
    /// Group key values → partial component value.
    pub groups: GroupedResult,
}

impl PartialGroups {
    /// An empty partial for a component.
    pub fn new(func: PhysFunc) -> Self {
        PartialGroups { func, groups: GroupedResult::new() }
    }

    /// Merge another partial of the same component into this one.
    ///
    /// # Panics
    ///
    /// Panics when the functions differ — merging a MIN partial into a
    /// SUM accumulator is always a caller bug.
    pub fn absorb(&mut self, other: PartialGroups) {
        assert_eq!(self.func, other.func, "cannot merge partials of different aggregates");
        stats::merge_grouped_into(&mut self.groups, other.groups, self.func);
    }

    /// Merge a reference to another partial of the same component
    /// (clones only keys new to the accumulator).
    ///
    /// # Panics
    ///
    /// Panics when the functions differ (caller bug).
    pub fn absorb_ref(&mut self, other: &PartialGroups) {
        assert_eq!(self.func, other.func, "cannot merge partials of different aggregates");
        stats::merge_grouped_ref_into(&mut self.groups, &other.groups, self.func);
    }

    /// Merge a raw grouped result carrying the same component.
    pub fn absorb_groups(&mut self, groups: GroupedResult) {
        stats::merge_grouped_into(&mut self.groups, groups, self.func);
    }

    /// The merged grouped result.
    pub fn into_groups(self) -> GroupedResult {
        self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_ns: f64, writes: u64) -> QueryReport {
        QueryReport {
            query_id: "t".into(),
            mode: EngineMode::OneXb,
            time_ns,
            energy_pj: 0.0,
            peak_chip_power_w: 0.0,
            max_row_cell_writes: writes,
            row_cells: 512,
            records: 0,
            pages: 0,
            pages_scanned: 0,
            selected: 0,
            selectivity: 0.0,
            total_subgroups: 0,
            subgroups_in_sample: 0,
            pim_agg_subgroups: 0,
            host_bus_ns: 0.0,
            phases: RunLog::new(),
        }
    }

    #[test]
    fn endurance_matches_sim_formula() {
        let r = report(1e6, 512);
        let direct = bbpim_sim::endurance::required_endurance(512, 512, 1e6, 10.0);
        assert!((r.required_endurance(10.0) - direct).abs() < 1e-6);
    }

    #[test]
    fn zero_writes_means_infinite_lifetime() {
        let r = report(1e6, 0);
        assert!(r.lifetime_years().is_infinite());
        assert_eq!(r.required_endurance(10.0), 0.0);
    }

    #[test]
    fn partial_groups_fold_like_a_single_pass() {
        let mut acc = PartialGroups::new(PhysFunc::Sum);
        let mut a = GroupedResult::new();
        a.insert(vec![1], 4);
        let mut b = GroupedResult::new();
        b.insert(vec![1], 6);
        b.insert(vec![2], 1);
        acc.absorb(PartialGroups { func: PhysFunc::Sum, groups: a });
        acc.absorb_groups(b);
        let merged = acc.into_groups();
        assert_eq!(merged[&vec![1u64]], 10);
        assert_eq!(merged[&vec![2u64]], 1);
    }

    #[test]
    fn count_partials_add() {
        let mut acc = PartialGroups::new(PhysFunc::Count);
        let mut a = GroupedResult::new();
        a.insert(vec![7], 3);
        let mut b = GroupedResult::new();
        b.insert(vec![7], 5);
        acc.absorb(PartialGroups { func: PhysFunc::Count, groups: a });
        acc.absorb_ref(&PartialGroups { func: PhysFunc::Count, groups: b });
        assert_eq!(acc.into_groups()[&vec![7u64]], 8);
    }

    #[test]
    #[should_panic(expected = "different aggregates")]
    fn partial_groups_reject_mixed_functions() {
        let mut acc = PartialGroups::new(PhysFunc::Sum);
        acc.absorb(PartialGroups::new(PhysFunc::Min));
    }
}
