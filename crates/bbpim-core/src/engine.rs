//! The end-to-end PIM query engine.
//!
//! [`PimQueryEngine`] owns the PIM module with the pre-joined relation
//! loaded, plus the host-side catalog copy. `run` executes one logical
//! query exactly as Section IV describes: bulk-bitwise filter → (for
//! GROUP BY) one-page sampling and the Eq. (3) decision → pim-gb /
//! host-gb → report. Queries without GROUP BY (SSB Q1.x) aggregate the
//! whole selection in PIM directly.

use bbpim_db::plan::{FilterBounds, Query};
use bbpim_db::stats::{self, GroupedResult};
use bbpim_db::zonemap::ZoneMap;
use bbpim_db::Relation;
use bbpim_sim::config::SimConfig;
use bbpim_sim::module::PimModule;
use bbpim_sim::timeline::RunLog;

use crate::agg_exec::{aggregate_masked, materialize_exprs};
use crate::error::CoreError;
use crate::filter_exec::run_filter;
use crate::groupby::calibration::{run_calibration, CalibrationConfig, CalibrationData};
use crate::groupby::cost_model::GroupByModel;
use crate::groupby::run_group_by;
use crate::layout::{AttrPlacement, RecordLayout, MASK_COL};
use crate::loader::{load_relation, LoadedRelation};
use crate::modes::EngineMode;
use crate::mutation::{run_mutation, Mutation, MutationReport};
use crate::planner::{plan_pages, PageSet};
use crate::result::{PartialGroups, QueryExecution, QueryReport};
#[allow(deprecated)]
use crate::update::{UpdateOp, UpdateReport};

/// A PIM-resident OLAP engine over one (pre-joined) relation.
pub struct PimQueryEngine {
    module: PimModule,
    relation: Relation,
    layout: RecordLayout,
    loaded: LoadedRelation,
    mode: EngineMode,
    model: Option<GroupByModel>,
    pruning: bool,
}

impl std::fmt::Debug for PimQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimQueryEngine")
            .field("relation", &self.relation.schema().name)
            .field("records", &self.loaded.records())
            .field("pages", &self.loaded.page_count())
            .field("mode", &self.mode)
            .field("calibrated", &self.model.is_some())
            .field("pruning", &self.pruning)
            .finish()
    }
}

impl PimQueryEngine {
    /// Build the layout, allocate pages, and load `relation`.
    ///
    /// # Errors
    ///
    /// Layout failures (record too wide) and module capacity failures.
    pub fn new(cfg: SimConfig, relation: Relation, mode: EngineMode) -> Result<Self, CoreError> {
        let layout = RecordLayout::build(relation.schema(), &cfg, mode, &[])?;
        Self::with_layout(cfg, relation, mode, layout)
    }

    /// Like [`PimQueryEngine::new`] but with a caller-supplied layout —
    /// e.g. a [`RecordLayout::build_custom`] placement that co-locates
    /// hot subgroup identifiers with the fact attributes (the paper's
    /// Section V-A placement optimisation).
    ///
    /// # Errors
    ///
    /// [`CoreError::Layout`] when the layout's partition count does not
    /// match the mode; loader failures otherwise.
    pub fn with_layout(
        cfg: SimConfig,
        relation: Relation,
        mode: EngineMode,
        layout: RecordLayout,
    ) -> Result<Self, CoreError> {
        if layout.partitions() != mode.partitions() {
            return Err(CoreError::Layout(format!(
                "layout has {} partitions but mode {} needs {}",
                layout.partitions(),
                mode.label(),
                mode.partitions()
            )));
        }
        let mut module = PimModule::new(cfg);
        let loaded = load_relation(&mut module, &relation, &layout)?;
        Ok(PimQueryEngine { module, relation, layout, loaded, mode, model: None, pruning: true })
    }

    /// The engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        self.module.config()
    }

    /// The host-side catalog copy of the relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The record layout.
    pub fn layout(&self) -> &RecordLayout {
        &self.layout
    }

    /// Pages per partition (`M`).
    pub fn page_count(&self) -> usize {
        self.loaded.page_count()
    }

    /// Is zone-map page pruning enabled (default) or is every query
    /// dispatched exhaustively to all pages?
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Enable or disable zone-map page pruning. Answers are bit-identical
    /// either way; only which pages are activated (and therefore time,
    /// energy and endurance) changes.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
    }

    /// The host-channel transfer policy in effect (byte-diet levers).
    pub fn xfer_policy(&self) -> bbpim_sim::XferPolicy {
        self.module.policy()
    }

    /// Set the host-channel transfer policy. Answers are bit-identical
    /// under every lever combination; only bytes, time and energy move.
    pub fn set_xfer_policy(&mut self, policy: bbpim_sim::XferPolicy) {
        self.module.set_policy(policy);
    }

    /// The loaded relation's zone map (merge over per-page zones,
    /// including UPDATE widening) — what the cluster layer consults for
    /// shard-level pruning.
    pub fn zone_map(&self) -> ZoneMap {
        self.loaded.zone_map()
    }

    /// Plan the pages a query's filter must touch under the current
    /// pruning setting.
    ///
    /// # Errors
    ///
    /// Propagates filter resolution failures.
    pub fn plan(&self, query: &Query) -> Result<PageSet, CoreError> {
        if !self.pruning {
            return Ok(PageSet::all(self.loaded.page_count()));
        }
        let bounds = FilterBounds::of_query(query, self.relation.schema())?;
        Ok(plan_pages(&bounds, &self.loaded))
    }

    /// [`PimQueryEngine::plan`] from an already-resolved DNF (avoids a
    /// second resolution pass inside [`PimQueryEngine::run`]).
    fn plan_resolved(&self, dnf: &[Vec<bbpim_db::plan::ResolvedAtom>]) -> PageSet {
        if !self.pruning {
            return PageSet::all(self.loaded.page_count());
        }
        plan_pages(&FilterBounds::from_dnf(dnf), &self.loaded)
    }

    /// The fitted GROUP-BY model, if calibrated.
    pub fn model(&self) -> Option<&GroupByModel> {
        self.model.as_ref()
    }

    /// Install a pre-fitted model (e.g. shared across engines).
    pub fn set_model(&mut self, model: GroupByModel) {
        self.model = Some(model);
    }

    /// Run the Section IV calibration and install the fitted model.
    /// Returns the raw measurements (the data behind Fig. 4).
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn calibrate(&mut self, cal: &CalibrationConfig) -> Result<CalibrationData, CoreError> {
        let (data, model) = run_calibration(self.module.config(), self.mode, cal)?;
        self.model = Some(model);
        Ok(data)
    }

    /// Execute one query.
    ///
    /// The physical plan comes first: the filter's bound intervals
    /// (interval union across OR branches) are tested against the
    /// per-page zone maps and only candidate pages are dispatched —
    /// pruned pages draw no crossbar ops, no host read lines and no
    /// per-page orchestration time, while the answer stays bit-identical
    /// to exhaustive execution.
    ///
    /// The filter mask is computed **once** and shared by every
    /// aggregate of the SELECT list; extra aggregates are charged their
    /// own value reads and reductions, never extra filter passes.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotCalibrated`] for GROUP BY queries before
    /// [`PimQueryEngine::calibrate`]; substrate failures otherwise.
    pub fn run(&mut self, query: &Query) -> Result<QueryExecution, CoreError> {
        let plan = query.physical_plan().map_err(CoreError::Db)?;
        let schema = self.relation.schema();
        let dnf = query.resolve_filter(schema)?;
        let pages = self.plan_resolved(&dnf);
        let disjuncts: Vec<Vec<(bbpim_db::plan::ResolvedAtom, AttrPlacement)>> = dnf
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|atom| {
                        let name = &schema.attrs()[atom.attr_index()].name;
                        Ok((atom, self.layout.placement(name)?))
                    })
                    .collect::<Result<Vec<_>, CoreError>>()
            })
            .collect::<Result<_, CoreError>>()?;

        let all_pages = self.loaded.all_pages();
        self.module.reset_endurance(&all_pages);
        let mut log = RunLog::new();

        // Host orchestration: per-page doorbells, or one run-list
        // descriptor per partition under batched dispatch.
        log.push(pages.dispatch_phase(
            &self.module.config().host,
            self.module.policy(),
            self.layout.partitions(),
        ));

        let outcome =
            run_filter(&mut self.module, &self.layout, &self.loaded, &disjuncts, &pages, &mut log)?;

        let mut per_agg: Vec<GroupedResult> = vec![GroupedResult::new(); plan.aggs.len()];
        let (mut k, mut kmax, mut sampled) = (0usize, 0usize, 0usize);
        if query.has_group_by() {
            let model = self.model.as_ref().ok_or(CoreError::NotCalibrated)?;
            let gb = run_group_by(
                &mut self.module,
                &self.layout,
                &self.loaded,
                &pages,
                &self.relation,
                self.mode,
                query,
                &plan,
                model,
                &mut log,
            )?;
            per_agg = gb.per_agg;
            k = gb.k;
            kmax = gb.kmax;
            sampled = gb.sampled;
        } else if outcome.selected > 0 {
            // Q1-style: one PIM aggregation per physical component over
            // the whole selection, all sharing the query mask. Distinct
            // expressions materialise once even when several components
            // reduce them; COUNT is the filter pass's own popcount — no
            // extra PIM work.
            let exprs: Vec<&bbpim_db::plan::AggExpr> =
                plan.aggs.iter().filter_map(|a| a.expr.as_ref()).collect();
            let inputs = materialize_exprs(
                &mut self.module,
                &self.layout,
                &self.loaded,
                &pages,
                &exprs,
                &mut log,
            )?;
            let mut inputs_iter = inputs.into_iter();
            for (agg, grouped) in plan.aggs.iter().zip(per_agg.iter_mut()) {
                let value = match &agg.expr {
                    None => outcome.selected,
                    Some(_) => {
                        let input = inputs_iter.next().expect("one input per expression");
                        // run_filter leaves the query mask in partition 0
                        // only; a value stored elsewhere cannot be
                        // reduced under it.
                        if input.partition != 0 {
                            return Err(CoreError::Unsupported(
                                "aggregating dimension-partition attributes (the query mask \
                                 lives in the fact partition)"
                                    .into(),
                            ));
                        }
                        aggregate_masked(
                            &mut self.module,
                            &self.layout,
                            &self.loaded,
                            &pages,
                            self.mode,
                            &input,
                            MASK_COL,
                            agg.func,
                            &mut log,
                        )?
                    }
                };
                grouped.insert(Vec::new(), value);
            }
            k = 1;
            kmax = 1;
        }

        let groups = plan.finalize(&per_agg);
        let partials: Vec<PartialGroups> = plan
            .aggs
            .iter()
            .zip(per_agg)
            .map(|(agg, grouped)| PartialGroups { func: agg.func, groups: grouped })
            .collect();

        let report = QueryReport {
            query_id: query.id.clone(),
            mode: self.mode,
            host_bus_ns: bbpim_sim::hostbus::log_occupancy_ns(&self.module.config().host, &log),
            time_ns: log.total_time_ns(),
            energy_pj: log.total_energy_pj(),
            peak_chip_power_w: log.peak_chip_power_w(),
            max_row_cell_writes: self.module.max_row_cell_writes(&all_pages),
            row_cells: self.module.config().crossbar_cols,
            records: self.loaded.records(),
            pages: self.loaded.page_count(),
            pages_scanned: pages.len(),
            selected: outcome.selected,
            selectivity: outcome.selectivity,
            total_subgroups: kmax as u64,
            subgroups_in_sample: sampled as u64,
            pim_agg_subgroups: k as u64,
            phases: log,
        };
        Ok(QueryExecution { groups, partials, report })
    }

    /// Execute a mutation (API v2): UPDATE via the PIM multiplexer
    /// (Algorithm 1) with full `Pred` filters and multi-column SET, or
    /// INSERT appending rows behind the loaded image. UPDATE WHERE
    /// clauses are zone-map-planned like query filters, and the touched
    /// pages' zone maps are widened/grown to keep pruning sound.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn mutate(&mut self, mutation: &Mutation) -> Result<MutationReport, CoreError> {
        run_mutation(
            &mut self.module,
            &self.layout,
            &mut self.loaded,
            &mut self.relation,
            mutation,
            self.pruning,
        )
    }

    /// Execute a v1 UPDATE. Deprecated wrapper over
    /// [`PimQueryEngine::mutate`].
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    #[allow(deprecated)]
    #[deprecated(note = "use PimQueryEngine::mutate with bbpim_core::mutation::Mutation")]
    pub fn update(&mut self, op: &UpdateOp) -> Result<UpdateReport, CoreError> {
        self.mutate(&op.clone().into())
    }

    /// Direct access to the module (inspection in tests and examples).
    pub fn module(&self) -> &PimModule {
        &self.module
    }

    /// Table II helper: run a query and compare against the row-at-a-time
    /// oracle, returning the execution if they agree.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] if results diverge (indicates an engine
    /// bug — used by integration tests).
    pub fn run_checked(&mut self, query: &Query) -> Result<QueryExecution, CoreError> {
        let out = self.run(query)?;
        let oracle = stats::run_oracle(query, &self.relation)?;
        if out.groups != oracle {
            return Err(CoreError::Unsupported(format!(
                "engine/oracle mismatch on {}: {} vs {} groups",
                query.id,
                out.groups.len(),
                oracle.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::builder::col;
    use bbpim_db::plan::{AggExpr, AggFunc, Atom, SelectItem};
    use bbpim_db::schema::{Attribute, Schema};
    use bbpim_sim::timeline::PhaseKind;

    fn relation(rows: u64) -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Attribute::numeric("lo_price", 8),
                Attribute::numeric("lo_disc", 4),
                Attribute::numeric("d_year", 3),
                Attribute::numeric("d_brand", 5),
            ],
        );
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[(3 * i + 1) % 251, i % 11, i % 7, (i * i) % 30]).unwrap();
        }
        rel
    }

    fn engine(mode: EngineMode) -> PimQueryEngine {
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), relation(1500), mode).unwrap();
        e.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        e
    }

    fn q1_like() -> Query {
        Query::single(
            "q1",
            vec![
                Atom::Eq { attr: "d_year".into(), value: 3u64.into() },
                Atom::Between { attr: "lo_disc".into(), lo: 1u64.into(), hi: 3u64.into() },
            ],
            vec![],
            AggFunc::Sum,
            AggExpr::mul("lo_price", "lo_disc"),
        )
    }

    fn q2_like() -> Query {
        Query::single(
            "q2",
            vec![Atom::Gt { attr: "lo_price".into(), value: 60u64.into() }],
            vec!["d_year".into(), "d_brand".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        )
    }

    #[test]
    fn q1_like_matches_oracle_all_modes() {
        for mode in EngineMode::all() {
            let mut e = engine(mode);
            let out = e.run_checked(&q1_like()).unwrap();
            assert_eq!(out.report.pim_agg_subgroups, 1, "{mode:?}");
            assert!(out.report.time_ns > 0.0);
            assert!(out.report.energy_pj > 0.0);
        }
    }

    #[test]
    fn group_by_matches_oracle_all_modes() {
        for mode in EngineMode::all() {
            let mut e = engine(mode);
            let out = e.run_checked(&q2_like()).unwrap();
            assert!(!out.groups.is_empty(), "{mode:?}");
            assert!(out.report.total_subgroups >= out.groups.len() as u64);
        }
    }

    #[test]
    fn multi_aggregate_query_shares_one_filter_pass() {
        // SUM + COUNT + AVG + MAX over one filter: results equal the
        // four single-aggregate runs, while the filter's PIM program
        // runs once.
        for mode in [EngineMode::OneXb, EngineMode::TwoXb] {
            let mut e = engine(mode);
            let combined = Query::select([
                SelectItem::sum("revenue", AggExpr::mul("lo_price", "lo_disc")),
                SelectItem::count("orders"),
                SelectItem::avg("avg_price", AggExpr::attr("lo_price")),
                SelectItem::max("max_price", AggExpr::attr("lo_price")),
            ])
            .id("combo")
            .filter(col("d_year").eq(3u64).and(col("lo_disc").between(1u64, 3u64)))
            .build(e.relation().schema())
            .unwrap();
            let out = e.run_checked(&combined).unwrap();
            let row = out.groups.get(&Vec::new()).unwrap().clone();
            // compare column-wise against dedicated single-aggregate runs
            let singles = [
                (AggFunc::Sum, Some(AggExpr::mul("lo_price", "lo_disc"))),
                (AggFunc::Count, None),
                (AggFunc::Avg, Some(AggExpr::attr("lo_price"))),
                (AggFunc::Max, Some(AggExpr::attr("lo_price"))),
            ];
            for (i, (func, expr)) in singles.into_iter().enumerate() {
                let q = Query {
                    id: format!("single{i}"),
                    filter: combined.filter.clone(),
                    group_by: vec![],
                    select: vec![SelectItem { name: "value".into(), func, expr }],
                };
                let single = e.run_checked(&q).unwrap();
                assert_eq!(single.groups[&Vec::new()][0], row[i], "{mode:?} column {i} ({func:?})");
            }
            // exactly one filter program before any aggregation: the
            // PimLogic phases are 1 (filter) + ≤1 per materialised
            // expression — never one filter per aggregate.
            let pim_logic =
                out.report.phases.phases().iter().filter(|p| p.kind == PhaseKind::PimLogic).count();
            let dim_filter = usize::from(mode == EngineMode::TwoXb); // dim-side program
            assert!(
                pim_logic <= 1 + dim_filter + 2,
                "{mode:?}: {pim_logic} PimLogic phases (filter must not repeat per aggregate)"
            );
        }
    }

    #[test]
    fn shared_expression_materialises_once_without_group_by() {
        // SUM and MAX over the same computed product: one filter program
        // plus exactly one arithmetic program — never one per aggregate.
        let mut e = engine(EngineMode::OneXb);
        let q = Query::select([
            SelectItem::sum("total", AggExpr::mul("lo_price", "lo_disc")),
            SelectItem::max("peak", AggExpr::mul("lo_price", "lo_disc")),
        ])
        .id("shared-expr")
        .filter(col("lo_price").gt(10u64))
        .build(e.relation().schema())
        .unwrap();
        let out = e.run_checked(&q).unwrap();
        let pim_logic =
            out.report.phases.phases().iter().filter(|p| p.kind == PhaseKind::PimLogic).count();
        assert_eq!(pim_logic, 2, "filter + one shared materialisation");
    }

    #[test]
    fn disjunctive_filter_end_to_end() {
        let mut e = engine(EngineMode::OneXb);
        let q = Query::select([
            SelectItem::sum("total", AggExpr::attr("lo_price")),
            SelectItem::count("n"),
        ])
        .id("or-query")
        .filter(
            col("d_year")
                .eq(1u64)
                .and(col("lo_disc").lt(3u64))
                .or(col("d_year").eq(5u64).and(col("lo_disc").gt(7u64))),
        )
        .build(e.relation().schema())
        .unwrap();
        let out = e.run_checked(&q).unwrap();
        assert!(!out.groups.is_empty());
        assert!(out.report.selected > 0);
    }

    #[test]
    fn group_by_requires_calibration() {
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), relation(500), EngineMode::OneXb)
                .unwrap();
        assert!(matches!(e.run(&q2_like()), Err(CoreError::NotCalibrated)));
        // Q1-style works uncalibrated
        assert!(e.run(&q1_like()).is_ok());
    }

    #[test]
    fn empty_selection_returns_empty_groups() {
        let mut e = engine(EngineMode::OneXb);
        let mut q = q1_like();
        q.filter = bbpim_db::plan::Pred::all(vec![Atom::Gt {
            attr: "lo_price".into(),
            value: 254u64.into(),
        }]);
        let out = e.run(&q).unwrap();
        assert!(out.groups.is_empty());
        assert_eq!(out.report.selected, 0);
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut e = engine(EngineMode::OneXb);
        let out = e.run(&q2_like()).unwrap();
        let r = &out.report;
        assert_eq!(r.records, 1500);
        assert_eq!(r.pages, e.page_count());
        assert!(r.selectivity > 0.0 && r.selectivity <= 1.0);
        assert!(r.max_row_cell_writes > 0);
        assert!(r.peak_chip_power_w > 0.0);
        assert!(r.required_endurance(10.0) > 0.0);
    }

    /// A relation sorted by `lo_price` so page zone maps prune.
    fn sorted_relation(rows: u64) -> Relation {
        let schema = Schema::new(
            "t",
            vec![Attribute::numeric("lo_price", 12), Attribute::numeric("d_year", 3)],
        );
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[i, i % 7]).unwrap();
        }
        rel
    }

    #[test]
    fn pruned_run_is_bit_identical_and_cheaper() {
        let rel = sorted_relation(1500);
        let q = Query::single(
            "probe",
            vec![Atom::Between { attr: "lo_price".into(), lo: 300u64.into(), hi: 400u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel.clone(), EngineMode::OneXb)
                .unwrap();
        // Per-page doorbells so the dispatch comparison below measures
        // pruning economics, not descriptor batching (which collapses
        // both contiguous plans to one run each).
        e.set_xfer_policy(bbpim_sim::XferPolicy {
            batch_dispatch: false,
            ..bbpim_sim::XferPolicy::default()
        });
        assert!(e.pruning());
        let pruned = e.run_checked(&q).unwrap();
        e.set_pruning(false);
        let exhaustive = e.run_checked(&q).unwrap();
        assert_eq!(pruned.groups, exhaustive.groups);
        // 256 records/page: [300, 400] spans pages 1..=1
        assert_eq!(pruned.report.pages_scanned, 1);
        assert_eq!(exhaustive.report.pages_scanned, exhaustive.report.pages);
        assert!(pruned.report.time_ns < exhaustive.report.time_ns);
        assert!(pruned.report.energy_pj < exhaustive.report.energy_pj);
        assert!(
            pruned.report.phases.time_in(PhaseKind::HostDispatch)
                < exhaustive.report.phases.time_in(PhaseKind::HostDispatch)
        );
    }

    #[test]
    fn or_of_ranges_prunes_the_gap() {
        // two value windows with a wide gap: the planner must dispatch
        // the windows' pages only, and the answer must stay identical to
        // exhaustive execution.
        let rel = sorted_relation(1500);
        let q = Query::select([
            SelectItem::sum("total", AggExpr::attr("lo_price")),
            SelectItem::count("n"),
        ])
        .id("or-ranges")
        .filter(col("lo_price").between(0u64, 80u64).or(col("lo_price").between(1300u64, 1400u64)))
        .build(rel.schema())
        .unwrap();
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel, EngineMode::OneXb).unwrap();
        let pruned = e.run_checked(&q).unwrap();
        // 256 records/page: window one is page 0, window two page 5
        assert_eq!(pruned.report.pages_scanned, 2);
        e.set_pruning(false);
        let exhaustive = e.run_checked(&q).unwrap();
        assert_eq!(pruned.groups, exhaustive.groups);
        assert!(pruned.report.energy_pj < exhaustive.report.energy_pj);
    }

    #[test]
    fn unsatisfiable_filter_dispatches_nothing() {
        let rel = sorted_relation(600);
        let q = Query::single(
            "never",
            vec![Atom::Lt { attr: "lo_price".into(), value: 0u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel, EngineMode::OneXb).unwrap();
        let out = e.run_checked(&q).unwrap();
        assert_eq!(out.report.pages_scanned, 0);
        assert_eq!(out.report.selected, 0);
        assert!(out.groups.is_empty());
        assert_eq!(out.report.energy_pj, 0.0);
    }

    #[test]
    fn update_widens_zones_so_pruning_stays_sound() {
        let rel = sorted_relation(1500);
        // probe for a value that exists only after the update
        let q = Query::single(
            "post",
            vec![Atom::Eq { attr: "lo_price".into(), value: 4000u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("d_year"),
        );
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel, EngineMode::OneXb).unwrap();
        assert_eq!(e.run_checked(&q).unwrap().report.pages_scanned, 0);
        // move the d_year=3 records to lo_price=4000 (they live on many pages)
        let m = Mutation::update()
            .filter(col("d_year").eq(3u64))
            .set("lo_price", 4000u64)
            .build_unchecked();
        let rep = e.mutate(&m).unwrap();
        assert!(rep.records_updated > 0);
        // the probe must now find them: zone maps widened to cover 4000
        let out = e.run_checked(&q).unwrap();
        assert_eq!(out.report.selected, rep.records_updated);
        assert!(out.report.pages_scanned > 0);
    }

    #[test]
    fn pruned_group_by_matches_exhaustive() {
        let rel = sorted_relation(1500);
        let q = Query::single(
            "gb",
            vec![Atom::Lt { attr: "lo_price".into(), value: 500u64.into() }],
            vec!["d_year".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel, EngineMode::OneXb).unwrap();
        e.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let pruned = e.run_checked(&q).unwrap();
        assert!(pruned.report.pages_scanned < pruned.report.pages);
        e.set_pruning(false);
        let exhaustive = e.run_checked(&q).unwrap();
        assert_eq!(pruned.groups, exhaustive.groups);
    }

    #[test]
    fn filter_on_host_only_attribute_is_rejected() {
        let schema = Schema::new(
            "t",
            vec![Attribute::numeric("lo_v", 8), Attribute::numeric("c_phone", 30)],
        );
        let mut rel = Relation::new(schema);
        rel.push_row(&[1, 123_456_789]).unwrap();
        let mut e =
            PimQueryEngine::new(SimConfig::small_for_tests(), rel, EngineMode::OneXb).unwrap();
        let q = Query::single(
            "t",
            vec![Atom::Eq { attr: "c_phone".into(), value: 123_456_789u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("lo_v"),
        );
        assert!(matches!(e.run(&q), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn unknown_attribute_is_a_db_error() {
        let mut e = engine(EngineMode::OneXb);
        let q = Query::single(
            "t",
            vec![Atom::Eq { attr: "nope".into(), value: 1u64.into() }],
            vec![],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        assert!(matches!(e.run(&q), Err(CoreError::Db(_))));
    }

    #[test]
    fn empty_select_list_is_a_db_error() {
        let mut e = engine(EngineMode::OneXb);
        let q = Query {
            id: "t".into(),
            filter: bbpim_db::plan::Pred::always(),
            group_by: vec![],
            select: vec![],
        };
        assert!(matches!(e.run(&q), Err(CoreError::Db(_))));
    }

    #[test]
    fn with_layout_rejects_partition_mismatch() {
        let rel = relation(100);
        let layout = crate::layout::RecordLayout::build(
            rel.schema(),
            &SimConfig::small_for_tests(),
            EngineMode::TwoXb,
            &[],
        )
        .unwrap();
        let r = PimQueryEngine::with_layout(
            SimConfig::small_for_tests(),
            rel,
            EngineMode::OneXb,
            layout,
        );
        assert!(matches!(r, Err(CoreError::Layout(_))));
    }

    #[test]
    fn custom_placement_engine_matches_oracle() {
        // hot dimension key co-located with the fact: pim-gb without
        // transfers, results unchanged
        let rel = relation(1200);
        let cfg = SimConfig::small_for_tests();
        let layout = crate::layout::RecordLayout::build_custom(
            rel.schema(),
            &cfg,
            2,
            |name| {
                if name.starts_with("lo_") || name == "d_brand" {
                    0
                } else {
                    1
                }
            },
            &[],
        )
        .unwrap();
        let mut e = PimQueryEngine::with_layout(cfg, rel, EngineMode::TwoXb, layout).unwrap();
        e.calibrate(&CalibrationConfig::tiny_for_tests()).unwrap();
        let q = Query::single(
            "t",
            vec![Atom::Gt { attr: "lo_price".into(), value: 40u64.into() }],
            vec!["d_brand".into()],
            AggFunc::Sum,
            AggExpr::attr("lo_price"),
        );
        let out = e.run_checked(&q).unwrap();
        assert!(!out.groups.is_empty());
    }

    #[test]
    fn update_then_query_sees_new_values() {
        let mut e = engine(EngineMode::OneXb);
        // move every year-3 record to brand 29, then group by brand
        let m = Mutation::update()
            .filter(col("d_year").eq(3u64))
            .set("d_brand", 29u64)
            .build_unchecked();
        let rep = e.mutate(&m).unwrap();
        assert!(rep.records_updated > 0);
        let out = e.run_checked(&q2_like()).unwrap();
        // all year-3 groups now carry brand 29
        for key in out.groups.keys() {
            if key[0] == 3 {
                assert_eq!(key[1], 29);
            }
        }
    }

    #[test]
    fn two_xb_slower_than_one_xb_when_dimensions_filtered() {
        // Q1-style query with a dimension atom: two-xb must pay the mask
        // transfer through the host, one-xb must not. (For GROUP BY
        // queries the modes may legitimately pick different k, so the
        // clean comparison is the fixed-plan query.)
        let mut e1 = engine(EngineMode::OneXb);
        let mut e2 = engine(EngineMode::TwoXb);
        let t1 = e1.run_checked(&q1_like()).unwrap().report.time_ns;
        let t2 = e2.run_checked(&q1_like()).unwrap().report.time_ns;
        assert!(t2 > t1, "two-xb {t2} must pay the transfer over one-xb {t1}");
    }
}
