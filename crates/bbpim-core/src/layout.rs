//! Mapping a pre-joined relation onto crossbar rows.
//!
//! A record occupies one row per partition. Row layout (per partition):
//!
//! ```text
//! chunk 0 (bits 0..16)   control: VALID, MASK, GROUP_MASK, spare
//! chunk 1 (bits 16..32)  TRANSFER chunk (host-written mask, two-xb)
//! bits 32..data_end      attributes, packed in schema order
//! data_end..cols-64      scratch (compute) region
//! cols-64..cols          result slot (aggregation write-back, row 0)
//! ```
//!
//! The control bits get whole 16-bit chunks so the host can read a
//! page's filter mask at one cache line per row (the 32× read reduction
//! of Section II-B) and write transfer masks without read-modify-write.
//!
//! `one-xb`/`pimdb` place every attribute in partition 0; `two-xb`
//! places fact attributes (prefix `lo_`) in partition 0 and dimension
//! attributes in partition 1 — the paper's worst-case split, since SSB
//! group keys are dimension attributes while aggregated attributes are
//! fact attributes.
//!
//! Attributes listed in `exclude` (by default the synthetic `*_phone`
//! columns, which no SSB query reads) stay in host memory only; this is
//! what lets the wide record meet the paper's fits-in-one-row claim
//! with honest bit widths (see DESIGN.md).

use std::collections::{BTreeMap, BTreeSet};

use bbpim_db::schema::Schema;
use bbpim_sim::compiler::ColRange;
use bbpim_sim::config::SimConfig;

use crate::error::CoreError;
use crate::modes::EngineMode;

/// Column of the record-validity bit.
pub const VALID_COL: usize = 0;
/// Column of the query filter mask.
pub const MASK_COL: usize = 1;
/// Column of the per-subgroup mask used by pim-gb.
pub const GROUP_MASK_COL: usize = 2;
/// First column of the host-writable transfer chunk.
pub const TRANSFER_COL: usize = 16;
/// First data column.
pub const DATA_START_COL: usize = 32;
/// Bits reserved for the aggregation result slot.
pub const RESULT_BITS: usize = 64;
/// Minimum scratch columns a partition must retain.
pub const MIN_SCRATCH_COLS: usize = 24;

/// Where one attribute lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrPlacement {
    /// Vertical partition index (crossbar of the record).
    pub partition: usize,
    /// Columns within that crossbar.
    pub range: ColRange,
}

/// The computed layout of a relation on the PIM module.
#[derive(Debug, Clone)]
pub struct RecordLayout {
    partitions: usize,
    chunk_bits: usize,
    cols: usize,
    placements: BTreeMap<String, AttrPlacement>,
    excluded: BTreeSet<String>,
    scratch: Vec<ColRange>,
    result_slot: Vec<ColRange>,
}

/// Default exclusion predicate: host-only attributes.
pub fn default_excluded(name: &str) -> bool {
    name.ends_with("_phone")
}

impl RecordLayout {
    /// Compute the layout of `schema` for `mode` under `cfg`, using the
    /// default by-prefix partition rule (`lo_` fact attributes to
    /// partition 0, everything else to partition 1 in `two-xb`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Layout`] when any partition's attributes plus the
    /// control chunks, result slot and [`MIN_SCRATCH_COLS`] exceed the
    /// crossbar width.
    pub fn build(
        schema: &Schema,
        cfg: &SimConfig,
        mode: EngineMode,
        extra_exclude: &[String],
    ) -> Result<Self, CoreError> {
        let partitions = mode.partitions();
        Self::build_custom(
            schema,
            cfg,
            partitions,
            |name| {
                if partitions == 1 || name.starts_with("lo_") {
                    0
                } else {
                    1
                }
            },
            extra_exclude,
        )
    }

    /// Compute a layout with an explicit attribute→partition assignment.
    ///
    /// This is the hook for the paper's Section III/V-A placement
    /// optimisation: "if prior knowledge of common subgroup identifiers
    /// is available, the most common ones can be placed on the same
    /// crossbar with the attributes from the fact relation", avoiding
    /// the per-subgroup mask transfers of the worst-case split.
    ///
    /// # Errors
    ///
    /// [`CoreError::Layout`] when the assignment names a partition out
    /// of range or a partition overflows the crossbar width.
    pub fn build_custom(
        schema: &Schema,
        cfg: &SimConfig,
        partitions: usize,
        assign: impl Fn(&str) -> usize,
        extra_exclude: &[String],
    ) -> Result<Self, CoreError> {
        let cols = cfg.crossbar_cols;
        let mut cursors = vec![DATA_START_COL; partitions];
        let mut placements = BTreeMap::new();
        let mut excluded = BTreeSet::new();
        for attr in schema.attrs() {
            if default_excluded(&attr.name) || extra_exclude.contains(&attr.name) {
                excluded.insert(attr.name.clone());
                continue;
            }
            let partition = assign(&attr.name);
            if partition >= partitions {
                return Err(CoreError::Layout(format!(
                    "attribute `{}` assigned to partition {partition} of {partitions}",
                    attr.name
                )));
            }
            let lo = cursors[partition];
            cursors[partition] += attr.bits;
            placements.insert(
                attr.name.clone(),
                AttrPlacement { partition, range: ColRange::new(lo, attr.bits) },
            );
        }
        let mut scratch = Vec::with_capacity(partitions);
        let mut result_slot = Vec::with_capacity(partitions);
        for (p, &data_end) in cursors.iter().enumerate() {
            let result_lo = cols
                .checked_sub(RESULT_BITS)
                .ok_or_else(|| CoreError::Layout(format!("crossbar has only {cols} columns")))?;
            if data_end + MIN_SCRATCH_COLS > result_lo {
                return Err(CoreError::Layout(format!(
                    "partition {p}: attributes end at column {data_end}, leaving fewer than \
                     {MIN_SCRATCH_COLS} scratch columns before the result slot at {result_lo} \
                     (crossbar width {cols})"
                )));
            }
            scratch.push(ColRange::new(data_end, result_lo - data_end));
            result_slot.push(ColRange::new(result_lo, RESULT_BITS));
        }
        Ok(RecordLayout {
            partitions,
            chunk_bits: cfg.read_width_bits,
            cols,
            placements,
            excluded,
            scratch,
            result_slot,
        })
    }

    /// Number of vertical partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Crossbar width this layout was built for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Placement of an attribute.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] for excluded (host-only) attributes,
    /// [`CoreError::Layout`] for unknown names.
    pub fn placement(&self, name: &str) -> Result<AttrPlacement, CoreError> {
        if self.excluded.contains(name) {
            return Err(CoreError::Unsupported(format!(
                "attribute `{name}` is host-only (excluded from the PIM layout)"
            )));
        }
        self.placements
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::Layout(format!("attribute `{name}` not in layout")))
    }

    /// Is the attribute excluded from PIM storage?
    pub fn is_excluded(&self, name: &str) -> bool {
        self.excluded.contains(name)
    }

    /// Iterate `(name, placement)` of all PIM-resident attributes.
    pub fn placements(&self) -> impl Iterator<Item = (&str, AttrPlacement)> {
        self.placements.iter().map(|(n, p)| (n.as_str(), *p))
    }

    /// Scratch region of a partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn scratch(&self, partition: usize) -> ColRange {
        self.scratch[partition]
    }

    /// Result slot of a partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn result_slot(&self, partition: usize) -> ColRange {
        self.result_slot[partition]
    }

    /// 16-bit chunks (per partition) the host must read to fetch the
    /// given attributes of one record — the paper's `s` parameter is the
    /// total count over partitions.
    ///
    /// # Errors
    ///
    /// Propagates [`RecordLayout::placement`] failures.
    pub fn chunks_for<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<BTreeMap<usize, BTreeSet<usize>>, CoreError> {
        let mut out: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for name in names {
            let p = self.placement(name)?;
            let first = p.range.lo / self.chunk_bits;
            let last = (p.range.end() - 1) / self.chunk_bits;
            out.entry(p.partition).or_default().extend(first..=last);
        }
        Ok(out)
    }

    /// Total reads per record (`s`) for a set of attributes.
    ///
    /// # Errors
    ///
    /// Propagates [`RecordLayout::placement`] failures.
    pub fn reads_per_record<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<usize, CoreError> {
        Ok(self.chunks_for(names)?.values().map(BTreeSet::len).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbpim_db::ssb::{SsbDb, SsbParams};

    fn wide_schema() -> Schema {
        SsbDb::generate(&SsbParams::tiny_for_tests()).prejoin().schema().clone()
    }

    #[test]
    fn one_xb_fits_paper_geometry() {
        let layout =
            RecordLayout::build(&wide_schema(), &SimConfig::default(), EngineMode::OneXb, &[])
                .unwrap();
        assert_eq!(layout.partitions(), 1);
        assert!(layout.scratch(0).width >= MIN_SCRATCH_COLS);
        assert_eq!(layout.result_slot(0).end(), 512);
    }

    #[test]
    fn two_xb_splits_fact_and_dimensions() {
        let layout =
            RecordLayout::build(&wide_schema(), &SimConfig::default(), EngineMode::TwoXb, &[])
                .unwrap();
        assert_eq!(layout.partitions(), 2);
        assert_eq!(layout.placement("lo_revenue").unwrap().partition, 0);
        assert_eq!(layout.placement("d_year").unwrap().partition, 1);
        assert_eq!(layout.placement("p_brand1").unwrap().partition, 1);
    }

    #[test]
    fn phones_are_host_only() {
        let layout =
            RecordLayout::build(&wide_schema(), &SimConfig::default(), EngineMode::OneXb, &[])
                .unwrap();
        assert!(layout.is_excluded("c_phone"));
        assert!(matches!(layout.placement("s_phone"), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn attributes_start_after_control_chunks_and_do_not_overlap() {
        let layout =
            RecordLayout::build(&wide_schema(), &SimConfig::default(), EngineMode::OneXb, &[])
                .unwrap();
        let mut ranges: Vec<ColRange> = layout.placements().map(|(_, p)| p.range).collect();
        ranges.sort_by_key(|r| r.lo);
        assert!(ranges[0].lo >= DATA_START_COL);
        for w in ranges.windows(2) {
            assert!(w[0].end() <= w[1].lo, "overlap between {:?} and {:?}", w[0], w[1]);
        }
        assert!(ranges.last().unwrap().end() <= layout.scratch(0).lo);
    }

    #[test]
    fn chunks_for_counts_unique_chunks() {
        let layout =
            RecordLayout::build(&wide_schema(), &SimConfig::default(), EngineMode::OneXb, &[])
                .unwrap();
        // reading the same attribute twice costs its chunks once
        let s1 = layout.reads_per_record(["lo_revenue"]).unwrap();
        let s2 = layout.reads_per_record(["lo_revenue", "lo_revenue"]).unwrap();
        assert_eq!(s1, s2);
        // adding a far-away attribute adds chunks
        let s3 = layout.reads_per_record(["lo_revenue", "d_year"]).unwrap();
        assert!(s3 > s1);
    }

    #[test]
    fn too_narrow_crossbar_rejected() {
        // wide record cannot fit in 256 columns
        let cfg = SimConfig { crossbar_cols: 256, ..SimConfig::default() };
        let r = RecordLayout::build(&wide_schema(), &cfg, EngineMode::OneXb, &[]);
        assert!(matches!(r, Err(CoreError::Layout(_))));
    }

    #[test]
    fn custom_placement_colocates_group_keys_with_fact() {
        // the paper's optimisation: d_year/p_brand1 on the fact crossbar
        let hot = ["d_year", "p_brand1"];
        let layout = RecordLayout::build_custom(
            &wide_schema(),
            &SimConfig::default(),
            2,
            |name| {
                if name.starts_with("lo_") || hot.contains(&name) {
                    0
                } else {
                    1
                }
            },
            &[],
        )
        .unwrap();
        assert_eq!(layout.placement("d_year").unwrap().partition, 0);
        assert_eq!(layout.placement("p_brand1").unwrap().partition, 0);
        assert_eq!(layout.placement("d_month").unwrap().partition, 1);
        assert_eq!(layout.placement("lo_revenue").unwrap().partition, 0);
    }

    #[test]
    fn custom_placement_rejects_out_of_range_partition() {
        let r = RecordLayout::build_custom(&wide_schema(), &SimConfig::default(), 2, |_| 5, &[]);
        assert!(matches!(r, Err(CoreError::Layout(_))));
    }

    #[test]
    fn extra_exclusions_respected() {
        let layout = RecordLayout::build(
            &wide_schema(),
            &SimConfig::default(),
            EngineMode::OneXb,
            &["p_name".to_string()],
        )
        .unwrap();
        assert!(layout.is_excluded("p_name"));
    }
}
